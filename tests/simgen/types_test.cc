#include "simgen/types.h"

#include <gtest/gtest.h>

#include <cmath>

namespace homets::simgen {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

DeviceTrace MakeDevice(const std::string& name, std::vector<double> in,
                       std::vector<double> out,
                       DeviceType type = DeviceType::kPortable) {
  DeviceTrace dev;
  dev.name = name;
  dev.true_type = type;
  dev.reported_type = type;
  dev.incoming = ts::TimeSeries(0, 1, std::move(in));
  dev.outgoing = ts::TimeSeries(0, 1, std::move(out));
  return dev;
}

TEST(DeviceTypeTest, Names) {
  EXPECT_EQ(DeviceTypeName(DeviceType::kPortable), "portable");
  EXPECT_EQ(DeviceTypeName(DeviceType::kFixed), "fixed");
  EXPECT_EQ(DeviceTypeName(DeviceType::kNetworkEquipment),
            "network_equipment");
  EXPECT_EQ(DeviceTypeName(DeviceType::kGameConsole), "game_console");
  EXPECT_EQ(DeviceTypeName(DeviceType::kUnlabeled), "unlabeled");
}

TEST(DeviceTraceTest, TotalTrafficSumsDirections) {
  const auto dev = MakeDevice("d", {1.0, 2.0}, {10.0, 20.0});
  const auto total = dev.TotalTraffic();
  EXPECT_DOUBLE_EQ(total[0], 11.0);
  EXPECT_DOUBLE_EQ(total[1], 22.0);
}

TEST(GatewayTraceTest, AggregateSumsDevices) {
  GatewayTrace gw;
  gw.devices.push_back(MakeDevice("a", {1.0, 2.0}, {0.0, 0.0}));
  gw.devices.push_back(MakeDevice("b", {10.0, 20.0}, {0.0, 0.0}));
  const auto agg = gw.AggregateTraffic();
  EXPECT_DOUBLE_EQ(agg[0], 11.0);
  EXPECT_DOUBLE_EQ(agg[1], 22.0);
}

TEST(GatewayTraceTest, AggregateTreatsDisconnectedAsAbsent) {
  GatewayTrace gw;
  gw.devices.push_back(MakeDevice("a", {1.0, kNaN}, {0.0, kNaN}));
  gw.devices.push_back(MakeDevice("b", {kNaN, 5.0}, {kNaN, 1.0}));
  const auto agg = gw.AggregateTraffic();
  EXPECT_DOUBLE_EQ(agg[0], 1.0);
  EXPECT_DOUBLE_EQ(agg[1], 6.0);
}

TEST(GatewayTraceTest, AggregateMissingOnlyWhenAllDevicesMissing) {
  GatewayTrace gw;
  gw.devices.push_back(MakeDevice("a", {1.0, kNaN}, {1.0, kNaN}));
  gw.devices.push_back(MakeDevice("b", {2.0, kNaN}, {2.0, kNaN}));
  const auto agg = gw.AggregateTraffic();
  EXPECT_DOUBLE_EQ(agg[0], 6.0);
  EXPECT_TRUE(ts::TimeSeries::IsMissing(agg[1]));
}

TEST(GatewayTraceTest, DirectionalAggregates) {
  GatewayTrace gw;
  gw.devices.push_back(MakeDevice("a", {3.0}, {7.0}));
  gw.devices.push_back(MakeDevice("b", {1.0}, {2.0}));
  EXPECT_DOUBLE_EQ(gw.AggregateIncoming()[0], 4.0);
  EXPECT_DOUBLE_EQ(gw.AggregateOutgoing()[0], 9.0);
}

TEST(GatewayTraceTest, ConnectedDeviceCount) {
  GatewayTrace gw;
  gw.devices.push_back(MakeDevice("a", {1.0, kNaN, 1.0}, {0.0, kNaN, 0.0}));
  gw.devices.push_back(MakeDevice("b", {1.0, 1.0, kNaN}, {0.0, 0.0, kNaN}));
  const auto count = gw.ConnectedDeviceCount();
  EXPECT_DOUBLE_EQ(count[0], 2.0);
  EXPECT_DOUBLE_EQ(count[1], 1.0);
  EXPECT_DOUBLE_EQ(count[2], 1.0);
}

TEST(GatewayTraceTest, ConnectedDeviceCountMissingWhenOffline) {
  GatewayTrace gw;
  gw.devices.push_back(MakeDevice("a", {kNaN, 1.0}, {kNaN, 0.0}));
  const auto count = gw.ConnectedDeviceCount();
  EXPECT_TRUE(ts::TimeSeries::IsMissing(count[0]));
  EXPECT_DOUBLE_EQ(count[1], 1.0);
}

TEST(GatewayTraceTest, EmptyGatewayYieldsEmptyAggregate) {
  GatewayTrace gw;
  EXPECT_TRUE(gw.AggregateTraffic().empty());
  EXPECT_TRUE(gw.ConnectedDeviceCount().empty());
  EXPECT_FALSE(gw.HasObservationEveryWeek(0, 1));
}

TEST(GatewayTraceTest, HasObservationEveryWeek) {
  GatewayTrace gw;
  std::vector<double> in(static_cast<size_t>(2 * ts::kMinutesPerWeek), kNaN);
  in[100] = 1.0;                                          // week 0
  in[static_cast<size_t>(ts::kMinutesPerWeek) + 7] = 2.0; // week 1
  gw.devices.push_back(MakeDevice("a", in, std::vector<double>(in.size(), kNaN)));
  EXPECT_TRUE(gw.HasObservationEveryWeek(0, 2));
}

TEST(GatewayTraceTest, MissingWeekFailsEligibility) {
  GatewayTrace gw;
  std::vector<double> in(static_cast<size_t>(2 * ts::kMinutesPerWeek), kNaN);
  in[100] = 1.0;  // only week 0 observed
  gw.devices.push_back(MakeDevice("a", in, std::vector<double>(in.size(), kNaN)));
  EXPECT_TRUE(gw.HasObservationEveryWeek(0, 1));
  EXPECT_FALSE(gw.HasObservationEveryWeek(0, 2));
}

TEST(GatewayTraceTest, HasObservationEveryDay) {
  GatewayTrace gw;
  const int days = 3;
  std::vector<double> in(static_cast<size_t>(days * ts::kMinutesPerDay), kNaN);
  for (int d = 0; d < days; ++d) {
    in[static_cast<size_t>(d * ts::kMinutesPerDay) + 30] = 1.0;
  }
  gw.devices.push_back(MakeDevice("a", in, std::vector<double>(in.size(), kNaN)));
  EXPECT_TRUE(gw.HasObservationEveryDay(0, days));
  EXPECT_FALSE(gw.HasObservationEveryDay(0, days + 1));  // beyond range
}

TEST(GatewayTraceTest, MissingDayFailsDailyEligibility) {
  GatewayTrace gw;
  std::vector<double> in(static_cast<size_t>(3 * ts::kMinutesPerDay), kNaN);
  in[10] = 1.0;
  in[static_cast<size_t>(2 * ts::kMinutesPerDay) + 10] = 1.0;  // day 1 missing
  gw.devices.push_back(MakeDevice("a", in, std::vector<double>(in.size(), kNaN)));
  EXPECT_FALSE(gw.HasObservationEveryDay(0, 3));
}

}  // namespace
}  // namespace homets::simgen
