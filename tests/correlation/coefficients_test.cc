#include "correlation/coefficients.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/random.h"

namespace homets::correlation {
namespace {

std::vector<double> Ramp(size_t n) {
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) v[i] = static_cast<double>(i);
  return v;
}

TEST(StrengthTest, PaperBands) {
  EXPECT_EQ(ClassifyStrength(0.05), Strength::kNone);
  EXPECT_EQ(ClassifyStrength(0.1), Strength::kLow);
  EXPECT_EQ(ClassifyStrength(0.29), Strength::kLow);
  EXPECT_EQ(ClassifyStrength(0.3), Strength::kMedium);
  EXPECT_EQ(ClassifyStrength(0.49), Strength::kMedium);
  EXPECT_EQ(ClassifyStrength(0.5), Strength::kStrong);
  EXPECT_EQ(ClassifyStrength(1.0), Strength::kStrong);
  EXPECT_EQ(ClassifyStrength(-0.7), Strength::kStrong);  // uses |r|
  EXPECT_EQ(StrengthName(Strength::kMedium), "medium");
}

TEST(CompletePairsTest, DropsNanPairs) {
  std::vector<double> xc, yc;
  CompletePairs({1.0, std::nan(""), 3.0}, {4.0, 5.0, std::nan("")}, &xc, &yc);
  ASSERT_EQ(xc.size(), 1u);
  EXPECT_DOUBLE_EQ(xc[0], 1.0);
  EXPECT_DOUBLE_EQ(yc[0], 4.0);
}

TEST(CompletePairsTest, UnequalLengthsUseOverlap) {
  std::vector<double> xc, yc;
  CompletePairs({1.0, 2.0, 3.0}, {4.0, 5.0}, &xc, &yc);
  EXPECT_EQ(xc.size(), 2u);
}

TEST(PearsonTest, PerfectLinear) {
  const auto x = Ramp(50);
  std::vector<double> y(50);
  for (size_t i = 0; i < 50; ++i) y[i] = 3.0 * x[i] + 2.0;
  const auto test = Pearson(x, y).value();
  EXPECT_NEAR(test.coefficient, 1.0, 1e-12);
  EXPECT_LT(test.p_value, 1e-10);
  EXPECT_TRUE(test.Significant());
}

TEST(PearsonTest, PerfectNegative) {
  const auto x = Ramp(30);
  std::vector<double> y(30);
  for (size_t i = 0; i < 30; ++i) y[i] = -x[i];
  EXPECT_NEAR(Pearson(x, y)->coefficient, -1.0, 1e-12);
}

TEST(PearsonTest, IndependentNoiseInsignificant) {
  Rng rng(5);
  std::vector<double> x(200), y(200);
  for (size_t i = 0; i < 200; ++i) {
    x[i] = rng.Normal();
    y[i] = rng.Normal();
  }
  const auto test = Pearson(x, y).value();
  EXPECT_LT(std::fabs(test.coefficient), 0.2);
  EXPECT_GT(test.p_value, 0.001);
}

TEST(PearsonTest, KnownSmallSample) {
  // Hand-checked: r of {1,2,3,4,5} vs {2,1,4,3,5} is 0.8.
  const auto test = Pearson({1, 2, 3, 4, 5}, {2, 1, 4, 3, 5}).value();
  EXPECT_NEAR(test.coefficient, 0.8, 1e-12);
}

TEST(PearsonTest, ConstantSeriesErrors) {
  EXPECT_FALSE(Pearson({1, 1, 1, 1}, {1, 2, 3, 4}).ok());
  EXPECT_FALSE(Pearson({1, 2, 3, 4}, {5, 5, 5, 5}).ok());
}

TEST(PearsonTest, TooFewPairsErrors) {
  EXPECT_FALSE(Pearson({1, 2}, {3, 4}).ok());
}

TEST(PearsonTest, ScaleInvariance) {
  Rng rng(6);
  std::vector<double> x(100), y(100), y_scaled(100);
  for (size_t i = 0; i < 100; ++i) {
    x[i] = rng.Normal();
    y[i] = x[i] + 0.5 * rng.Normal();
    y_scaled[i] = 1000.0 * y[i] + 77.0;
  }
  EXPECT_NEAR(Pearson(x, y)->coefficient, Pearson(x, y_scaled)->coefficient,
              1e-12);
}

TEST(SpearmanTest, MonotoneNonlinearIsPerfect) {
  // Spearman captures monotonicity that Pearson understates.
  const auto x = Ramp(40);
  std::vector<double> y(40);
  for (size_t i = 0; i < 40; ++i) y[i] = std::exp(0.3 * x[i]);
  const auto rho = Spearman(x, y).value();
  EXPECT_NEAR(rho.coefficient, 1.0, 1e-12);
  const auto r = Pearson(x, y).value();
  EXPECT_LT(r.coefficient, rho.coefficient);
}

TEST(SpearmanTest, HandlesTies) {
  const auto test = Spearman({1, 2, 2, 3}, {1, 3, 3, 7}).value();
  EXPECT_NEAR(test.coefficient, 1.0, 1e-12);
}

TEST(SpearmanTest, AntitoneIsMinusOne) {
  const auto x = Ramp(20);
  std::vector<double> y(20);
  for (size_t i = 0; i < 20; ++i) y[i] = 1.0 / (1.0 + x[i]);
  EXPECT_NEAR(Spearman(x, y)->coefficient, -1.0, 1e-12);
}

TEST(KendallTest, PerfectConcordance) {
  const auto test = Kendall(Ramp(30), Ramp(30)).value();
  EXPECT_NEAR(test.coefficient, 1.0, 1e-12);
  EXPECT_LT(test.p_value, 1e-6);
}

TEST(KendallTest, PerfectDiscordance) {
  const auto x = Ramp(30);
  std::vector<double> y(x.rbegin(), x.rend());
  EXPECT_NEAR(Kendall(x, y)->coefficient, -1.0, 1e-12);
}

TEST(KendallTest, KnownSmallSample) {
  // x = {1,2,3,4}, y = {1,3,2,4}: 5 concordant, 1 discordant → τ = 4/6.
  const auto test = Kendall({1, 2, 3, 4}, {1, 3, 2, 4}).value();
  EXPECT_NEAR(test.coefficient, 4.0 / 6.0, 1e-12);
}

TEST(KendallTest, TauBHandlesTies) {
  // With ties in both inputs tau-b stays within [−1, 1] and detects the
  // association.
  const auto test = Kendall({1, 1, 2, 2, 3, 3}, {1, 2, 2, 3, 3, 4}).value();
  EXPECT_GT(test.coefficient, 0.6);
  EXPECT_LE(test.coefficient, 1.0);
}

TEST(KendallTest, MatchesBruteForceOnRandomData) {
  Rng rng(8);
  std::vector<double> x(60), y(60);
  for (size_t i = 0; i < 60; ++i) {
    // Coarse grid so ties actually occur.
    x[i] = std::floor(rng.Uniform(0.0, 8.0));
    y[i] = std::floor(x[i] / 2.0 + rng.Uniform(0.0, 4.0));
  }
  // Brute force tau-b.
  double nc = 0.0, nd = 0.0, tx = 0.0, ty = 0.0;
  const size_t n = x.size();
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const double dx = x[i] - x[j];
      const double dy = y[i] - y[j];
      if (dx == 0.0 && dy == 0.0) continue;
      if (dx == 0.0) {
        tx += 1.0;
      } else if (dy == 0.0) {
        ty += 1.0;
      } else if (dx * dy > 0.0) {
        nc += 1.0;
      } else {
        nd += 1.0;
      }
    }
  }
  const double n0 = static_cast<double>(n) * (n - 1) / 2.0;
  double joint = 0.0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (x[i] == x[j] && y[i] == y[j]) joint += 1.0;
    }
  }
  const double denom_x = n0 - (tx + joint);
  const double denom_y = n0 - (ty + joint);
  const double expected = (nc - nd) / std::sqrt(denom_x * denom_y);
  EXPECT_NEAR(Kendall(x, y)->coefficient, expected, 1e-10);
}

TEST(KendallTest, ConstantSeriesErrors) {
  EXPECT_FALSE(Kendall({2, 2, 2, 2}, {1, 2, 3, 4}).ok());
}

TEST(AllCoefficients, AgreeOnSignForLinearData) {
  Rng rng(10);
  std::vector<double> x(150), y(150);
  for (size_t i = 0; i < 150; ++i) {
    x[i] = rng.Normal();
    y[i] = 0.8 * x[i] + 0.4 * rng.Normal();
  }
  EXPECT_GT(Pearson(x, y)->coefficient, 0.5);
  EXPECT_GT(Spearman(x, y)->coefficient, 0.5);
  EXPECT_GT(Kendall(x, y)->coefficient, 0.3);  // tau runs lower than r
}

class CorrelationSignificanceTest : public ::testing::TestWithParam<double> {};

TEST_P(CorrelationSignificanceTest, StrongerSignalSmallerPValue) {
  // p-values must decrease as the true association strengthens.
  const double beta = GetParam();
  Rng rng(12);
  std::vector<double> x(120), weak(120), strong(120);
  for (size_t i = 0; i < 120; ++i) {
    x[i] = rng.Normal();
    const double noise = rng.Normal();
    weak[i] = beta * 0.2 * x[i] + noise;
    strong[i] = beta * x[i] + noise;
  }
  EXPECT_LE(Pearson(x, strong)->p_value, Pearson(x, weak)->p_value);
}

INSTANTIATE_TEST_SUITE_P(BetaSweep, CorrelationSignificanceTest,
                         ::testing::Values(0.5, 1.0, 2.0));

}  // namespace
}  // namespace homets::correlation
