#include "correlation/prepared_series.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "common/random.h"
#include "core/background.h"
#include "simgen/fleet.h"
#include "ts/time_series.h"

namespace homets::correlation {
namespace {

bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

// Golden parity check: the profiled fast path, the gather fallback (the
// legacy algorithm verbatim, forced via profiles = 0) and the public vector
// API must agree bit-for-bit — same coefficient/p-value/n bits on success,
// same status code and message on failure.
void ExpectParity(const std::vector<double>& x, const std::vector<double>& y) {
  const PreparedSeries px = PreparedSeries::Make(x);
  const PreparedSeries py = PreparedSeries::Make(y);
  const PreparedSeries lx = PreparedSeries::Make(x, 0);
  const PreparedSeries ly = PreparedSeries::Make(y, 0);
  PairWorkspace ws;

  const auto check = [](const char* name, Result<CorrelationTest> fast,
                        Result<CorrelationTest> legacy,
                        Result<CorrelationTest> vec) {
    SCOPED_TRACE(name);
    ASSERT_EQ(fast.ok(), legacy.ok());
    ASSERT_EQ(fast.ok(), vec.ok());
    if (!fast.ok()) {
      EXPECT_EQ(fast.status().code(), legacy.status().code());
      EXPECT_EQ(fast.status().message(), legacy.status().message());
      EXPECT_EQ(fast.status().message(), vec.status().message());
      return;
    }
    EXPECT_TRUE(SameBits(fast->coefficient, legacy->coefficient))
        << fast->coefficient << " vs " << legacy->coefficient;
    EXPECT_TRUE(SameBits(fast->p_value, legacy->p_value))
        << fast->p_value << " vs " << legacy->p_value;
    EXPECT_EQ(fast->n, legacy->n);
    EXPECT_TRUE(SameBits(fast->coefficient, vec->coefficient));
    EXPECT_TRUE(SameBits(fast->p_value, vec->p_value));
    EXPECT_EQ(fast->n, vec->n);
  };
  check("pearson", Pearson(px, py, &ws), Pearson(lx, ly, &ws), Pearson(x, y));
  check("spearman", Spearman(px, py, &ws), Spearman(lx, ly, &ws),
        Spearman(x, y));
  check("kendall", Kendall(px, py, &ws), Kendall(lx, ly, &ws), Kendall(x, y));
}

std::vector<double> Ramp(size_t n) {
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) v[i] = static_cast<double>(i);
  return v;
}

TEST(PreparedSeriesTest, ProfilesSkippedForNanAndShortInput) {
  const PreparedSeries with_nan =
      PreparedSeries::Make({1.0, std::nan(""), 3.0, 4.0});
  EXPECT_TRUE(with_nan.has_nan());
  EXPECT_EQ(with_nan.profiles(), 0u);
  const PreparedSeries tiny = PreparedSeries::Make({1.0, 2.0});
  EXPECT_EQ(tiny.profiles(), 0u);
  const PreparedSeries full = PreparedSeries::Make({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(full.profiles(), static_cast<uint32_t>(kAllProfiles));
  EXPECT_FALSE(full.PairableWith(with_nan));
  EXPECT_FALSE(tiny.PairableWith(full));
  EXPECT_TRUE(full.PairableWith(full));
}

TEST(PreparedSeriesTest, ProfileContents) {
  const PreparedSeries p = PreparedSeries::Make({3.0, 1.0, 2.0, 2.0});
  EXPECT_TRUE(SameBits(p.mean(), 2.0));
  EXPECT_FALSE(p.constant());
  // Tie-averaged ranks of {3, 1, 2, 2}: {4, 1, 2.5, 2.5}.
  ASSERT_EQ(p.ranks().size(), 4u);
  EXPECT_DOUBLE_EQ(p.ranks()[0], 4.0);
  EXPECT_DOUBLE_EQ(p.ranks()[1], 1.0);
  EXPECT_DOUBLE_EQ(p.ranks()[2], 2.5);
  EXPECT_DOUBLE_EQ(p.ranks()[3], 2.5);
  // Stable ascending order: 1 < 2 (index 2 before 3) < 3.
  ASSERT_EQ(p.sort_order().size(), 4u);
  EXPECT_EQ(p.sort_order()[0], 1u);
  EXPECT_EQ(p.sort_order()[1], 2u);
  EXPECT_EQ(p.sort_order()[2], 3u);
  EXPECT_EQ(p.sort_order()[3], 0u);
  // Tie groups: {1}, {2, 2}, {3} -> offsets 0, 1, 3 and sentinel 4.
  const std::vector<uint32_t> offsets = {0, 1, 3, 4};
  EXPECT_EQ(p.group_offsets(), offsets);
  // One tie group of size 2: Σ t(t−1)/2 = 1.
  EXPECT_DOUBLE_EQ(p.tie_sums().pairs, 1.0);
}

TEST(PreparedSeriesParity, RandomSeries) {
  Rng rng(101);
  for (const size_t n : {3u, 4u, 7u, 21u, 56u, 200u}) {
    std::vector<double> x(n), y(n);
    for (size_t i = 0; i < n; ++i) {
      x[i] = rng.LogNormal(std::log(500.0), 1.0);
      y[i] = 0.5 * x[i] + rng.Normal() * 100.0;
    }
    SCOPED_TRACE(n);
    ExpectParity(x, y);
  }
}

TEST(PreparedSeriesParity, TieHeavySeries) {
  Rng rng(102);
  for (int round = 0; round < 10; ++round) {
    std::vector<double> x(40), y(40);
    for (size_t i = 0; i < 40; ++i) {
      // Coarse grids force heavy ties on both sides, including joint ties.
      x[i] = std::floor(rng.Uniform(0.0, 5.0));
      y[i] = std::floor(x[i] / 2.0 + rng.Uniform(0.0, 3.0));
    }
    SCOPED_TRACE(round);
    ExpectParity(x, y);
  }
}

TEST(PreparedSeriesParity, NanLadenSeries) {
  Rng rng(103);
  std::vector<double> x(60), y(60);
  for (size_t i = 0; i < 60; ++i) {
    x[i] = i % 5 == 0 ? std::nan("") : rng.Normal();
    y[i] = i % 7 == 0 ? std::nan("") : 0.8 * (std::isnan(x[i]) ? 0.0 : x[i]) +
                                           rng.Normal();
  }
  ExpectParity(x, y);
  // All-NaN overlap degenerates to "need >= 3 complete pairs" on every path.
  ExpectParity({std::nan(""), std::nan(""), std::nan(""), std::nan("")},
               Ramp(4));
}

TEST(PreparedSeriesParity, ConstantAndDegenerateSeries) {
  ExpectParity(std::vector<double>(30, 5.0), Ramp(30));       // constant x
  ExpectParity(Ramp(30), std::vector<double>(30, -1.0));      // constant y
  ExpectParity(std::vector<double>(10, 0.0),
               std::vector<double>(10, 0.0));                 // both constant
  ExpectParity({1.0, 2.0}, {3.0, 4.0});                       // too short
  ExpectParity({}, {});                                       // empty
  ExpectParity(Ramp(10), Ramp(7));  // unequal lengths -> overlap via gather
}

TEST(PreparedSeriesParity, SimgenFleetWindows) {
  // Real workload shapes: background-removed weekly windows at 3 h bins from
  // the synthetic fleet, compared all-pairs across two gateways.
  simgen::SimConfig config;
  config.n_gateways = 2;
  config.weeks = 2;
  config.seed = 20140317;
  simgen::FleetGenerator gen(config);
  std::vector<std::vector<double>> windows;
  for (int id = 0; id < config.n_gateways; ++id) {
    const auto active = core::ActiveAggregate(gen.Generate(id));
    auto aggregated = ts::Aggregate(active, 180, 0, ts::AggKind::kSum);
    if (!aggregated.ok()) continue;
    for (const auto& window :
         ts::SliceWindows(*aggregated, ts::kMinutesPerWeek, 0)) {
      windows.push_back(window.values());
    }
  }
  ASSERT_GE(windows.size(), 3u);
  for (size_t i = 0; i < windows.size(); ++i) {
    for (size_t j = i; j < windows.size(); ++j) {
      SCOPED_TRACE(i * 100 + j);
      ExpectParity(windows[i], windows[j]);
    }
  }
}

TEST(PreparedSeriesParity, WorkspaceReuseDoesNotLeakState) {
  // One workspace across pairs of very different sizes and tie structure
  // must give the same bits as fresh allocations each time.
  Rng rng(104);
  PairWorkspace shared;
  for (const size_t n : {100u, 5u, 64u, 3u, 31u}) {
    std::vector<double> x(n), y(n);
    for (size_t i = 0; i < n; ++i) {
      x[i] = std::floor(rng.Uniform(0.0, 6.0));
      y[i] = rng.Normal();
    }
    const PreparedSeries px = PreparedSeries::Make(x);
    const PreparedSeries py = PreparedSeries::Make(y);
    using KernelFn = Result<CorrelationTest> (*)(
        const PreparedSeries&, const PreparedSeries&, PairWorkspace*);
    for (const KernelFn kernel :
         {static_cast<KernelFn>(&Pearson), static_cast<KernelFn>(&Spearman),
          static_cast<KernelFn>(&Kendall)}) {
      const auto with_shared = (*kernel)(px, py, &shared);
      const auto with_fresh = (*kernel)(px, py, nullptr);
      ASSERT_EQ(with_shared.ok(), with_fresh.ok());
      if (with_shared.ok()) {
        EXPECT_TRUE(
            SameBits(with_shared->coefficient, with_fresh->coefficient));
        EXPECT_TRUE(SameBits(with_shared->p_value, with_fresh->p_value));
      }
    }
  }
}

TEST(PreparedSeriesKernels, ErrorMessagesMatchLegacy) {
  const PreparedSeries constant = PreparedSeries::Make({2.0, 2.0, 2.0, 2.0});
  const PreparedSeries ramp = PreparedSeries::Make(Ramp(4));
  const PreparedSeries tiny = PreparedSeries::Make({1.0, 2.0});

  EXPECT_EQ(Pearson(constant, ramp).status().message(),
            "Pearson: constant input series");
  EXPECT_EQ(Pearson(tiny, tiny).status().message(),
            "Pearson: need >= 3 complete pairs");
  EXPECT_EQ(Spearman(tiny, tiny).status().message(),
            "Spearman: need >= 3 complete pairs");
  EXPECT_EQ(Kendall(constant, ramp).status().message(),
            "Kendall: constant input series");
  EXPECT_EQ(Kendall(tiny, tiny).status().message(),
            "Kendall: need >= 3 complete pairs");
}

}  // namespace
}  // namespace homets::correlation
