#include "correlation/acf.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/random.h"

namespace homets::correlation {
namespace {

std::vector<double> Ar1Series(double phi, size_t n, uint64_t seed) {
  homets::Rng rng(seed);
  std::vector<double> x(n);
  x[0] = rng.Normal();
  for (size_t t = 1; t < n; ++t) x[t] = phi * x[t - 1] + rng.Normal();
  return x;
}

TEST(AcfTest, LagZeroIsOne) {
  const auto acf = Acf(Ar1Series(0.5, 500, 1), 10).value();
  EXPECT_DOUBLE_EQ(acf.acf[0], 1.0);
}

TEST(AcfTest, Ar1DecaysGeometrically) {
  const auto acf = Acf(Ar1Series(0.7, 20000, 2), 5).value();
  EXPECT_NEAR(acf.acf[1], 0.7, 0.03);
  EXPECT_NEAR(acf.acf[2], 0.49, 0.04);
  EXPECT_NEAR(acf.acf[3], 0.343, 0.05);
}

TEST(AcfTest, WhiteNoiseInsideBand) {
  homets::Rng rng(3);
  std::vector<double> x(5000);
  for (auto& v : x) v = rng.Normal();
  const auto acf = Acf(x, 20).value();
  size_t inside = 0;
  for (size_t k = 1; k <= 20; ++k) {
    if (std::fabs(acf.acf[k]) <= acf.conf_bound) ++inside;
  }
  // 95% band: expect nearly all of 20 lags inside.
  EXPECT_GE(inside, 17u);
}

TEST(AcfTest, PeriodicSeriesPeaksAtPeriod) {
  std::vector<double> x(1000);
  for (size_t t = 0; t < x.size(); ++t) {
    x[t] = std::sin(2.0 * M_PI * static_cast<double>(t) / 24.0);
  }
  const auto acf = Acf(x, 30).value();
  EXPECT_GT(acf.acf[24], 0.9);
  EXPECT_LT(acf.acf[12], -0.9);
}

TEST(AcfTest, SignificantLagsDetected) {
  const auto acf = Acf(Ar1Series(0.8, 5000, 4), 10).value();
  const auto lags = acf.SignificantLags();
  ASSERT_FALSE(lags.empty());
  EXPECT_EQ(lags.front(), 1u);
}

TEST(AcfTest, MissingValuesImputed) {
  auto x = Ar1Series(0.6, 1000, 5);
  for (size_t i = 0; i < x.size(); i += 17) x[i] = std::nan("");
  EXPECT_TRUE(Acf(x, 5).ok());
}

TEST(AcfTest, ErrorsOnDegenerateInput) {
  EXPECT_FALSE(Acf({1.0, 2.0}, 5).ok());  // too short
  const std::vector<double> constant(100, 3.0);
  EXPECT_FALSE(Acf(constant, 5).ok());
  const std::vector<double> all_missing(100, std::nan(""));
  EXPECT_FALSE(Acf(all_missing, 5).ok());
}

TEST(CcfTest, SelfCorrelationPeaksAtZeroLag) {
  const auto x = Ar1Series(0.5, 2000, 6);
  const auto ccf = Ccf(x, x, 10).value();
  EXPECT_NEAR(ccf.AtLag(0), 1.0, 1e-9);
  EXPECT_EQ(ccf.PeakLag(), 0);
}

TEST(CcfTest, DetectsKnownLead) {
  // y lags x by 3 steps: x_{t} drives y_{t+3}; ccf correlates x_{t+k} with
  // y_t, so the peak sits at k = −3.
  homets::Rng rng(7);
  const size_t n = 3000;
  std::vector<double> x(n), y(n, 0.0);
  for (auto& v : x) v = rng.Normal();
  for (size_t t = 3; t < n; ++t) y[t] = x[t - 3] + 0.2 * rng.Normal();
  const auto ccf = Ccf(x, y, 8).value();
  EXPECT_EQ(ccf.PeakLag(), -3);
  EXPECT_GT(ccf.AtLag(-3), 0.8);
}

TEST(CcfTest, SymmetricStorage) {
  const auto x = Ar1Series(0.4, 500, 8);
  const auto y = Ar1Series(0.4, 500, 9);
  const auto ccf = Ccf(x, y, 5).value();
  EXPECT_EQ(ccf.ccf.size(), 11u);
  EXPECT_EQ(ccf.max_lag, 5);
}

TEST(CcfTest, IndependentSeriesLowEverywhere) {
  const auto x = Ar1Series(0.0, 4000, 10);
  const auto y = Ar1Series(0.0, 4000, 11);
  const auto ccf = Ccf(x, y, 5).value();
  for (int lag = -5; lag <= 5; ++lag) {
    EXPECT_LT(std::fabs(ccf.AtLag(lag)), 0.08);
  }
}

TEST(CcfTest, ErrorsOnBadInput) {
  const auto x = Ar1Series(0.5, 100, 12);
  std::vector<double> short_y(50, 1.0);
  EXPECT_FALSE(Ccf(x, short_y, 5).ok());  // length mismatch
  EXPECT_FALSE(Ccf(x, x, 99).ok());       // lag too large
  EXPECT_FALSE(Ccf(x, x, -1).ok());       // negative lag bound
}

}  // namespace
}  // namespace homets::correlation
