#include "ts/seasonal.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace homets::ts {
namespace {

// Hourly series with a clean daily pattern plus noise.
TimeSeries DailyPattern(size_t days, double noise, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(days * 24);
  for (size_t i = 0; i < v.size(); ++i) {
    const double hour = static_cast<double>(i % 24);
    v[i] = 100.0 + 50.0 * std::sin(2.0 * M_PI * hour / 24.0) +
           noise * rng.Normal();
  }
  return TimeSeries(0, kMinutesPerHour, std::move(v));
}

TEST(SeasonalProfileTest, RecoversDailyMeans) {
  const auto series = DailyPattern(20, 1.0, 1);
  const auto profile =
      EstimateSeasonalProfile(series, kMinutesPerDay).value();
  ASSERT_EQ(profile.means.size(), 24u);
  for (size_t h = 0; h < 24; ++h) {
    const double expected =
        100.0 + 50.0 * std::sin(2.0 * M_PI * static_cast<double>(h) / 24.0);
    EXPECT_NEAR(profile.means[h], expected, 2.0) << "hour " << h;
    EXPECT_EQ(profile.counts[h], 20u);
  }
}

TEST(SeasonalProfileTest, MeanAtWrapsPhases) {
  const auto series = DailyPattern(10, 0.5, 2);
  const auto profile =
      EstimateSeasonalProfile(series, kMinutesPerDay).value();
  EXPECT_NEAR(profile.MeanAt(0), profile.MeanAt(3 * kMinutesPerDay), 1e-12);
  EXPECT_NEAR(profile.MeanAt(-kMinutesPerDay + 60),
              profile.MeanAt(60), 1e-12);
}

TEST(SeasonalProfileTest, EmptyPhaseGetsOverallMean) {
  // Two observations in one phase bin only.
  std::vector<double> v(48, TimeSeries::Missing());
  v[0] = 10.0;
  v[24] = 20.0;  // same hour next day
  TimeSeries series(0, kMinutesPerHour, std::move(v));
  const auto profile =
      EstimateSeasonalProfile(series, kMinutesPerDay).value();
  EXPECT_DOUBLE_EQ(profile.means[0], 15.0);
  EXPECT_DOUBLE_EQ(profile.means[5], 15.0);  // overall mean fallback
  EXPECT_EQ(profile.counts[5], 0u);
}

TEST(SeasonalProfileTest, InvalidArguments) {
  const auto series = DailyPattern(5, 1.0, 3);
  EXPECT_FALSE(EstimateSeasonalProfile(series, 0).ok());
  EXPECT_FALSE(EstimateSeasonalProfile(series, 90).ok());  // not multiple
  TimeSeries empty(0, 60, std::vector<double>(24, TimeSeries::Missing()));
  EXPECT_FALSE(EstimateSeasonalProfile(empty, kMinutesPerDay).ok());
}

TEST(DeseasonalizeTest, RemovesPattern) {
  const auto series = DailyPattern(20, 0.5, 4);
  const auto profile =
      EstimateSeasonalProfile(series, kMinutesPerDay).value();
  const auto residual = Deseasonalize(series, profile).value();
  double mean = 0.0;
  for (double v : residual.values()) mean += v;
  mean /= static_cast<double>(residual.size());
  EXPECT_NEAR(mean, 0.0, 0.1);
  // Residual variance far below the seasonal amplitude.
  double ss = 0.0;
  for (double v : residual.values()) ss += (v - mean) * (v - mean);
  EXPECT_LT(std::sqrt(ss / static_cast<double>(residual.size())), 2.0);
}

TEST(DeseasonalizeTest, KeepsMissing) {
  auto series = DailyPattern(5, 0.5, 5);
  series[7] = TimeSeries::Missing();
  const auto profile =
      EstimateSeasonalProfile(series, kMinutesPerDay).value();
  const auto residual = Deseasonalize(series, profile).value();
  EXPECT_TRUE(TimeSeries::IsMissing(residual[7]));
}

TEST(SeasonalStrengthTest, HighForSeasonalLowForNoise) {
  const auto seasonal_series = DailyPattern(20, 1.0, 6);
  const auto profile =
      EstimateSeasonalProfile(seasonal_series, kMinutesPerDay).value();
  EXPECT_GT(SeasonalStrength(seasonal_series, profile).value(), 0.9);

  Rng rng(7);
  std::vector<double> noise(480);
  for (auto& v : noise) v = rng.Normal();
  TimeSeries noise_series(0, kMinutesPerHour, std::move(noise));
  const auto noise_profile =
      EstimateSeasonalProfile(noise_series, kMinutesPerDay).value();
  EXPECT_LT(SeasonalStrength(noise_series, noise_profile).value(), 0.3);
}

TEST(BurstinessTest, RegularSignalIsNegative) {
  // Events every 10 minutes exactly: B → −1.
  std::vector<double> v(1000, 0.0);
  for (size_t i = 0; i < v.size(); i += 10) v[i] = 100.0;
  TimeSeries series(0, 1, std::move(v));
  EXPECT_NEAR(Burstiness(series, 50.0).value(), -1.0, 1e-9);
}

TEST(BurstinessTest, PoissonEventsNearZero) {
  Rng rng(8);
  std::vector<double> v(200000, 0.0);
  for (auto& x : v) {
    if (rng.Bernoulli(0.01)) x = 100.0;
  }
  TimeSeries series(0, 1, std::move(v));
  // Geometric inter-event gaps: B ≈ 0 (slightly below for discrete time).
  EXPECT_NEAR(Burstiness(series, 50.0).value(), 0.0, 0.05);
}

TEST(BurstinessTest, BurstyTrainIsPositive) {
  // Clustered events: long silences separating dense bursts — the home
  // traffic shape the paper describes.
  Rng rng(9);
  std::vector<double> v(100000, 0.0);
  size_t i = 0;
  while (i < v.size()) {
    // burst of 20 consecutive events, then a long heavy-tailed silence
    for (size_t k = 0; k < 20 && i < v.size(); ++k, ++i) v[i] = 100.0;
    i += static_cast<size_t>(rng.Pareto(200.0, 1.2));
  }
  TimeSeries series(0, 1, std::move(v));
  EXPECT_GT(Burstiness(series, 50.0).value(), 0.3);
}

TEST(BurstinessTest, DeseasonedHomeTrafficStaysBursty) {
  // The paper's Section 2 claim (via Jo et al.): removing daily seasonality
  // does not remove burstiness — human activity itself is bursty.
  Rng rng(10);
  std::vector<double> v(60 * 24 * 28, 0.0);  // 28 days of minutes
  for (size_t i = 0; i < v.size(); ++i) {
    const int hour = static_cast<int>((i / 60) % 24);
    const double evening_boost = (hour >= 18 && hour < 23) ? 5.0 : 0.3;
    if (rng.Bernoulli(0.002 * evening_boost)) {
      // bursty session
      for (size_t k = 0; k < 30 && i < v.size(); ++k, ++i) {
        v[i] = rng.LogNormal(std::log(4e5), 0.5);
      }
    }
  }
  TimeSeries series(0, 1, std::move(v));
  const auto profile =
      EstimateSeasonalProfile(series, kMinutesPerDay).value();
  const auto residual = Deseasonalize(series, profile).value();
  // Events = residuals far above the seasonal mean.
  const auto b = Burstiness(residual, 1e5);
  ASSERT_TRUE(b.ok());
  EXPECT_GT(*b, 0.2);
}

TEST(BurstinessTest, TooFewEventsErrors) {
  TimeSeries series(0, 1, {0.0, 100.0, 0.0});
  EXPECT_FALSE(Burstiness(series, 50.0).ok());
}

}  // namespace
}  // namespace homets::ts
