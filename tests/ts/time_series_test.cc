#include "ts/time_series.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace homets::ts {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

TEST(CalendarTest, EpochIsMonday) {
  EXPECT_EQ(DayOfWeekAt(0), DayOfWeek::kMonday);
  EXPECT_EQ(DayOfWeekAt(kMinutesPerDay - 1), DayOfWeek::kMonday);
  EXPECT_EQ(DayOfWeekAt(kMinutesPerDay), DayOfWeek::kTuesday);
  EXPECT_EQ(DayOfWeekAt(5 * kMinutesPerDay), DayOfWeek::kSaturday);
  EXPECT_EQ(DayOfWeekAt(6 * kMinutesPerDay), DayOfWeek::kSunday);
  EXPECT_EQ(DayOfWeekAt(kMinutesPerWeek), DayOfWeek::kMonday);
}

TEST(CalendarTest, NegativeMinutesWrapCorrectly) {
  EXPECT_EQ(DayOfWeekAt(-1), DayOfWeek::kSunday);
  EXPECT_EQ(MinuteOfDay(-1), kMinutesPerDay - 1);
}

TEST(CalendarTest, MinuteOfDay) {
  EXPECT_EQ(MinuteOfDay(0), 0);
  EXPECT_EQ(MinuteOfDay(61), 61);
  EXPECT_EQ(MinuteOfDay(kMinutesPerDay + 30), 30);
}

TEST(CalendarTest, WeekendPredicate) {
  EXPECT_FALSE(IsWeekend(DayOfWeek::kMonday));
  EXPECT_FALSE(IsWeekend(DayOfWeek::kFriday));
  EXPECT_TRUE(IsWeekend(DayOfWeek::kSaturday));
  EXPECT_TRUE(IsWeekend(DayOfWeek::kSunday));
}

TEST(CalendarTest, DayNames) {
  EXPECT_EQ(DayOfWeekName(DayOfWeek::kMonday), "Mon");
  EXPECT_EQ(DayOfWeekName(DayOfWeek::kSunday), "Sun");
}

TEST(TimeSeriesTest, BasicAccessors) {
  TimeSeries s(100, 5, {1.0, 2.0, 3.0});
  EXPECT_EQ(s.start_minute(), 100);
  EXPECT_EQ(s.step_minutes(), 5);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.MinuteAt(0), 100);
  EXPECT_EQ(s.MinuteAt(2), 110);
  EXPECT_EQ(s.EndMinute(), 115);
  EXPECT_DOUBLE_EQ(s[1], 2.0);
}

TEST(TimeSeriesTest, MissingValueHandling) {
  TimeSeries s(0, 1, {1.0, kNaN, 3.0, kNaN});
  EXPECT_EQ(s.CountObserved(), 2u);
  EXPECT_DOUBLE_EQ(s.Sum(), 4.0);
  const auto observed = s.ObservedValues();
  ASSERT_EQ(observed.size(), 2u);
  EXPECT_DOUBLE_EQ(observed[0], 1.0);
  EXPECT_DOUBLE_EQ(observed[1], 3.0);
  EXPECT_TRUE(TimeSeries::IsMissing(TimeSeries::Missing()));
  EXPECT_FALSE(TimeSeries::IsMissing(0.0));
}

TEST(TimeSeriesTest, AddAlignedSeries) {
  TimeSeries a(0, 1, {1.0, 2.0, 3.0});
  TimeSeries b(0, 1, {10.0, 20.0, 30.0});
  const auto sum = TimeSeries::Add(a, b);
  ASSERT_TRUE(sum.ok());
  EXPECT_DOUBLE_EQ((*sum)[0], 11.0);
  EXPECT_DOUBLE_EQ((*sum)[2], 33.0);
}

TEST(TimeSeriesTest, AddWithOffsetExtendsRange) {
  TimeSeries a(0, 1, {1.0, 2.0});
  TimeSeries b(3, 1, {5.0});
  const auto sum = TimeSeries::Add(a, b);
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(sum->start_minute(), 0);
  EXPECT_EQ(sum->size(), 4u);
  EXPECT_DOUBLE_EQ((*sum)[0], 1.0);
  EXPECT_TRUE(TimeSeries::IsMissing((*sum)[2]));  // neither covers minute 2
  EXPECT_DOUBLE_EQ((*sum)[3], 5.0);
}

TEST(TimeSeriesTest, AddMissingIsAbsentNotZeroPoison) {
  // A minute observed on one side only keeps the observed value.
  TimeSeries a(0, 1, {1.0, kNaN});
  TimeSeries b(0, 1, {kNaN, 7.0});
  const auto sum = TimeSeries::Add(a, b);
  ASSERT_TRUE(sum.ok());
  EXPECT_DOUBLE_EQ((*sum)[0], 1.0);
  EXPECT_DOUBLE_EQ((*sum)[1], 7.0);
}

TEST(TimeSeriesTest, AddRejectsStepMismatch) {
  TimeSeries a(0, 1, {1.0});
  TimeSeries b(0, 2, {1.0});
  EXPECT_FALSE(TimeSeries::Add(a, b).ok());
}

TEST(TimeSeriesTest, AddRejectsPhaseMismatch) {
  TimeSeries a(0, 2, {1.0});
  TimeSeries b(1, 2, {1.0});
  EXPECT_FALSE(TimeSeries::Add(a, b).ok());
}

TEST(TimeSeriesTest, ClipBelowZeroesSmallValuesKeepsMissing) {
  TimeSeries s(0, 1, {100.0, 4999.0, 5000.0, kNaN});
  const TimeSeries clipped = s.ClipBelow(5000.0);
  EXPECT_DOUBLE_EQ(clipped[0], 0.0);
  EXPECT_DOUBLE_EQ(clipped[1], 0.0);
  EXPECT_DOUBLE_EQ(clipped[2], 5000.0);
  EXPECT_TRUE(TimeSeries::IsMissing(clipped[3]));
}

TEST(TimeSeriesTest, FillMissing) {
  TimeSeries s(0, 1, {kNaN, 2.0});
  const TimeSeries filled = s.FillMissing(-1.0);
  EXPECT_DOUBLE_EQ(filled[0], -1.0);
  EXPECT_DOUBLE_EQ(filled[1], 2.0);
}

TEST(TimeSeriesTest, SliceWithinRange) {
  TimeSeries s(10, 5, {0.0, 1.0, 2.0, 3.0});
  const auto slice = s.Slice(15, 25);
  ASSERT_TRUE(slice.ok());
  EXPECT_EQ(slice->start_minute(), 15);
  EXPECT_EQ(slice->size(), 2u);
  EXPECT_DOUBLE_EQ((*slice)[0], 1.0);
  EXPECT_DOUBLE_EQ((*slice)[1], 2.0);
}

TEST(TimeSeriesTest, SliceRejectsMisalignedBounds) {
  TimeSeries s(10, 5, {0.0, 1.0});
  EXPECT_FALSE(s.Slice(11, 20).ok());
  EXPECT_FALSE(s.Slice(10, 21).ok());
}

TEST(TimeSeriesTest, SliceRejectsOutOfRange) {
  TimeSeries s(10, 5, {0.0, 1.0});
  EXPECT_EQ(s.Slice(5, 15).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(s.Slice(10, 25).status().code(), StatusCode::kOutOfRange);
}

TEST(TimeSeriesTest, SliceEmptyRangeAllowed) {
  TimeSeries s(10, 5, {0.0, 1.0});
  const auto slice = s.Slice(15, 15);
  ASSERT_TRUE(slice.ok());
  EXPECT_TRUE(slice->empty());
}

TEST(ZNormalizeTest, MeanZeroUnitVariance) {
  TimeSeries s(0, 1, {2.0, 4.0, 6.0, 8.0});
  const TimeSeries z = ZNormalize(s);
  double sum = 0.0;
  for (double v : z.values()) sum += v;
  EXPECT_NEAR(sum, 0.0, 1e-12);
  double ss = 0.0;
  for (double v : z.values()) ss += v * v;
  EXPECT_NEAR(ss / 3.0, 1.0, 1e-12);  // sample variance
}

TEST(ZNormalizeTest, ConstantSeriesBecomesZeros) {
  TimeSeries s(0, 1, {5.0, 5.0, 5.0});
  const TimeSeries z = ZNormalize(s);
  for (double v : z.values()) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(ZNormalizeTest, MissingStaysMissing) {
  TimeSeries s(0, 1, {1.0, kNaN, 3.0});
  const TimeSeries z = ZNormalize(s);
  EXPECT_TRUE(TimeSeries::IsMissing(z[1]));
  EXPECT_FALSE(TimeSeries::IsMissing(z[0]));
}

}  // namespace
}  // namespace homets::ts
