#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "ts/time_series.h"

namespace homets::ts {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

TimeSeries MinuteRamp(int64_t start, size_t n) {
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) v[i] = static_cast<double>(i);
  return TimeSeries(start, 1, std::move(v));
}

TEST(AggregateTest, SumBinning) {
  TimeSeries s(0, 1, {1.0, 2.0, 3.0, 4.0, 5.0, 6.0});
  const auto agg = Aggregate(s, 3, 0, AggKind::kSum);
  ASSERT_TRUE(agg.ok());
  ASSERT_EQ(agg->size(), 2u);
  EXPECT_DOUBLE_EQ((*agg)[0], 6.0);
  EXPECT_DOUBLE_EQ((*agg)[1], 15.0);
  EXPECT_EQ(agg->step_minutes(), 3);
}

TEST(AggregateTest, MeanAndMaxKinds) {
  TimeSeries s(0, 1, {1.0, 2.0, 3.0, 4.0});
  const auto mean = Aggregate(s, 2, 0, AggKind::kMean);
  ASSERT_TRUE(mean.ok());
  EXPECT_DOUBLE_EQ((*mean)[0], 1.5);
  const auto max = Aggregate(s, 2, 0, AggKind::kMax);
  ASSERT_TRUE(max.ok());
  EXPECT_DOUBLE_EQ((*max)[1], 4.0);
}

TEST(AggregateTest, AnchorOffsetShiftsWindows) {
  // 2am-anchored 8h windows: the paper's weekly-pattern binning.
  const int64_t two_am = 2 * kMinutesPerHour;
  TimeSeries s = MinuteRamp(0, static_cast<size_t>(kMinutesPerDay));
  const auto agg = Aggregate(s, 8 * kMinutesPerHour, two_am, AggKind::kSum);
  ASSERT_TRUE(agg.ok());
  EXPECT_EQ(agg->start_minute(), two_am);
  // One full day starting 2am only fits 2 complete 8h windows before 1440.
  EXPECT_EQ(agg->size(), 2u);
}

TEST(AggregateTest, PartialEdgesDropped) {
  TimeSeries s(0, 1, {1.0, 1.0, 1.0, 1.0, 1.0});
  const auto agg = Aggregate(s, 2, 0, AggKind::kSum);
  ASSERT_TRUE(agg.ok());
  EXPECT_EQ(agg->size(), 2u);  // fifth value belongs to an incomplete window
}

TEST(AggregateTest, MissingInputSkippedInsideWindow) {
  TimeSeries s(0, 1, {1.0, kNaN, kNaN, kNaN});
  const auto agg = Aggregate(s, 2, 0, AggKind::kSum);
  ASSERT_TRUE(agg.ok());
  EXPECT_DOUBLE_EQ((*agg)[0], 1.0);             // partial observation kept
  EXPECT_TRUE(TimeSeries::IsMissing((*agg)[1]));  // all-missing → missing
}

TEST(AggregateTest, GranularityMustDivideEvenly) {
  TimeSeries s(0, 2, {1.0, 2.0, 3.0});
  EXPECT_FALSE(Aggregate(s, 3, 0, AggKind::kSum).ok());
  EXPECT_TRUE(Aggregate(s, 4, 0, AggKind::kSum).ok());
}

TEST(AggregateTest, NonPositiveGranularityRejected) {
  TimeSeries s(0, 1, {1.0});
  EXPECT_FALSE(Aggregate(s, 0, 0, AggKind::kSum).ok());
  EXPECT_FALSE(Aggregate(s, -5, 0, AggKind::kSum).ok());
}

TEST(AggregateTest, TotalMassPreservedWhenAligned) {
  TimeSeries s = MinuteRamp(0, 120);
  const auto agg = Aggregate(s, 30, 0, AggKind::kSum);
  ASSERT_TRUE(agg.ok());
  EXPECT_DOUBLE_EQ(agg->Sum(), s.Sum());
}

TEST(SliceWindowsTest, WeeklyWindows) {
  const size_t two_weeks = static_cast<size_t>(2 * kMinutesPerWeek);
  TimeSeries s = MinuteRamp(0, two_weeks);
  const auto windows = SliceWindows(s, kMinutesPerWeek, 0);
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0].start_minute(), 0);
  EXPECT_EQ(windows[1].start_minute(), kMinutesPerWeek);
  EXPECT_EQ(windows[0].size(), static_cast<size_t>(kMinutesPerWeek));
}

TEST(SliceWindowsTest, AnchoredWindowsSkipLeadingPartial) {
  TimeSeries s = MinuteRamp(0, static_cast<size_t>(3 * kMinutesPerDay));
  const int64_t two_am = 2 * kMinutesPerHour;
  const auto windows = SliceWindows(s, kMinutesPerDay, two_am);
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0].start_minute(), two_am);
  EXPECT_EQ(windows[1].start_minute(), two_am + kMinutesPerDay);
}

TEST(SliceWindowsTest, DailyWindowsOnAggregatedSeries) {
  TimeSeries s = MinuteRamp(0, static_cast<size_t>(2 * kMinutesPerDay));
  const auto agg = Aggregate(s, 180, 0, AggKind::kSum);
  ASSERT_TRUE(agg.ok());
  const auto windows = SliceWindows(*agg, kMinutesPerDay, 0);
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0].size(), 8u);  // 24h / 3h
}

TEST(SliceWindowsTest, WindowNotMultipleOfStepYieldsNothing) {
  TimeSeries s(0, 7, std::vector<double>(100, 1.0));
  EXPECT_TRUE(SliceWindows(s, 10, 0).empty());
}

TEST(SliceWindowsTest, EmptyOrShortSeries) {
  TimeSeries empty;
  EXPECT_TRUE(SliceWindows(empty, kMinutesPerDay, 0).empty());
  TimeSeries tiny(0, 1, {1.0, 2.0});
  EXPECT_TRUE(SliceWindows(tiny, kMinutesPerDay, 0).empty());
}

TEST(SliceWindowsTest, WindowsPartitionTheAlignedRange) {
  TimeSeries s = MinuteRamp(0, static_cast<size_t>(5 * kMinutesPerDay));
  const auto windows = SliceWindows(s, kMinutesPerDay, 0);
  ASSERT_EQ(windows.size(), 5u);
  double total = 0.0;
  for (const auto& w : windows) total += w.Sum();
  EXPECT_DOUBLE_EQ(total, s.Sum());
}

}  // namespace
}  // namespace homets::ts
