#include "ts/rolling.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace homets::ts {
namespace {

TEST(RollingMomentsTest, KnownValues) {
  TimeSeries s(0, 1, {1.0, 2.0, 3.0, 4.0});
  const auto rolling = ComputeRollingMoments(s, 2).value();
  ASSERT_EQ(rolling.mean.size(), 3u);
  EXPECT_DOUBLE_EQ(rolling.mean[0], 1.5);
  EXPECT_DOUBLE_EQ(rolling.mean[2], 3.5);
  EXPECT_DOUBLE_EQ(rolling.variance[0], 0.5);
}

TEST(RollingMomentsTest, ConstantSeriesIsStable) {
  TimeSeries s(0, 1, std::vector<double>(200, 7.0));
  const auto rolling = ComputeRollingMoments(s, 20).value();
  EXPECT_DOUBLE_EQ(rolling.MeanInstability(), 0.0);
  for (double v : rolling.variance) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(RollingMomentsTest, StationaryProcessHasLowInstability) {
  Rng rng(1);
  std::vector<double> v(5000);
  for (auto& x : v) x = rng.Normal(100.0, 5.0);
  TimeSeries s(0, 1, std::move(v));
  const auto rolling = ComputeRollingMoments(s, 500).value();
  EXPECT_LT(rolling.MeanInstability(), 0.02);
  EXPECT_LT(rolling.VarianceInstability(), 0.2);
}

TEST(RollingMomentsTest, LevelShiftShowsAsMeanInstability) {
  // The paper's Section 4.2 diagnosis: home-traffic moments wander in a
  // sliding window. A mid-series regime change must register.
  Rng rng(2);
  std::vector<double> v(4000);
  for (size_t i = 0; i < v.size(); ++i) {
    const double level = i < 2000 ? 100.0 : 500.0;
    v[i] = rng.Normal(level, 5.0);
  }
  TimeSeries s(0, 1, std::move(v));
  const auto rolling = ComputeRollingMoments(s, 400).value();
  EXPECT_GT(rolling.MeanInstability(), 0.3);
}

TEST(RollingMomentsTest, MissingHandling) {
  std::vector<double> v(10, 1.0);
  v[3] = TimeSeries::Missing();
  TimeSeries s(0, 1, std::move(v));
  const auto rolling = ComputeRollingMoments(s, 3).value();
  // Window [2,3,4] still has 2 observations → defined.
  EXPECT_FALSE(TimeSeries::IsMissing(rolling.mean[2]));
}

TEST(RollingMomentsTest, SparseWindowIsMissing) {
  std::vector<double> v(10, TimeSeries::Missing());
  v[0] = 1.0;
  TimeSeries s(0, 1, std::move(v));
  const auto rolling = ComputeRollingMoments(s, 3).value();
  EXPECT_TRUE(TimeSeries::IsMissing(rolling.mean[0]));  // 1 observation only
}

TEST(RollingMomentsTest, InvalidArguments) {
  TimeSeries s(0, 1, {1.0, 2.0});
  EXPECT_FALSE(ComputeRollingMoments(s, 1).ok());
  EXPECT_FALSE(ComputeRollingMoments(s, 5).ok());
}

TEST(RollingCorrelationTest, TracksChangingRelationship) {
  // First half: y follows x; second half: independent. Rolling correlation
  // must be high early and near zero late.
  Rng rng(3);
  const size_t n = 2000;
  std::vector<double> x(n), y(n);
  for (size_t i = 0; i < n; ++i) {
    x[i] = rng.Normal();
    y[i] = i < n / 2 ? x[i] + 0.2 * rng.Normal() : rng.Normal();
  }
  TimeSeries xs(0, 1, std::move(x));
  TimeSeries ys(0, 1, std::move(y));
  const auto rolling = RollingCorrelation(xs, ys, 200).value();
  EXPECT_GT(rolling.front(), 0.9);
  EXPECT_LT(std::fabs(rolling.back()), 0.3);
}

TEST(RollingCorrelationTest, PerfectRelationIsOneEverywhere) {
  std::vector<double> x(100), y(100);
  Rng rng(4);
  for (size_t i = 0; i < 100; ++i) {
    x[i] = rng.Normal();
    y[i] = 3.0 * x[i] + 1.0;
  }
  TimeSeries xs(0, 1, std::move(x));
  TimeSeries ys(0, 1, std::move(y));
  const auto rolling = RollingCorrelation(xs, ys, 10).value();
  for (double r : rolling) {
    EXPECT_NEAR(r, 1.0, 1e-9);
  }
}

TEST(RollingCorrelationTest, ConstantWindowIsMissing) {
  TimeSeries xs(0, 1, {1.0, 1.0, 1.0, 1.0, 2.0});
  TimeSeries ys(0, 1, {1.0, 2.0, 3.0, 4.0, 5.0});
  const auto rolling = RollingCorrelation(xs, ys, 4).value();
  EXPECT_TRUE(TimeSeries::IsMissing(rolling[0]));  // constant x window
  EXPECT_FALSE(TimeSeries::IsMissing(rolling[1]));
}

TEST(RollingCorrelationTest, UsesOverlapOfOffsetSeries) {
  std::vector<double> base(50);
  Rng rng(5);
  for (auto& v : base) v = rng.Normal();
  TimeSeries xs(0, 1, base);
  TimeSeries ys(10, 1, std::vector<double>(base.begin() + 10, base.end()));
  const auto overlap_rolling = RollingCorrelation(xs, ys, 10).value();
  for (double r : overlap_rolling) EXPECT_NEAR(r, 1.0, 1e-9);
}

TEST(RollingCorrelationTest, InvalidArguments) {
  TimeSeries a(0, 1, std::vector<double>(20, 1.0));
  TimeSeries b(0, 2, std::vector<double>(20, 1.0));
  EXPECT_FALSE(RollingCorrelation(a, b, 5).ok());       // step mismatch
  EXPECT_FALSE(RollingCorrelation(a, a, 2).ok());       // window too small
  TimeSeries far(1000, 1, std::vector<double>(20, 1.0));
  EXPECT_FALSE(RollingCorrelation(a, far, 5).ok());     // no overlap
}

}  // namespace
}  // namespace homets::ts
