#include "stats/boxplot.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/random.h"

namespace homets::stats {
namespace {

TEST(BoxplotTest, NoOutliersInTightSample) {
  const auto box = ComputeBoxplot({1, 2, 3, 4, 5, 6, 7, 8}).value();
  EXPECT_DOUBLE_EQ(box.median, 4.5);
  EXPECT_TRUE(box.outliers.empty());
  EXPECT_DOUBLE_EQ(box.lower_whisker, 1.0);
  EXPECT_DOUBLE_EQ(box.upper_whisker, 8.0);
}

TEST(BoxplotTest, DetectsHighOutlier) {
  // The classic home-traffic shape: many low values, one active burst.
  std::vector<double> xs(100, 10.0);
  for (size_t i = 0; i < 50; ++i) xs[i] = 12.0;
  xs.push_back(1e7);
  const auto box = ComputeBoxplot(xs).value();
  ASSERT_EQ(box.outliers.size(), 1u);
  EXPECT_DOUBLE_EQ(box.outliers[0], 1e7);
  EXPECT_LE(box.upper_whisker, 12.0 + 1.5 * box.iqr);
}

TEST(BoxplotTest, DetectsLowOutlier) {
  std::vector<double> xs{-100.0};
  for (int i = 0; i < 50; ++i) xs.push_back(50.0 + i % 5);
  const auto box = ComputeBoxplot(xs).value();
  ASSERT_EQ(box.outliers.size(), 1u);
  EXPECT_DOUBLE_EQ(box.outliers[0], -100.0);
  EXPECT_GE(box.lower_whisker, box.q1 - 1.5 * box.iqr);
}

TEST(BoxplotTest, WhiskersAreDataPoints) {
  Rng rng(5);
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(rng.Normal(0.0, 1.0));
  const auto box = ComputeBoxplot(xs).value();
  // Whiskers must coincide with actual observations.
  EXPECT_NE(std::find(xs.begin(), xs.end(), box.lower_whisker), xs.end());
  EXPECT_NE(std::find(xs.begin(), xs.end(), box.upper_whisker), xs.end());
}

TEST(BoxplotTest, IqrConsistency) {
  const auto box = ComputeBoxplot({1, 2, 3, 4, 5, 100}).value();
  EXPECT_DOUBLE_EQ(box.iqr, box.q3 - box.q1);
  EXPECT_LE(box.q1, box.median);
  EXPECT_LE(box.median, box.q3);
}

TEST(BoxplotTest, ZeroWhiskerFactorMarksEverythingOutsideBox) {
  const auto box = ComputeBoxplot({1, 2, 3, 4, 5, 6, 7, 8, 9}, 0.0).value();
  for (double o : box.outliers) {
    EXPECT_TRUE(o < box.q1 || o > box.q3);
  }
}

TEST(BoxplotTest, ConstantSample) {
  const auto box = ComputeBoxplot({5, 5, 5, 5}).value();
  EXPECT_DOUBLE_EQ(box.iqr, 0.0);
  EXPECT_DOUBLE_EQ(box.upper_whisker, 5.0);
  EXPECT_TRUE(box.outliers.empty());
}

TEST(BoxplotTest, ErrorsOnBadInput) {
  EXPECT_FALSE(ComputeBoxplot({}).ok());
  EXPECT_FALSE(ComputeBoxplot({1.0}, -1.0).ok());
}

TEST(BoxplotTest, OutlierFraction) {
  Boxplot box;
  box.outliers = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(box.OutlierFraction(100), 0.02);
  EXPECT_DOUBLE_EQ(box.OutlierFraction(0), 0.0);
}

TEST(BoxplotTest, ZipfLikeTrafficPutsActiveValuesInOutliers) {
  // Background-dominated sample: the upper whisker must sit far below the
  // active-traffic scale, which is exactly how the paper derives τ.
  Rng rng(7);
  std::vector<double> xs;
  for (int i = 0; i < 2000; ++i) xs.push_back(rng.LogNormal(std::log(300), 0.8));
  for (int i = 0; i < 20; ++i) xs.push_back(rng.LogNormal(std::log(5e6), 0.5));
  const auto box = ComputeBoxplot(xs).value();
  EXPECT_LT(box.upper_whisker, 1e5);
  EXPECT_GE(box.outliers.size(), 20u);
}

}  // namespace
}  // namespace homets::stats
