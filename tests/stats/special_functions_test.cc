#include "stats/special_functions.h"

#include <gtest/gtest.h>

#include <cmath>

namespace homets::stats {
namespace {

TEST(LogGammaTest, KnownValues) {
  EXPECT_NEAR(LogGamma(1.0), 0.0, 1e-12);
  EXPECT_NEAR(LogGamma(2.0), 0.0, 1e-12);
  EXPECT_NEAR(LogGamma(5.0), std::log(24.0), 1e-10);
  EXPECT_NEAR(LogGamma(0.5), 0.5 * std::log(M_PI), 1e-10);
  EXPECT_NEAR(LogGamma(10.0), std::log(362880.0), 1e-8);
}

TEST(LogGammaTest, RecurrenceHolds) {
  // ln Γ(x+1) = ln Γ(x) + ln x
  for (double x : {0.3, 1.7, 4.2, 11.5, 99.0}) {
    EXPECT_NEAR(LogGamma(x + 1.0), LogGamma(x) + std::log(x), 1e-9)
        << "x = " << x;
  }
}

TEST(RegularizedGammaPTest, BoundaryValues) {
  EXPECT_DOUBLE_EQ(RegularizedGammaP(2.0, 0.0), 0.0);
  EXPECT_NEAR(RegularizedGammaP(1.0, 1e9), 1.0, 1e-12);
}

TEST(RegularizedGammaPTest, ExponentialSpecialCase) {
  // P(1, x) = 1 − e^{−x}
  for (double x : {0.1, 0.5, 1.0, 3.0, 10.0}) {
    EXPECT_NEAR(RegularizedGammaP(1.0, x), 1.0 - std::exp(-x), 1e-10);
  }
}

TEST(RegularizedGammaPTest, MonotoneInX) {
  double prev = 0.0;
  for (double x = 0.1; x < 20.0; x += 0.5) {
    const double p = RegularizedGammaP(3.0, x);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(IncompleteBetaTest, BoundaryAndSymmetry) {
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2.0, 3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2.0, 3.0, 1.0), 1.0);
  // I_x(a, b) = 1 − I_{1−x}(b, a)
  for (double x : {0.1, 0.35, 0.5, 0.8}) {
    EXPECT_NEAR(RegularizedIncompleteBeta(2.5, 4.0, x),
                1.0 - RegularizedIncompleteBeta(4.0, 2.5, 1.0 - x), 1e-10);
  }
}

TEST(IncompleteBetaTest, UniformSpecialCase) {
  // I_x(1, 1) = x
  for (double x : {0.05, 0.3, 0.77}) {
    EXPECT_NEAR(RegularizedIncompleteBeta(1.0, 1.0, x), x, 1e-10);
  }
}

TEST(IncompleteBetaTest, KnownValue) {
  // I_{0.5}(2, 2) = 0.5 by symmetry.
  EXPECT_NEAR(RegularizedIncompleteBeta(2.0, 2.0, 0.5), 0.5, 1e-10);
}

TEST(NormalCdfTest, StandardValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.959963985), 0.975, 1e-6);
  EXPECT_NEAR(NormalCdf(-1.959963985), 0.025, 1e-6);
  EXPECT_NEAR(NormalCdf(3.0), 0.99865, 1e-5);
}

TEST(NormalQuantileTest, InvertsCdf) {
  for (double p : {0.001, 0.01, 0.025, 0.2, 0.5, 0.8, 0.975, 0.999}) {
    EXPECT_NEAR(NormalCdf(NormalQuantile(p)), p, 1e-7) << "p = " << p;
  }
}

TEST(NormalQuantileTest, KnownValues) {
  EXPECT_NEAR(NormalQuantile(0.5), 0.0, 1e-8);
  EXPECT_NEAR(NormalQuantile(0.975), 1.959964, 1e-5);
}

TEST(StudentTCdfTest, SymmetryAndCenter) {
  EXPECT_NEAR(StudentTCdf(0.0, 5.0), 0.5, 1e-12);
  for (double t : {0.5, 1.3, 2.8}) {
    EXPECT_NEAR(StudentTCdf(t, 7.0) + StudentTCdf(-t, 7.0), 1.0, 1e-10);
  }
}

TEST(StudentTCdfTest, ConvergesToNormalForLargeDof) {
  EXPECT_NEAR(StudentTCdf(1.96, 1e6), NormalCdf(1.96), 1e-4);
}

TEST(StudentTCdfTest, KnownQuantile) {
  // t_{0.975, 10} ≈ 2.228139
  EXPECT_NEAR(StudentTCdf(2.228139, 10.0), 0.975, 1e-5);
}

TEST(StudentTTwoSidedPValueTest, MatchesCdf) {
  for (double t : {0.7, 1.5, 2.5}) {
    const double p = StudentTTwoSidedPValue(t, 12.0);
    EXPECT_NEAR(p, 2.0 * (1.0 - StudentTCdf(t, 12.0)), 1e-10);
    EXPECT_NEAR(StudentTTwoSidedPValue(-t, 12.0), p, 1e-12);
  }
}

TEST(ChiSquaredCdfTest, KnownValues) {
  EXPECT_DOUBLE_EQ(ChiSquaredCdf(0.0, 3.0), 0.0);
  // χ²(0.95, 1 dof) critical value ≈ 3.841459
  EXPECT_NEAR(ChiSquaredCdf(3.841459, 1.0), 0.95, 1e-5);
  // χ²(0.95, 5 dof) critical value ≈ 11.0705
  EXPECT_NEAR(ChiSquaredCdf(11.0705, 5.0), 0.95, 1e-5);
}

TEST(KolmogorovQTest, LimitsAndKnownValues) {
  EXPECT_DOUBLE_EQ(KolmogorovQ(0.0), 1.0);
  EXPECT_NEAR(KolmogorovQ(10.0), 0.0, 1e-12);
  // Q(1.3581) ≈ 0.05 (the classic 5% point).
  EXPECT_NEAR(KolmogorovQ(1.3581), 0.05, 5e-4);
  // Q(1.2238) ≈ 0.10
  EXPECT_NEAR(KolmogorovQ(1.2238), 0.10, 5e-4);
}

TEST(KolmogorovQTest, MonotoneDecreasing) {
  double prev = 1.0;
  for (double lambda = 0.2; lambda < 3.0; lambda += 0.1) {
    const double q = KolmogorovQ(lambda);
    EXPECT_LE(q, prev + 1e-12);
    prev = q;
  }
}

}  // namespace
}  // namespace homets::stats
