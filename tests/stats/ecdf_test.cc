#include "stats/ecdf.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace homets::stats {
namespace {

TEST(EcdfTest, StepFunctionValues) {
  const auto ecdf = Ecdf::Fit({1.0, 2.0, 3.0, 4.0}).value();
  EXPECT_DOUBLE_EQ(ecdf.Evaluate(0.5), 0.0);
  EXPECT_DOUBLE_EQ(ecdf.Evaluate(1.0), 0.25);
  EXPECT_DOUBLE_EQ(ecdf.Evaluate(2.5), 0.5);
  EXPECT_DOUBLE_EQ(ecdf.Evaluate(4.0), 1.0);
  EXPECT_DOUBLE_EQ(ecdf.Evaluate(100.0), 1.0);
}

TEST(EcdfTest, HandlesTies) {
  const auto ecdf = Ecdf::Fit({5.0, 5.0, 5.0, 10.0}).value();
  EXPECT_DOUBLE_EQ(ecdf.Evaluate(5.0), 0.75);
  EXPECT_DOUBLE_EQ(ecdf.Evaluate(4.9), 0.0);
}

TEST(EcdfTest, DropsNans) {
  const auto ecdf = Ecdf::Fit({1.0, std::nan(""), 2.0}).value();
  EXPECT_EQ(ecdf.size(), 2u);
}

TEST(EcdfTest, EmptyErrors) {
  EXPECT_FALSE(Ecdf::Fit({}).ok());
  EXPECT_FALSE(Ecdf::Fit({std::nan("")}).ok());
}

TEST(EcdfTest, QuantileInvertsEvaluate) {
  const auto ecdf = Ecdf::Fit({10.0, 20.0, 30.0, 40.0, 50.0}).value();
  EXPECT_DOUBLE_EQ(ecdf.Quantile(0.2).value(), 10.0);
  EXPECT_DOUBLE_EQ(ecdf.Quantile(0.5).value(), 30.0);
  EXPECT_DOUBLE_EQ(ecdf.Quantile(1.0).value(), 50.0);
  EXPECT_FALSE(ecdf.Quantile(0.0).ok());
  EXPECT_FALSE(ecdf.Quantile(1.5).ok());
}

TEST(EcdfTest, MinMax) {
  const auto ecdf = Ecdf::Fit({3.0, 1.0, 2.0}).value();
  EXPECT_DOUBLE_EQ(ecdf.min(), 1.0);
  EXPECT_DOUBLE_EQ(ecdf.max(), 3.0);
}

TEST(EcdfTest, ConvergesToTrueCdf) {
  Rng rng(1);
  std::vector<double> xs(50000);
  for (auto& x : xs) x = rng.Normal();
  const auto ecdf = Ecdf::Fit(xs).value();
  EXPECT_NEAR(ecdf.Evaluate(0.0), 0.5, 0.01);
  EXPECT_NEAR(ecdf.Evaluate(1.96), 0.975, 0.01);
}

TEST(EcdfTest, KsStatisticZeroForIdenticalSamples) {
  const auto a = Ecdf::Fit({1, 2, 3, 4}).value();
  const auto b = Ecdf::Fit({1, 2, 3, 4}).value();
  EXPECT_DOUBLE_EQ(a.KsStatistic(b), 0.0);
}

TEST(EcdfTest, KsStatisticOneForDisjointSupports) {
  const auto a = Ecdf::Fit({1, 2, 3}).value();
  const auto b = Ecdf::Fit({10, 11, 12}).value();
  EXPECT_DOUBLE_EQ(a.KsStatistic(b), 1.0);
  EXPECT_DOUBLE_EQ(b.KsStatistic(a), 1.0);  // symmetric
}

TEST(EcdfTest, KsStatisticDetectsShift) {
  Rng rng(2);
  std::vector<double> xs(5000), ys(5000);
  for (auto& x : xs) x = rng.Normal(0.0, 1.0);
  for (auto& y : ys) y = rng.Normal(0.5, 1.0);
  const auto a = Ecdf::Fit(xs).value();
  const auto b = Ecdf::Fit(ys).value();
  EXPECT_GT(a.KsStatistic(b), 0.1);
}

}  // namespace
}  // namespace homets::stats
