#include "stats/ranks.h"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

namespace homets::stats {
namespace {

TEST(AverageRanksTest, NoTies) {
  const auto ranks = AverageRanks({30.0, 10.0, 20.0});
  ASSERT_EQ(ranks.size(), 3u);
  EXPECT_DOUBLE_EQ(ranks[0], 3.0);
  EXPECT_DOUBLE_EQ(ranks[1], 1.0);
  EXPECT_DOUBLE_EQ(ranks[2], 2.0);
}

TEST(AverageRanksTest, TiesGetAverageRank) {
  const auto ranks = AverageRanks({10.0, 20.0, 20.0, 30.0});
  EXPECT_DOUBLE_EQ(ranks[0], 1.0);
  EXPECT_DOUBLE_EQ(ranks[1], 2.5);
  EXPECT_DOUBLE_EQ(ranks[2], 2.5);
  EXPECT_DOUBLE_EQ(ranks[3], 4.0);
}

TEST(AverageRanksTest, AllTied) {
  const auto ranks = AverageRanks({7.0, 7.0, 7.0});
  for (double r : ranks) EXPECT_DOUBLE_EQ(r, 2.0);
}

TEST(AverageRanksTest, RankSumInvariant) {
  // Σ ranks = n(n+1)/2 regardless of ties.
  const std::vector<double> xs{5, 5, 1, 3, 3, 3, 9, 2};
  const auto ranks = AverageRanks(xs);
  const double sum = std::accumulate(ranks.begin(), ranks.end(), 0.0);
  EXPECT_DOUBLE_EQ(sum, 8.0 * 9.0 / 2.0);
}

TEST(AverageRanksTest, EmptyInput) {
  EXPECT_TRUE(AverageRanks({}).empty());
}

TEST(AverageRanksTest, SingleElement) {
  const auto ranks = AverageRanks({42.0});
  ASSERT_EQ(ranks.size(), 1u);
  EXPECT_DOUBLE_EQ(ranks[0], 1.0);
}

TEST(TieGroupSizesTest, FindsGroups) {
  const auto groups = TieGroupSizes({1, 2, 2, 3, 3, 3, 4});
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0], 2u);
  EXPECT_EQ(groups[1], 3u);
}

TEST(TieGroupSizesTest, NoTies) {
  EXPECT_TRUE(TieGroupSizes({1, 2, 3}).empty());
}

TEST(TieGroupSizesTest, AllSame) {
  const auto groups = TieGroupSizes({5, 5, 5, 5});
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0], 4u);
}

TEST(TieGroupSizesTest, UnsortedInput) {
  const auto groups = TieGroupSizes({3, 1, 3, 2, 1});
  ASSERT_EQ(groups.size(), 2u);  // two groups of size 2 (1s and 3s)
  EXPECT_EQ(groups[0], 2u);
  EXPECT_EQ(groups[1], 2u);
}

}  // namespace
}  // namespace homets::stats
