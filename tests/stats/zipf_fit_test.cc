#include "stats/zipf_fit.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/random.h"

namespace homets::stats {
namespace {

TEST(ZipfFitTest, RecognizesZipfianSample) {
  Rng rng(1);
  std::vector<double> xs;
  // Values drawn as Zipf ranks scaled: rank-frequency curve is a power law.
  for (int i = 0; i < 20000; ++i) {
    xs.push_back(100.0 * rng.Zipf(500, 1.3));
  }
  const auto fit = FitZipfRankFrequency(xs).value();
  EXPECT_GT(fit.exponent, 0.4);
  EXPECT_GT(fit.r_squared, 0.7);
  EXPECT_GE(fit.ranks_used, 3u);
}

TEST(ZipfFitTest, HeavyTailedLogNormalAlsoSkewed) {
  // Home traffic is approximately Zipfian; a wide log-normal should still
  // show a clearly decaying rank-frequency curve.
  Rng rng(2);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(rng.LogNormal(std::log(500), 1.6));
  const auto fit = FitZipfRankFrequency(xs).value();
  EXPECT_GT(fit.exponent, 0.0);
}

TEST(ZipfFitTest, UniformSampleFitsPoorlyOrFlat) {
  Rng rng(3);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(rng.Uniform(1.0, 2.0));
  const auto fit = FitZipfRankFrequency(xs, 32);
  if (fit.ok()) {
    // Uniform data: either a shallow slope or a bad fit — never a confident
    // steep power law.
    EXPECT_TRUE(fit->exponent < 0.8 || fit->r_squared < 0.8)
        << "exponent=" << fit->exponent << " r2=" << fit->r_squared;
  }
}

TEST(ZipfFitTest, IgnoresZerosAndNaNs) {
  Rng rng(4);
  std::vector<double> xs;
  for (int i = 0; i < 5000; ++i) {
    xs.push_back(100.0 * rng.Zipf(100, 1.2));
    xs.push_back(0.0);
    xs.push_back(std::nan(""));
  }
  EXPECT_TRUE(FitZipfRankFrequency(xs).ok());
}

TEST(ZipfFitTest, ErrorsOnDegenerateInput) {
  EXPECT_FALSE(FitZipfRankFrequency({}).ok());
  EXPECT_FALSE(FitZipfRankFrequency({1, 2, 3}).ok());  // too few positives
  const std::vector<double> constant(100, 5.0);
  EXPECT_FALSE(FitZipfRankFrequency(constant).ok());  // degenerate support
  EXPECT_FALSE(FitZipfRankFrequency(constant, 2).ok());  // too few bins
}

}  // namespace
}  // namespace homets::stats
