#include "stats/descriptive.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace homets::stats {
namespace {

TEST(MeanTest, Basic) {
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}).value(), 2.0);
  EXPECT_DOUBLE_EQ(Mean({-4.0, 4.0}).value(), 0.0);
  EXPECT_DOUBLE_EQ(Mean({7.0}).value(), 7.0);
}

TEST(MeanTest, EmptyIsError) {
  EXPECT_EQ(Mean({}).status().code(), StatusCode::kInvalidArgument);
}

TEST(VarianceTest, SampleVariance) {
  // var({2,4,4,4,5,5,7,9}) with n−1 = 32/7
  EXPECT_NEAR(Variance({2, 4, 4, 4, 5, 5, 7, 9}).value(), 32.0 / 7.0, 1e-12);
}

TEST(VarianceTest, ConstantSeriesIsZero) {
  EXPECT_DOUBLE_EQ(Variance({3.0, 3.0, 3.0}).value(), 0.0);
}

TEST(VarianceTest, NeedsTwoObservations) {
  EXPECT_FALSE(Variance({1.0}).ok());
  EXPECT_FALSE(Variance({}).ok());
}

TEST(StdDevTest, SquareRootOfVariance) {
  EXPECT_NEAR(StdDev({1.0, 5.0}).value(), std::sqrt(8.0), 1e-12);
}

TEST(QuantileTest, Type7Interpolation) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.0).value(), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 1.0).value(), 4.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.5).value(), 2.5);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.25).value(), 1.75);  // R type-7 value
}

TEST(QuantileTest, UnsortedInputHandled) {
  EXPECT_DOUBLE_EQ(Quantile({9.0, 1.0, 5.0}, 0.5).value(), 5.0);
}

TEST(QuantileTest, OutOfRangeQ) {
  EXPECT_FALSE(Quantile({1.0}, -0.1).ok());
  EXPECT_FALSE(Quantile({1.0}, 1.1).ok());
}

TEST(MedianTest, OddAndEven) {
  EXPECT_DOUBLE_EQ(Median({3.0, 1.0, 2.0}).value(), 2.0);
  EXPECT_DOUBLE_EQ(Median({4.0, 1.0, 2.0, 3.0}).value(), 2.5);
}

TEST(MinMaxTest, Basic) {
  EXPECT_DOUBLE_EQ(Min({3.0, -1.0, 2.0}).value(), -1.0);
  EXPECT_DOUBLE_EQ(Max({3.0, -1.0, 2.0}).value(), 3.0);
  EXPECT_FALSE(Min({}).ok());
  EXPECT_FALSE(Max({}).ok());
}

TEST(SkewnessTest, SymmetricIsZero) {
  EXPECT_NEAR(Skewness({-2, -1, 0, 1, 2}).value(), 0.0, 1e-12);
}

TEST(SkewnessTest, RightSkewPositive) {
  // A heavy right tail must give positive skewness — the shape of home
  // traffic distributions.
  EXPECT_GT(Skewness({1, 1, 1, 1, 1, 2, 2, 3, 50}).value(), 1.0);
}

TEST(SkewnessTest, DegenerateErrors) {
  EXPECT_FALSE(Skewness({1.0, 2.0}).ok());
  EXPECT_FALSE(Skewness({5.0, 5.0, 5.0}).ok());
}

TEST(SummarizeTest, AllFieldsConsistent) {
  const auto s = Summarize({4.0, 1.0, 3.0, 2.0, 5.0}).value();
  EXPECT_EQ(s.n, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.q1, 2.0);
  EXPECT_DOUBLE_EQ(s.q3, 4.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
}

TEST(SummarizeTest, SingleObservation) {
  const auto s = Summarize({42.0}).value();
  EXPECT_EQ(s.n, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 42.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.median, 42.0);
}

class QuantileOrderTest : public ::testing::TestWithParam<double> {};

TEST_P(QuantileOrderTest, QuantilesAreMonotoneInQ) {
  const std::vector<double> xs{5.0, 2.0, 9.0, 1.0, 7.0, 7.0, 3.0};
  const double q = GetParam();
  const double lo = Quantile(xs, q).value();
  const double hi = Quantile(xs, std::min(1.0, q + 0.2)).value();
  EXPECT_LE(lo, hi);
}

INSTANTIATE_TEST_SUITE_P(Sweep, QuantileOrderTest,
                         ::testing::Values(0.0, 0.1, 0.25, 0.4, 0.6, 0.8));

}  // namespace
}  // namespace homets::stats
