#include "stats/kde.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace homets::stats {
namespace {

TEST(KdeTest, RequiresTwoPoints) {
  EXPECT_FALSE(KernelDensity::Fit({1.0}).ok());
  EXPECT_TRUE(KernelDensity::Fit({1.0, 2.0}).ok());
}

TEST(KdeTest, SilvermanBandwidthPositive) {
  Rng rng(3);
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) xs.push_back(rng.Normal());
  const auto kde = KernelDensity::Fit(xs).value();
  EXPECT_GT(kde.bandwidth(), 0.0);
  EXPECT_LT(kde.bandwidth(), 1.0);  // n^{−1/5} shrinkage
}

TEST(KdeTest, ExplicitBandwidthRespected) {
  const auto kde = KernelDensity::Fit({0.0, 1.0, 2.0}, 0.5).value();
  EXPECT_DOUBLE_EQ(kde.bandwidth(), 0.5);
}

TEST(KdeTest, DensityPeaksAtDataMass) {
  std::vector<double> xs;
  Rng rng(9);
  for (int i = 0; i < 500; ++i) xs.push_back(rng.Normal(0.0, 1.0));
  const auto kde = KernelDensity::Fit(xs).value();
  EXPECT_GT(kde.Evaluate(0.0), kde.Evaluate(3.0));
  EXPECT_GT(kde.Evaluate(0.0), kde.Evaluate(-3.0));
}

TEST(KdeTest, ApproximatesStandardNormalDensity) {
  Rng rng(11);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(rng.Normal());
  const auto kde = KernelDensity::Fit(xs).value();
  const double phi0 = 1.0 / std::sqrt(2.0 * M_PI);
  EXPECT_NEAR(kde.Evaluate(0.0), phi0, 0.02);
  EXPECT_NEAR(kde.Evaluate(1.0), phi0 * std::exp(-0.5), 0.02);
}

TEST(KdeTest, IntegratesToOne) {
  Rng rng(13);
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) xs.push_back(rng.Normal(5.0, 2.0));
  const auto kde = KernelDensity::Fit(xs).value();
  // Trapezoidal integration over a wide grid.
  const auto grid = kde.EvaluateGrid(2001);
  double integral = 0.0;
  for (size_t i = 1; i < grid.size(); ++i) {
    integral += 0.5 * (grid[i].second + grid[i - 1].second) *
                (grid[i].first - grid[i - 1].first);
  }
  EXPECT_NEAR(integral, 1.0, 0.01);
}

TEST(KdeTest, ZipfianTrafficMassConcentratesNearZero) {
  // The Figure 1a shape: almost all density at low traffic values.
  Rng rng(17);
  std::vector<double> xs;
  for (int i = 0; i < 3000; ++i) xs.push_back(rng.LogNormal(std::log(500), 1.0));
  for (int i = 0; i < 30; ++i) xs.push_back(rng.LogNormal(std::log(1e7), 0.4));
  const auto kde = KernelDensity::Fit(xs).value();
  EXPECT_GT(kde.Evaluate(500.0), 100.0 * kde.Evaluate(1e7));
}

TEST(KdeTest, GridCoversSampleRange) {
  const auto kde = KernelDensity::Fit({0.0, 10.0}, 1.0).value();
  const auto grid = kde.EvaluateGrid(11);
  ASSERT_EQ(grid.size(), 11u);
  EXPECT_LE(grid.front().first, 0.0);
  EXPECT_GE(grid.back().first, 10.0);
}

TEST(KdeTest, EmptyGridRequest) {
  const auto kde = KernelDensity::Fit({0.0, 1.0}).value();
  EXPECT_TRUE(kde.EvaluateGrid(0).empty());
}

TEST(KdeTest, ConstantSampleGetsFallbackBandwidth) {
  const auto kde = KernelDensity::Fit({5.0, 5.0, 5.0, 5.0}).value();
  EXPECT_GT(kde.bandwidth(), 0.0);
  EXPECT_GT(kde.Evaluate(5.0), 0.0);
}

}  // namespace
}  // namespace homets::stats
