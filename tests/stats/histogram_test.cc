#include "stats/histogram.h"

#include <gtest/gtest.h>

#include <cmath>

namespace homets::stats {
namespace {

TEST(HistogramTest, BasicBinning) {
  auto hist = Histogram::Make(0.0, 10.0, 5).value();
  hist.AddAll({0.5, 1.5, 2.5, 3.5, 9.9});
  EXPECT_EQ(hist.counts()[0], 2u);  // [0,2)
  EXPECT_EQ(hist.counts()[1], 2u);  // [2,4)
  EXPECT_EQ(hist.counts()[4], 1u);  // [8,10)
  EXPECT_EQ(hist.total(), 5u);
  EXPECT_EQ(hist.underflow(), 0u);
  EXPECT_EQ(hist.overflow(), 0u);
}

TEST(HistogramTest, OutOfRangeCounted) {
  auto hist = Histogram::Make(0.0, 10.0, 2).value();
  hist.Add(-1.0);
  hist.Add(10.0);  // hi edge is exclusive
  hist.Add(100.0);
  EXPECT_EQ(hist.underflow(), 1u);
  EXPECT_EQ(hist.overflow(), 2u);
  EXPECT_EQ(hist.total(), 3u);
}

TEST(HistogramTest, NanCountsAsUnderflow) {
  auto hist = Histogram::Make(0.0, 1.0, 1).value();
  hist.Add(std::nan(""));
  EXPECT_EQ(hist.underflow(), 1u);
  EXPECT_EQ(hist.counts()[0], 0u);
}

TEST(HistogramTest, BinEdges) {
  auto hist = Histogram::Make(10.0, 20.0, 4).value();
  EXPECT_DOUBLE_EQ(hist.Width(), 2.5);
  EXPECT_DOUBLE_EQ(hist.BinLeft(0), 10.0);
  EXPECT_DOUBLE_EQ(hist.BinLeft(3), 17.5);
}

TEST(HistogramTest, LeftEdgeInclusive) {
  auto hist = Histogram::Make(0.0, 4.0, 4).value();
  hist.Add(0.0);
  hist.Add(1.0);
  EXPECT_EQ(hist.counts()[0], 1u);
  EXPECT_EQ(hist.counts()[1], 1u);
}

TEST(HistogramTest, CumulativeFraction) {
  auto hist = Histogram::Make(0.0, 4.0, 4).value();
  hist.AddAll({0.5, 1.5, 2.5, 3.5});
  EXPECT_DOUBLE_EQ(hist.CumulativeFraction(0), 0.25);
  EXPECT_DOUBLE_EQ(hist.CumulativeFraction(1), 0.5);
  EXPECT_DOUBLE_EQ(hist.CumulativeFraction(3), 1.0);
}

TEST(HistogramTest, CumulativeFractionIgnoresOutOfRange) {
  auto hist = Histogram::Make(0.0, 4.0, 2).value();
  hist.AddAll({1.0, 3.0, 99.0});
  EXPECT_DOUBLE_EQ(hist.CumulativeFraction(1), 1.0);
}

TEST(HistogramTest, EmptyHistogramCumulativeIsZero) {
  auto hist = Histogram::Make(0.0, 1.0, 3).value();
  EXPECT_DOUBLE_EQ(hist.CumulativeFraction(2), 0.0);
}

TEST(HistogramTest, InvalidConstruction) {
  EXPECT_FALSE(Histogram::Make(1.0, 1.0, 3).ok());
  EXPECT_FALSE(Histogram::Make(2.0, 1.0, 3).ok());
  EXPECT_FALSE(Histogram::Make(0.0, 1.0, 0).ok());
}

}  // namespace
}  // namespace homets::stats
