#include "common/status.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>

namespace homets {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoryHelpersSetCodeAndMessage) {
  const Status st = Status::InvalidArgument("bad input");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad input");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInvalidArgument),
            "InvalidArgument");
  EXPECT_EQ(StatusCodeToString(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_EQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_EQ(StatusCodeToString(StatusCode::kAlreadyExists), "AlreadyExists");
  EXPECT_EQ(StatusCodeToString(StatusCode::kFailedPrecondition),
            "FailedPrecondition");
  EXPECT_EQ(StatusCodeToString(StatusCode::kComputeError), "ComputeError");
  EXPECT_EQ(StatusCodeToString(StatusCode::kIoError), "IoError");
  EXPECT_EQ(StatusCodeToString(StatusCode::kNotImplemented), "NotImplemented");
  EXPECT_EQ(StatusCodeToString(StatusCode::kUnknown), "Unknown");
  EXPECT_EQ(StatusCodeToString(StatusCode::kCancelled), "Cancelled");
  EXPECT_EQ(StatusCodeToString(StatusCode::kDeadlineExceeded),
            "DeadlineExceeded");
}

TEST(StatusTest, CancellationFactories) {
  const Status cancelled = Status::Cancelled("stopped by caller");
  EXPECT_FALSE(cancelled.ok());
  EXPECT_EQ(cancelled.code(), StatusCode::kCancelled);
  EXPECT_EQ(cancelled.ToString(), "Cancelled: stopped by caller");
  const Status late = Status::DeadlineExceeded("over budget");
  EXPECT_EQ(late.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(late.ToString(), "DeadlineExceeded: over budget");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::IoError("x"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(0), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, ConstructingFromOkStatusBecomesUnknownError) {
  Result<int> r(Status::OK());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnknown);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string taken = std::move(r).value();
  EXPECT_EQ(taken, "payload");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  HOMETS_ASSIGN_OR_RETURN(const int half, Half(x));
  HOMETS_ASSIGN_OR_RETURN(const int quarter, Half(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnPropagatesErrors) {
  EXPECT_EQ(Quarter(8).value(), 2);
  EXPECT_EQ(Quarter(6).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Quarter(7).status().code(), StatusCode::kInvalidArgument);
}

Status FailWhenNegative(int x) {
  if (x < 0) return Status::OutOfRange("negative");
  return Status::OK();
}

Status Check(int a, int b) {
  HOMETS_RETURN_IF_ERROR(FailWhenNegative(a));
  // The historical spelling stays a strict alias of HOMETS_RETURN_IF_ERROR.
  HOMETS_RETURN_NOT_OK(FailWhenNegative(b));
  return Status::OK();
}

TEST(ResultTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(Check(1, 2).ok());
  EXPECT_EQ(Check(-1, 2).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Check(1, -2).code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace homets
