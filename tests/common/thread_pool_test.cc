#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <vector>

namespace homets {
namespace {

TEST(ResolveThreadCountTest, PositivePassesThroughZeroMeansHardware) {
  EXPECT_EQ(ResolveThreadCount(3), 3);
  EXPECT_EQ(ResolveThreadCount(1), 1);
  EXPECT_GE(ResolveThreadCount(0), 1);
  EXPECT_GE(ResolveThreadCount(-5), 1);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  for (const int threads : {1, 2, 4, 9}) {
    for (const size_t n : {1u, 7u, 64u, 1000u}) {
      std::vector<std::atomic<int>> hits(n);
      for (auto& h : hits) h.store(0);
      ParallelFor(n, threads, 16, [&](size_t begin, size_t end, int) {
        for (size_t i = begin; i < end; ++i) {
          hits[i].fetch_add(1, std::memory_order_relaxed);
        }
      });
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "index " << i << " with " << threads
                                     << " threads over " << n;
      }
    }
  }
}

TEST(ParallelForTest, EmptyRangeNeverInvokes) {
  bool invoked = false;
  ParallelFor(0, 4, 8, [&](size_t, size_t, int) { invoked = true; });
  EXPECT_FALSE(invoked);
}

TEST(ParallelForTest, SingleThreadRunsInlineAsWorkerZero) {
  std::set<int> workers;
  ParallelFor(100, 1, 8, [&](size_t, size_t, int worker) {
    workers.insert(worker);  // no mutex needed: inline execution
  });
  EXPECT_EQ(workers, std::set<int>{0});
}

TEST(ParallelForTest, SingleBlockRunsInline) {
  // Range fits in one block: must run inline even with many threads asked.
  std::set<int> workers;
  ParallelFor(10, 8, 64, [&](size_t begin, size_t end, int worker) {
    workers.insert(worker);
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 10u);
  });
  EXPECT_EQ(workers, std::set<int>{0});
}

TEST(ParallelForTest, MoreThreadsThanBlocksClampsWorkers) {
  std::mutex mu;
  std::set<int> workers;
  // 3 blocks of 4 over n=12 with 16 threads -> at most 3 workers.
  ParallelFor(12, 16, 4, [&](size_t, size_t, int worker) {
    std::lock_guard<std::mutex> lock(mu);
    workers.insert(worker);
  });
  EXPECT_LE(workers.size(), 3u);
  for (const int w : workers) {
    EXPECT_GE(w, 0);
    EXPECT_LT(w, 3);
  }
}

TEST(ParallelForTest, WorkerIdsPartitionTheWork) {
  // Per-worker accumulation (the engine's workspace pattern): sums indexed
  // by worker id must total the whole range with no double counting.
  const size_t n = 10000;
  const int threads = 4;
  std::vector<long long> per_worker(static_cast<size_t>(threads), 0);
  ParallelFor(n, threads, 32, [&](size_t begin, size_t end, int worker) {
    for (size_t i = begin; i < end; ++i) {
      per_worker[static_cast<size_t>(worker)] += static_cast<long long>(i);
    }
  });
  long long total = 0;
  for (const long long s : per_worker) total += s;
  EXPECT_EQ(total, static_cast<long long>(n) * (n - 1) / 2);
}

TEST(ParallelForTest, ZeroBlockSizeIsTreatedAsOne) {
  std::atomic<size_t> covered{0};
  ParallelFor(25, 2, 0, [&](size_t begin, size_t end, int) {
    covered.fetch_add(end - begin, std::memory_order_relaxed);
  });
  EXPECT_EQ(covered.load(), 25u);
}

}  // namespace
}  // namespace homets
