#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "common/cancellation.h"
#include "common/failpoint.h"
#include "common/status.h"

namespace homets {
namespace {

TEST(ResolveThreadCountTest, PositivePassesThroughZeroMeansHardware) {
  EXPECT_EQ(ResolveThreadCount(3), 3);
  EXPECT_EQ(ResolveThreadCount(1), 1);
  EXPECT_GE(ResolveThreadCount(0), 1);
  EXPECT_GE(ResolveThreadCount(-5), 1);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  for (const int threads : {1, 2, 4, 9}) {
    for (const size_t n : {1u, 7u, 64u, 1000u}) {
      std::vector<std::atomic<int>> hits(n);
      for (auto& h : hits) h.store(0);
      ParallelFor(n, threads, 16, [&](size_t begin, size_t end, int) {
        for (size_t i = begin; i < end; ++i) {
          hits[i].fetch_add(1, std::memory_order_relaxed);
        }
      });
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "index " << i << " with " << threads
                                     << " threads over " << n;
      }
    }
  }
}

TEST(ParallelForTest, EmptyRangeNeverInvokes) {
  bool invoked = false;
  ParallelFor(0, 4, 8, [&](size_t, size_t, int) { invoked = true; });
  EXPECT_FALSE(invoked);
}

TEST(ParallelForTest, SingleThreadRunsInlineAsWorkerZero) {
  std::set<int> workers;
  ParallelFor(100, 1, 8, [&](size_t, size_t, int worker) {
    workers.insert(worker);  // no mutex needed: inline execution
  });
  EXPECT_EQ(workers, std::set<int>{0});
}

TEST(ParallelForTest, SingleBlockRunsInline) {
  // Range fits in one block: must run inline even with many threads asked.
  std::set<int> workers;
  ParallelFor(10, 8, 64, [&](size_t begin, size_t end, int worker) {
    workers.insert(worker);
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 10u);
  });
  EXPECT_EQ(workers, std::set<int>{0});
}

TEST(ParallelForTest, MoreThreadsThanBlocksClampsWorkers) {
  std::mutex mu;
  std::set<int> workers;
  // 3 blocks of 4 over n=12 with 16 threads -> at most 3 workers.
  ParallelFor(12, 16, 4, [&](size_t, size_t, int worker) {
    std::lock_guard<std::mutex> lock(mu);
    workers.insert(worker);
  });
  EXPECT_LE(workers.size(), 3u);
  for (const int w : workers) {
    EXPECT_GE(w, 0);
    EXPECT_LT(w, 3);
  }
}

TEST(ParallelForTest, WorkerIdsPartitionTheWork) {
  // Per-worker accumulation (the engine's workspace pattern): sums indexed
  // by worker id must total the whole range with no double counting.
  const size_t n = 10000;
  const int threads = 4;
  std::vector<long long> per_worker(static_cast<size_t>(threads), 0);
  ParallelFor(n, threads, 32, [&](size_t begin, size_t end, int worker) {
    for (size_t i = begin; i < end; ++i) {
      per_worker[static_cast<size_t>(worker)] += static_cast<long long>(i);
    }
  });
  long long total = 0;
  for (const long long s : per_worker) total += s;
  EXPECT_EQ(total, static_cast<long long>(n) * (n - 1) / 2);
}

TEST(ParallelForTest, ZeroBlockSizeIsTreatedAsOne) {
  std::atomic<size_t> covered{0};
  ParallelFor(25, 2, 0, [&](size_t begin, size_t end, int) {
    covered.fetch_add(end - begin, std::memory_order_relaxed);
  });
  EXPECT_EQ(covered.load(), 25u);
}

TEST(ParallelForStatusTest, AllOkCoversEveryIndexExactlyOnce) {
  for (const int threads : {1, 2, 4}) {
    std::vector<std::atomic<int>> hits(100);
    for (auto& h : hits) h.store(0);
    const Status st =
        ParallelForStatus(100, threads, 8, nullptr,
                          [&](size_t begin, size_t end, int) {
                            for (size_t i = begin; i < end; ++i) {
                              hits[i].fetch_add(1, std::memory_order_relaxed);
                            }
                            return Status::OK();
                          });
    ASSERT_TRUE(st.ok()) << st.ToString();
    for (size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }
  }
}

TEST(ParallelForStatusTest, LowestFailingBlockWinsAcrossThreadCounts) {
  // Blocks 3 and 7 fail; whatever the scheduling, the error from block 3
  // (the lowest index) must be returned, and every block must still run.
  for (const int threads : {1, 2, 4, 8}) {
    std::atomic<size_t> blocks_run{0};
    const Status st = ParallelForStatus(
        100, threads, 10, nullptr, [&](size_t begin, size_t, int) -> Status {
          blocks_run.fetch_add(1, std::memory_order_relaxed);
          const size_t block_index = begin / 10;
          if (block_index == 3) return Status::ComputeError("block 3");
          if (block_index == 7) return Status::IoError("block 7");
          return Status::OK();
        });
    EXPECT_EQ(blocks_run.load(), 10u) << threads << " threads";
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kComputeError) << threads << " threads";
    EXPECT_EQ(st.message(), "block 3") << threads << " threads";
  }
}

TEST(ParallelForStatusTest, PreCancelledTokenRunsNothing) {
  CancellationToken cancel;
  cancel.Cancel();
  std::atomic<size_t> blocks_run{0};
  const Status st = ParallelForStatus(100, 4, 10, &cancel,
                                      [&](size_t, size_t, int) {
                                        blocks_run.fetch_add(1);
                                        return Status::OK();
                                      });
  EXPECT_EQ(st.code(), StatusCode::kCancelled);
  EXPECT_EQ(blocks_run.load(), 0u);
}

TEST(ParallelForStatusTest, CancelMidLoopStopsHandingOutBlocks) {
  CancellationToken cancel;
  std::atomic<size_t> blocks_run{0};
  const Status st = ParallelForStatus(
      1000, 2, 1, &cancel, [&](size_t begin, size_t, int) {
        if (begin == 5) cancel.Cancel();
        blocks_run.fetch_add(1, std::memory_order_relaxed);
        return Status::OK();
      });
  EXPECT_EQ(st.code(), StatusCode::kCancelled);
  // Some blocks ran before the flag flipped, but nowhere near all 1000.
  EXPECT_GT(blocks_run.load(), 0u);
  EXPECT_LT(blocks_run.load(), 1000u);
}

TEST(ParallelForStatusTest, BlockErrorBeatsCancellation) {
  // A real failure observed before cancellation must not be masked by the
  // kCancelled that follows it.
  CancellationToken cancel;
  const Status st = ParallelForStatus(
      100, 1, 10, &cancel, [&](size_t begin, size_t, int) -> Status {
        if (begin == 20) {
          cancel.Cancel();
          return Status::IoError("failed then cancelled");
        }
        return Status::OK();
      });
  EXPECT_EQ(st.code(), StatusCode::kIoError);
}

TEST(ParallelForStatusTest, EmptyRangeIsOk) {
  const Status st = ParallelForStatus(
      0, 4, 8, nullptr,
      [&](size_t, size_t, int) { return Status::ComputeError("never"); });
  EXPECT_TRUE(st.ok());
}

TEST(ParallelForStatusTest, TaskFailpointInjectsComputeError) {
  Failpoints::Global().Reset();
  ASSERT_TRUE(Failpoints::Global().Configure("threadpool.task=fail*1").ok());
  std::atomic<size_t> blocks_run{0};
  const Status st = ParallelForStatus(40, 1, 10, nullptr,
                                      [&](size_t, size_t, int) {
                                        blocks_run.fetch_add(1);
                                        return Status::OK();
                                      });
  Failpoints::Global().Reset();
  EXPECT_EQ(st.code(), StatusCode::kComputeError);
  // The injected failure replaces the first block's body; the rest run.
  EXPECT_EQ(blocks_run.load(), 3u);
}

TEST(CancellationTokenTest, StickyUntilReset) {
  CancellationToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_TRUE(token.AsStatus().ok());
  token.Cancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.AsStatus().code(), StatusCode::kCancelled);
  token.Cancel();  // idempotent
  EXPECT_TRUE(token.cancelled());
  token.Reset();
  EXPECT_FALSE(token.cancelled());
  EXPECT_TRUE(token.AsStatus().ok());
}

TEST(DeadlineWatchdogTest, FiresAfterDeadline) {
  CancellationToken token;
  DeadlineWatchdog watchdog(&token, 5.0);
  // Poll rather than sleep a fixed time: CI machines stall arbitrarily.
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!token.cancelled() && std::chrono::steady_clock::now() < give_up) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(watchdog.fired());
}

TEST(DeadlineWatchdogTest, DisarmBeforeDeadlineLeavesTokenAlone) {
  CancellationToken token;
  {
    DeadlineWatchdog watchdog(&token, 60'000.0);
    watchdog.Disarm();
    EXPECT_FALSE(watchdog.fired());
  }
  EXPECT_FALSE(token.cancelled());
}

TEST(DeadlineWatchdogTest, DestructionDisarms) {
  CancellationToken token;
  { DeadlineWatchdog watchdog(&token, 60'000.0); }
  EXPECT_FALSE(token.cancelled());
}

}  // namespace
}  // namespace homets
