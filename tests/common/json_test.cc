#include "common/json.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

namespace homets {
namespace {

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(ParseJson("null")->is_null());
  EXPECT_TRUE(ParseJson("true")->bool_value());
  EXPECT_FALSE(ParseJson("false")->bool_value());
  EXPECT_DOUBLE_EQ(ParseJson("42")->number_value(), 42.0);
  EXPECT_DOUBLE_EQ(ParseJson("-3.5e2")->number_value(), -350.0);
  EXPECT_EQ(ParseJson("\"hi\"")->string_value(), "hi");
}

TEST(JsonParseTest, StringEscapes) {
  const auto v = ParseJson(R"("a\"b\\c\n\tA")");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(v->string_value(), "a\"b\\c\n\tA");
}

TEST(JsonParseTest, NestedDocument) {
  const auto v = ParseJson(
      R"({"schema_version": 1, "entries": [{"stage": "ingest", "seconds": 0.25},
          {"stage": "pairwise", "seconds": 1.5}], "ok": true})");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_DOUBLE_EQ(v->NumberOr("schema_version", 0), 1.0);
  const JsonValue* entries = v->Find("entries");
  ASSERT_NE(entries, nullptr);
  ASSERT_TRUE(entries->is_array());
  ASSERT_EQ(entries->array_items().size(), 2u);
  EXPECT_EQ(entries->array_items()[0].StringOr("stage", ""), "ingest");
  EXPECT_DOUBLE_EQ(entries->array_items()[1].NumberOr("seconds", 0), 1.5);
  EXPECT_TRUE(v->Find("ok")->bool_value());
  EXPECT_EQ(v->Find("missing"), nullptr);
}

TEST(JsonParseTest, ObjectKeepsInsertionOrderAndLastDuplicate) {
  const auto v = ParseJson(R"({"b": 1, "a": 2, "b": 3})");
  ASSERT_TRUE(v.ok());
  ASSERT_EQ(v->object_items().size(), 3u);
  EXPECT_EQ(v->object_items()[0].first, "b");
  EXPECT_DOUBLE_EQ(v->NumberOr("b", 0), 3.0);  // last duplicate wins
}

TEST(JsonParseTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("{\"a\" 1}").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("tru").ok());
  EXPECT_FALSE(ParseJson("1 2").ok());  // trailing garbage
  EXPECT_FALSE(ParseJson("nan").ok());
}

TEST(JsonParseTest, ErrorCarriesByteOffset) {
  const auto v = ParseJson("[1, }");
  ASSERT_FALSE(v.ok());
  EXPECT_NE(v.status().message().find("byte 4"), std::string::npos)
      << v.status().ToString();
}

TEST(JsonParseTest, DeepNestingIsRejectedNotCrashing) {
  std::string deep(1000, '[');
  deep += std::string(1000, ']');
  EXPECT_FALSE(ParseJson(deep).ok());
}

TEST(JsonFileTest, ReadsFileAndReportsMissing) {
  const std::string path =
      testing::TempDir() + "/homets_json_test_artifact.json";
  {
    std::ofstream out(path);
    out << "{\"seconds\": 2.5}";
  }
  const auto v = ReadJsonFile(path);
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_DOUBLE_EQ(v->NumberOr("seconds", 0), 2.5);
  std::remove(path.c_str());
  EXPECT_FALSE(ReadJsonFile(path).ok());
}

}  // namespace
}  // namespace homets
