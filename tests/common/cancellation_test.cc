#include "common/cancellation.h"

#include <gtest/gtest.h>

#include "common/status.h"

namespace homets {
namespace {

TEST(CancellationTokenTest, DefaultNotCancelled) {
  CancellationToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_TRUE(token.AsStatus().ok());
}

TEST(CancellationTokenTest, CancelIsStickyUntilReset) {
  CancellationToken token;
  token.Cancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.AsStatus().code(), StatusCode::kCancelled);
  token.Reset();
  EXPECT_FALSE(token.cancelled());
}

TEST(CancellationTokenTest, NullParentBehavesLikeRoot) {
  CancellationToken token(nullptr);
  EXPECT_FALSE(token.cancelled());
  token.Cancel();
  EXPECT_TRUE(token.cancelled());
}

TEST(CancellationTokenTest, ParentCancellationReachesChild) {
  CancellationToken parent;
  CancellationToken child(&parent);
  EXPECT_FALSE(child.cancelled());
  parent.Cancel();
  EXPECT_TRUE(child.cancelled());
  EXPECT_EQ(child.AsStatus().code(), StatusCode::kCancelled);
}

TEST(CancellationTokenTest, ChildCancellationDoesNotPropagateUp) {
  CancellationToken parent;
  CancellationToken child(&parent);
  child.Cancel();
  EXPECT_TRUE(child.cancelled());
  EXPECT_FALSE(parent.cancelled());
}

TEST(CancellationTokenTest, SiblingsAreIsolated) {
  CancellationToken parent;
  CancellationToken shard_a(&parent);
  CancellationToken shard_b(&parent);
  shard_a.Cancel();
  EXPECT_TRUE(shard_a.cancelled());
  EXPECT_FALSE(shard_b.cancelled());
  EXPECT_FALSE(parent.cancelled());
}

TEST(CancellationTokenTest, GrandchildSeesRootCancellation) {
  CancellationToken root;
  CancellationToken mid(&root);
  CancellationToken leaf(&mid);
  root.Cancel();
  EXPECT_TRUE(mid.cancelled());
  EXPECT_TRUE(leaf.cancelled());
}

TEST(CancellationTokenTest, ChildResetDoesNotMaskParent) {
  CancellationToken parent;
  CancellationToken child(&parent);
  parent.Cancel();
  child.Reset();  // clears only the child's own flag
  EXPECT_TRUE(child.cancelled());
  parent.Reset();
  EXPECT_FALSE(child.cancelled());
}

TEST(CancellationTokenTest, WatchdogOnChildFiresLocally) {
  CancellationToken parent;
  CancellationToken child(&parent);
  {
    DeadlineWatchdog watchdog(&child, 0.0);
    // A zero deadline fires promptly; spin until the watcher runs.
    while (!child.cancelled()) {
    }
    EXPECT_TRUE(watchdog.fired());
  }
  EXPECT_TRUE(child.cancelled());
  EXPECT_FALSE(parent.cancelled());
}

TEST(CancellationTokenTest, WatchdogDisarmLeavesTokenAlone) {
  CancellationToken token;
  {
    DeadlineWatchdog watchdog(&token, 60000.0);
    watchdog.Disarm();
    EXPECT_FALSE(watchdog.fired());
  }
  EXPECT_FALSE(token.cancelled());
}

}  // namespace
}  // namespace homets
