#include "common/strings.h"

#include <gtest/gtest.h>

namespace homets {
namespace {

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d + %d = %d", 1, 2, 3), "1 + 2 = 3");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("%s-%c", "gw", 'x'), "gw-x");
}

TEST(StrFormatTest, EmptyFormat) { EXPECT_EQ(StrFormat("%s", ""), ""); }

TEST(StrFormatTest, LongOutput) {
  const std::string long_arg(5000, 'a');
  EXPECT_EQ(StrFormat("%s", long_arg.c_str()).size(), 5000u);
}

TEST(StrSplitTest, SplitsAndKeepsEmptyFields) {
  const auto parts = StrSplit("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(StrSplitTest, NoDelimiterYieldsWholeString) {
  const auto parts = StrSplit("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StrSplitTest, TrailingDelimiterYieldsEmptyTail) {
  const auto parts = StrSplit("a,", ',');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[1], "");
}

TEST(StrJoinTest, JoinsWithSeparator) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({}, ", "), "");
  EXPECT_EQ(StrJoin({"one"}, ", "), "one");
}

TEST(StrTrimTest, RemovesSurroundingWhitespace) {
  EXPECT_EQ(StrTrim("  x y \t\n"), "x y");
  EXPECT_EQ(StrTrim(""), "");
  EXPECT_EQ(StrTrim(" \t "), "");
  EXPECT_EQ(StrTrim("none"), "none");
}

TEST(StartsWithTest, PrefixChecks) {
  EXPECT_TRUE(StartsWith("gateway", "gate"));
  EXPECT_TRUE(StartsWith("gateway", ""));
  EXPECT_FALSE(StartsWith("gate", "gateway"));
  EXPECT_FALSE(StartsWith("gateway", "way"));
}

}  // namespace
}  // namespace homets
