#include "common/failpoint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"

namespace homets {
namespace {

// The registry is process-global; every test starts and ends disarmed.
class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { Failpoints::Global().Reset(); }
  void TearDown() override { Failpoints::Global().Reset(); }
};

TEST_F(FailpointTest, DisarmedByDefault) {
  EXPECT_FALSE(Failpoints::Global().armed());
  EXPECT_EQ(Failpoints::Global().Evaluate(kFailpointCsvOpen),
            FailpointAction::kNone);
  EXPECT_TRUE(Failpoints::Global().InjectedError(kFailpointCsvOpen).ok());
}

TEST_F(FailpointTest, ConfigureArmsAndResetDisarms) {
  ASSERT_TRUE(Failpoints::Global().Configure("io.csv.open=error").ok());
  EXPECT_TRUE(Failpoints::Global().armed());
  EXPECT_EQ(Failpoints::Global().Evaluate(kFailpointCsvOpen),
            FailpointAction::kError);
  // Unknown sites never fire.
  EXPECT_EQ(Failpoints::Global().Evaluate(kFailpointCsvRow),
            FailpointAction::kNone);
  Failpoints::Global().Reset();
  EXPECT_FALSE(Failpoints::Global().armed());
}

TEST_F(FailpointTest, EmptySpecDisarms) {
  ASSERT_TRUE(Failpoints::Global().Configure("io.csv.open=error").ok());
  ASSERT_TRUE(Failpoints::Global().Configure("").ok());
  EXPECT_FALSE(Failpoints::Global().armed());
}

TEST_F(FailpointTest, InjectedErrorMapsActions) {
  ASSERT_TRUE(
      Failpoints::Global()
          .Configure("io.csv.open=error;threadpool.task=fail")
          .ok());
  const Status io = Failpoints::Global().InjectedError(kFailpointCsvOpen);
  EXPECT_EQ(io.code(), StatusCode::kIoError);
  const Status task =
      Failpoints::Global().InjectedError(kFailpointThreadPoolTask);
  EXPECT_EQ(task.code(), StatusCode::kComputeError);
}

TEST_F(FailpointTest, CountModifierLimitsFires) {
  ASSERT_TRUE(Failpoints::Global().Configure("io.csv.row=corrupt*2").ok());
  EXPECT_EQ(Failpoints::Global().Evaluate(kFailpointCsvRow),
            FailpointAction::kCorrupt);
  EXPECT_EQ(Failpoints::Global().Evaluate(kFailpointCsvRow),
            FailpointAction::kCorrupt);
  EXPECT_EQ(Failpoints::Global().Evaluate(kFailpointCsvRow),
            FailpointAction::kNone);
  const FailpointStats stats = Failpoints::Global().stats(kFailpointCsvRow);
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.fires, 2u);
}

TEST_F(FailpointTest, StartModifierSkipsEarlyHits) {
  ASSERT_TRUE(Failpoints::Global().Configure("io.csv.row=truncate@3").ok());
  EXPECT_EQ(Failpoints::Global().Evaluate(kFailpointCsvRow),
            FailpointAction::kNone);
  EXPECT_EQ(Failpoints::Global().Evaluate(kFailpointCsvRow),
            FailpointAction::kNone);
  EXPECT_EQ(Failpoints::Global().Evaluate(kFailpointCsvRow),
            FailpointAction::kTruncate);
}

TEST_F(FailpointTest, ProbabilityIsDeterministicPerSeed) {
  const auto firing_pattern = [](uint64_t seed) {
    EXPECT_TRUE(Failpoints::Global()
                    .Configure("threadpool.task=fail~0.5", seed)
                    .ok());
    std::string pattern;
    for (int i = 0; i < 64; ++i) {
      pattern += Failpoints::Global().Evaluate(kFailpointThreadPoolTask) ==
                         FailpointAction::kFail
                     ? 'F'
                     : '.';
    }
    return pattern;
  };
  const std::string first = firing_pattern(7);
  const std::string again = firing_pattern(7);
  const std::string other = firing_pattern(8);
  EXPECT_EQ(first, again);
  EXPECT_NE(first, other);
  // ~0.5 over 64 draws: both outcomes must appear.
  EXPECT_NE(first.find('F'), std::string::npos);
  EXPECT_NE(first.find('.'), std::string::npos);
}

TEST_F(FailpointTest, MalformedSpecsRejectedRegistryUnchanged) {
  ASSERT_TRUE(Failpoints::Global().Configure("io.csv.open=error").ok());
  for (const char* bad :
       {"io.csv.open", "io.csv.open=explode", "io.csv.open=error*x",
        "io.csv.open=error~1.5", "=error", "io.csv.open=error@"}) {
    EXPECT_EQ(Failpoints::Global().Configure(bad).code(),
              StatusCode::kInvalidArgument)
        << bad;
  }
  // The pre-error rules are still installed.
  EXPECT_TRUE(Failpoints::Global().armed());
  EXPECT_EQ(Failpoints::Global().Evaluate(kFailpointCsvOpen),
            FailpointAction::kError);
}

TEST_F(FailpointTest, OffActionInstallsNothingForSite) {
  ASSERT_TRUE(
      Failpoints::Global().Configure("io.csv.open=off;io.csv.row=error").ok());
  EXPECT_EQ(Failpoints::Global().Evaluate(kFailpointCsvOpen),
            FailpointAction::kNone);
  EXPECT_EQ(Failpoints::Global().Evaluate(kFailpointCsvRow),
            FailpointAction::kError);
}

TEST_F(FailpointTest, EvaluateAtSelectsByIndexNotArrivalOrder) {
  ASSERT_TRUE(Failpoints::Global().Configure("fleet.shard.run=fail@3").ok());
  // Evaluate indices in descending order: the decision must track the index,
  // not how many hits the site has absorbed so far.
  EXPECT_EQ(Failpoints::Global().EvaluateAt(kFailpointFleetShardRun, 4),
            FailpointAction::kFail);
  EXPECT_EQ(Failpoints::Global().EvaluateAt(kFailpointFleetShardRun, 1),
            FailpointAction::kNone);
  EXPECT_EQ(Failpoints::Global().EvaluateAt(kFailpointFleetShardRun, 2),
            FailpointAction::kNone);
  EXPECT_EQ(Failpoints::Global().EvaluateAt(kFailpointFleetShardRun, 3),
            FailpointAction::kFail);
  // Re-evaluating the same index yields the same decision.
  EXPECT_EQ(Failpoints::Global().EvaluateAt(kFailpointFleetShardRun, 3),
            FailpointAction::kFail);
}

TEST_F(FailpointTest, EvaluateAtAttemptBudgetAllowsRetryToSucceed) {
  ASSERT_TRUE(Failpoints::Global().Configure("fleet.shard.run=fail@2*1").ok());
  EXPECT_EQ(Failpoints::Global().EvaluateAt(kFailpointFleetShardRun, 2, 1),
            FailpointAction::kFail);
  // The second attempt at the same index is beyond the '*1' budget.
  EXPECT_EQ(Failpoints::Global().EvaluateAt(kFailpointFleetShardRun, 2, 2),
            FailpointAction::kNone);
  // Other eligible indices still fail their first attempt.
  EXPECT_EQ(Failpoints::Global().EvaluateAt(kFailpointFleetShardRun, 5, 1),
            FailpointAction::kFail);
}

TEST_F(FailpointTest, EvaluateAtProbabilityIsAFunctionOfIndex) {
  const auto pattern_for = [](bool reversed) {
    EXPECT_TRUE(
        Failpoints::Global().Configure("io.ckpt.write=error~0.5", 11).ok());
    std::string pattern(64, '.');
    for (int i = 0; i < 64; ++i) {
      const int idx = reversed ? 63 - i : i;
      if (Failpoints::Global().EvaluateAt(
              kFailpointCkptWrite, static_cast<uint64_t>(idx) + 1) ==
          FailpointAction::kError) {
        pattern[idx] = 'E';
      }
    }
    return pattern;
  };
  const std::string forward = pattern_for(false);
  const std::string backward = pattern_for(true);
  EXPECT_EQ(forward, backward);
  // ~0.5 over 64 indices: both outcomes must appear.
  EXPECT_NE(forward.find('E'), std::string::npos);
  EXPECT_NE(forward.find('.'), std::string::npos);
}

TEST_F(FailpointTest, InjectedErrorAtMapsActions) {
  ASSERT_TRUE(Failpoints::Global()
                  .Configure("io.ckpt.read=error;fleet.shard.run=fail")
                  .ok());
  EXPECT_EQ(Failpoints::Global().InjectedErrorAt(kFailpointCkptRead, 1).code(),
            StatusCode::kIoError);
  EXPECT_EQ(
      Failpoints::Global().InjectedErrorAt(kFailpointFleetShardRun, 1).code(),
      StatusCode::kComputeError);
  EXPECT_TRUE(
      Failpoints::Global().InjectedErrorAt(kFailpointCsvOpen, 1).ok());
}

TEST_F(FailpointTest, ConcurrentArmingKeepsIndexedDecisionsDeterministic) {
  // Readers hammer EvaluateAt while the spec is re-armed concurrently; the
  // registry must stay consistent, and once arming settles every thread must
  // see the same per-index decision regardless of interleaving.
  constexpr int kThreads = 8;
  constexpr uint64_t kIndices = 32;
  // Armed before the readers start; the concurrent Configure calls below
  // re-install the identical spec, so every sweep sees the same rule.
  ASSERT_TRUE(
      Failpoints::Global().Configure("fleet.shard.run=fail@7", 3).ok());
  std::vector<std::thread> workers;
  std::vector<std::string> patterns(kThreads, std::string(kIndices, '.'));
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t, &patterns] {
      for (int round = 0; round < 50; ++round) {
        for (uint64_t i = 1; i <= kIndices; ++i) {
          Failpoints::Global().EvaluateAt(kFailpointFleetShardRun, i);
        }
      }
      // Final sweep after arming has settled: record the decisions.
      for (uint64_t i = 1; i <= kIndices; ++i) {
        if (Failpoints::Global().EvaluateAt(kFailpointFleetShardRun, i) ==
            FailpointAction::kFail) {
          patterns[t][i - 1] = 'F';
        }
      }
    });
  }
  // Re-arm the same spec repeatedly while the readers run.
  for (int round = 0; round < 50; ++round) {
    ASSERT_TRUE(
        Failpoints::Global().Configure("fleet.shard.run=fail@7", 3).ok());
  }
  for (auto& w : workers) w.join();
  const std::string expected = [] {
    std::string p(kIndices, '.');
    std::fill(p.begin() + 6, p.end(), 'F');
    return p;
  }();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(patterns[t], expected) << "thread " << t;
  }
}

TEST_F(FailpointTest, ConfigureFromEnvReadsSpecAndSeed) {
  ASSERT_EQ(setenv("HOMETS_FAILPOINTS", "io.csv.open=error*1", 1), 0);
  ASSERT_EQ(setenv("HOMETS_FAILPOINTS_SEED", "5", 1), 0);
  EXPECT_TRUE(Failpoints::Global().ConfigureFromEnv().ok());
  EXPECT_TRUE(Failpoints::Global().armed());
  EXPECT_EQ(Failpoints::Global().Evaluate(kFailpointCsvOpen),
            FailpointAction::kError);
  EXPECT_EQ(Failpoints::Global().Evaluate(kFailpointCsvOpen),
            FailpointAction::kNone);
  ASSERT_EQ(unsetenv("HOMETS_FAILPOINTS"), 0);
  ASSERT_EQ(unsetenv("HOMETS_FAILPOINTS_SEED"), 0);
  EXPECT_TRUE(Failpoints::Global().ConfigureFromEnv().ok());
  EXPECT_FALSE(Failpoints::Global().armed());
}

}  // namespace
}  // namespace homets
