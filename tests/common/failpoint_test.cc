#include "common/failpoint.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "common/status.h"

namespace homets {
namespace {

// The registry is process-global; every test starts and ends disarmed.
class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { Failpoints::Global().Reset(); }
  void TearDown() override { Failpoints::Global().Reset(); }
};

TEST_F(FailpointTest, DisarmedByDefault) {
  EXPECT_FALSE(Failpoints::Global().armed());
  EXPECT_EQ(Failpoints::Global().Evaluate(kFailpointCsvOpen),
            FailpointAction::kNone);
  EXPECT_TRUE(Failpoints::Global().InjectedError(kFailpointCsvOpen).ok());
}

TEST_F(FailpointTest, ConfigureArmsAndResetDisarms) {
  ASSERT_TRUE(Failpoints::Global().Configure("io.csv.open=error").ok());
  EXPECT_TRUE(Failpoints::Global().armed());
  EXPECT_EQ(Failpoints::Global().Evaluate(kFailpointCsvOpen),
            FailpointAction::kError);
  // Unknown sites never fire.
  EXPECT_EQ(Failpoints::Global().Evaluate(kFailpointCsvRow),
            FailpointAction::kNone);
  Failpoints::Global().Reset();
  EXPECT_FALSE(Failpoints::Global().armed());
}

TEST_F(FailpointTest, EmptySpecDisarms) {
  ASSERT_TRUE(Failpoints::Global().Configure("io.csv.open=error").ok());
  ASSERT_TRUE(Failpoints::Global().Configure("").ok());
  EXPECT_FALSE(Failpoints::Global().armed());
}

TEST_F(FailpointTest, InjectedErrorMapsActions) {
  ASSERT_TRUE(
      Failpoints::Global()
          .Configure("io.csv.open=error;threadpool.task=fail")
          .ok());
  const Status io = Failpoints::Global().InjectedError(kFailpointCsvOpen);
  EXPECT_EQ(io.code(), StatusCode::kIoError);
  const Status task =
      Failpoints::Global().InjectedError(kFailpointThreadPoolTask);
  EXPECT_EQ(task.code(), StatusCode::kComputeError);
}

TEST_F(FailpointTest, CountModifierLimitsFires) {
  ASSERT_TRUE(Failpoints::Global().Configure("io.csv.row=corrupt*2").ok());
  EXPECT_EQ(Failpoints::Global().Evaluate(kFailpointCsvRow),
            FailpointAction::kCorrupt);
  EXPECT_EQ(Failpoints::Global().Evaluate(kFailpointCsvRow),
            FailpointAction::kCorrupt);
  EXPECT_EQ(Failpoints::Global().Evaluate(kFailpointCsvRow),
            FailpointAction::kNone);
  const FailpointStats stats = Failpoints::Global().stats(kFailpointCsvRow);
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.fires, 2u);
}

TEST_F(FailpointTest, StartModifierSkipsEarlyHits) {
  ASSERT_TRUE(Failpoints::Global().Configure("io.csv.row=truncate@3").ok());
  EXPECT_EQ(Failpoints::Global().Evaluate(kFailpointCsvRow),
            FailpointAction::kNone);
  EXPECT_EQ(Failpoints::Global().Evaluate(kFailpointCsvRow),
            FailpointAction::kNone);
  EXPECT_EQ(Failpoints::Global().Evaluate(kFailpointCsvRow),
            FailpointAction::kTruncate);
}

TEST_F(FailpointTest, ProbabilityIsDeterministicPerSeed) {
  const auto firing_pattern = [](uint64_t seed) {
    EXPECT_TRUE(Failpoints::Global()
                    .Configure("threadpool.task=fail~0.5", seed)
                    .ok());
    std::string pattern;
    for (int i = 0; i < 64; ++i) {
      pattern += Failpoints::Global().Evaluate(kFailpointThreadPoolTask) ==
                         FailpointAction::kFail
                     ? 'F'
                     : '.';
    }
    return pattern;
  };
  const std::string first = firing_pattern(7);
  const std::string again = firing_pattern(7);
  const std::string other = firing_pattern(8);
  EXPECT_EQ(first, again);
  EXPECT_NE(first, other);
  // ~0.5 over 64 draws: both outcomes must appear.
  EXPECT_NE(first.find('F'), std::string::npos);
  EXPECT_NE(first.find('.'), std::string::npos);
}

TEST_F(FailpointTest, MalformedSpecsRejectedRegistryUnchanged) {
  ASSERT_TRUE(Failpoints::Global().Configure("io.csv.open=error").ok());
  for (const char* bad :
       {"io.csv.open", "io.csv.open=explode", "io.csv.open=error*x",
        "io.csv.open=error~1.5", "=error", "io.csv.open=error@"}) {
    EXPECT_EQ(Failpoints::Global().Configure(bad).code(),
              StatusCode::kInvalidArgument)
        << bad;
  }
  // The pre-error rules are still installed.
  EXPECT_TRUE(Failpoints::Global().armed());
  EXPECT_EQ(Failpoints::Global().Evaluate(kFailpointCsvOpen),
            FailpointAction::kError);
}

TEST_F(FailpointTest, OffActionInstallsNothingForSite) {
  ASSERT_TRUE(
      Failpoints::Global().Configure("io.csv.open=off;io.csv.row=error").ok());
  EXPECT_EQ(Failpoints::Global().Evaluate(kFailpointCsvOpen),
            FailpointAction::kNone);
  EXPECT_EQ(Failpoints::Global().Evaluate(kFailpointCsvRow),
            FailpointAction::kError);
}

TEST_F(FailpointTest, ConfigureFromEnvReadsSpecAndSeed) {
  ASSERT_EQ(setenv("HOMETS_FAILPOINTS", "io.csv.open=error*1", 1), 0);
  ASSERT_EQ(setenv("HOMETS_FAILPOINTS_SEED", "5", 1), 0);
  EXPECT_TRUE(Failpoints::Global().ConfigureFromEnv().ok());
  EXPECT_TRUE(Failpoints::Global().armed());
  EXPECT_EQ(Failpoints::Global().Evaluate(kFailpointCsvOpen),
            FailpointAction::kError);
  EXPECT_EQ(Failpoints::Global().Evaluate(kFailpointCsvOpen),
            FailpointAction::kNone);
  ASSERT_EQ(unsetenv("HOMETS_FAILPOINTS"), 0);
  ASSERT_EQ(unsetenv("HOMETS_FAILPOINTS_SEED"), 0);
  EXPECT_TRUE(Failpoints::Global().ConfigureFromEnv().ok());
  EXPECT_FALSE(Failpoints::Global().armed());
}

}  // namespace
}  // namespace homets
