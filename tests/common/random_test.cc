#include "common/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace homets {
namespace {

TEST(SplitMix64Test, DeterministicSequence) {
  SplitMix64 a(123);
  SplitMix64 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(SplitMix64Test, DifferentSeedsDiffer) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.Next(), b.Next());
}

TEST(RngTest, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-5.0, 3.0);
    EXPECT_GE(u, -5.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(RngTest, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntCoversRangeWithoutBias) {
  Rng rng(13);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.UniformInt(10)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.01);
  }
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(17);
  const int n = 200000;
  double sum = 0.0, ss = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    ss += x * x;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 0.0, 0.01);
  EXPECT_NEAR(ss / n - mean * mean, 1.0, 0.02);
}

TEST(RngTest, NormalWithParametersShiftsAndScales) {
  Rng rng(19);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(RngTest, ExponentialMeanIsInverseRate) {
  Rng rng(23);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Exponential(2.0);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, ParetoRespectsScaleFloor) {
  Rng rng(29);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(rng.Pareto(3.0, 2.5), 3.0);
  }
}

TEST(RngTest, ParetoIsHeavyTailed) {
  // With alpha = 1.2 the sample max should dwarf the median.
  Rng rng(31);
  std::vector<double> xs(20000);
  for (auto& x : xs) x = rng.Pareto(1.0, 1.2);
  std::sort(xs.begin(), xs.end());
  const double median = xs[xs.size() / 2];
  EXPECT_GT(xs.back(), 50.0 * median);
}

TEST(RngTest, BernoulliFrequencyTracksP) {
  Rng rng(37);
  const int n = 100000;
  int hits = 0;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, BernoulliDegenerateCases) {
  Rng rng(38);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, PoissonMeanMatchesLambdaSmall) {
  Rng rng(41);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Poisson(3.5);
  EXPECT_NEAR(sum / n, 3.5, 0.1);
}

TEST(RngTest, PoissonMeanMatchesLambdaLargeUsesNormalApprox) {
  Rng rng(43);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Poisson(200.0);
  EXPECT_NEAR(sum / n, 200.0, 1.0);
}

TEST(RngTest, PoissonZeroLambda) {
  Rng rng(44);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.Poisson(0.0), 0);
}

TEST(RngTest, ZipfRanksWithinBoundsAndSkewed) {
  Rng rng(47);
  const int n = 50000;
  std::vector<int> counts(11, 0);
  for (int i = 0; i < n; ++i) {
    const int k = rng.Zipf(10, 1.2);
    ASSERT_GE(k, 1);
    ASSERT_LE(k, 10);
    ++counts[k];
  }
  // Rank 1 must dominate rank 10 heavily under s = 1.2.
  EXPECT_GT(counts[1], 5 * counts[10]);
  // Monotone-ish decay at the head.
  EXPECT_GT(counts[1], counts[2]);
  EXPECT_GT(counts[2], counts[4]);
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(53);
  const int n = 100000;
  std::vector<int> counts(3, 0);
  for (int i = 0; i < n; ++i) {
    ++counts[rng.Categorical({1.0, 2.0, 7.0})];
  }
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.1, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.2, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.7, 0.01);
}

TEST(RngTest, CategoricalZeroWeightNeverChosen) {
  Rng rng(54);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_NE(rng.Categorical({1.0, 0.0, 1.0}), 1u);
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(59);
  std::vector<int> xs{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = xs;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, xs);
}

TEST(RngTest, ForkProducesIndependentStreams) {
  Rng parent(61);
  Rng child1 = parent.Fork(1);
  Rng child2 = parent.Fork(2);
  Rng child1_again = parent.Fork(1);
  EXPECT_EQ(child1.Next(), child1_again.Next());
  EXPECT_NE(child1.Next(), child2.Next());
}

TEST(RngTest, ForkDoesNotAdvanceParent) {
  Rng a(67);
  Rng b(67);
  (void)a.Fork(9);
  EXPECT_EQ(a.Next(), b.Next());
}

}  // namespace
}  // namespace homets
