#include "common/flags.h"

#include <gtest/gtest.h>

namespace homets {
namespace {

const std::set<std::string> kKnown = {"out", "seed", "period"};

TEST(ParseFlagsTest, SeparatesFlagsAndPositionals) {
  const auto args =
      ParseFlags({"--out", "dir", "a.csv", "--seed", "7", "b.csv"}, kKnown);
  ASSERT_TRUE(args.ok());
  EXPECT_EQ(args->GetString("out"), "dir");
  EXPECT_EQ(args->GetString("seed"), "7");
  EXPECT_EQ(args->positional, (std::vector<std::string>{"a.csv", "b.csv"}));
}

TEST(ParseFlagsTest, EqualsSyntax) {
  const auto args = ParseFlags({"--period=weekly", "--seed=0"}, kKnown);
  ASSERT_TRUE(args.ok());
  EXPECT_EQ(args->GetString("period"), "weekly");
  EXPECT_EQ(args->GetString("seed"), "0");
  EXPECT_TRUE(args->positional.empty());
}

TEST(ParseFlagsTest, UnknownFlagIsAnError) {
  const auto args = ParseFlags({"--bogus", "x"}, kKnown);
  ASSERT_FALSE(args.ok());
  EXPECT_NE(args.status().ToString().find("unknown flag --bogus"),
            std::string::npos);
}

TEST(ParseFlagsTest, DanglingFlagIsAnError) {
  // A trailing --seed with no value used to be silently swallowed; it must
  // be a hard error now.
  const auto args = ParseFlags({"a.csv", "--seed"}, kKnown);
  ASSERT_FALSE(args.ok());
  EXPECT_NE(args.status().ToString().find("--seed expects a value"),
            std::string::npos);
}

TEST(ParseFlagsTest, DoubleDashEndsFlagParsing) {
  const auto args = ParseFlags({"--out", "dir", "--", "--weird-file"}, kKnown);
  ASSERT_TRUE(args.ok());
  EXPECT_EQ(args->GetString("out"), "dir");
  EXPECT_EQ(args->positional, (std::vector<std::string>{"--weird-file"}));
}

TEST(ParseFlagsTest, LastOccurrenceWins) {
  const auto args = ParseFlags({"--seed", "1", "--seed", "2"}, kKnown);
  ASSERT_TRUE(args.ok());
  EXPECT_EQ(args->GetString("seed"), "2");
}

TEST(ParsedArgsTest, GetIntParsesAndValidates) {
  const auto args = ParseFlags({"--seed", "42"}, kKnown);
  ASSERT_TRUE(args.ok());
  EXPECT_EQ(args->GetInt("seed", 0).value(), 42);
  EXPECT_EQ(args->GetInt("out", 9).value(), 9);  // absent -> fallback

  const auto bad = ParseFlags({"--seed", "4x2"}, kKnown);
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(bad->GetInt("seed", 0).ok());
}

TEST(ParsedArgsTest, GetIntAcceptsNegative) {
  const auto args = ParseFlags({"--seed", "-5"}, kKnown);
  ASSERT_TRUE(args.ok());
  EXPECT_EQ(args->GetInt("seed", 0).value(), -5);
}

TEST(ParsedArgsTest, HasAndGetStringFallback) {
  const auto args = ParseFlags({"--out", "dir"}, kKnown);
  ASSERT_TRUE(args.ok());
  EXPECT_TRUE(args->Has("out"));
  EXPECT_FALSE(args->Has("seed"));
  EXPECT_EQ(args->GetString("seed", "default"), "default");
}

}  // namespace
}  // namespace homets
