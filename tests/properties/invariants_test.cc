// Property-style tests: algebraic invariants that must hold for any input,
// exercised over seeded random sweeps (TEST_P).
#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "core/similarity.h"
#include "correlation/coefficients.h"
#include "distance/distance.h"
#include "stattests/ks_test.h"
#include "stattests/mann_whitney.h"
#include "ts/time_series.h"

namespace homets {
namespace {

std::vector<double> RandomTraffic(Rng* rng, size_t n) {
  std::vector<double> xs(n);
  for (auto& x : xs) {
    x = rng->Bernoulli(0.1) ? rng->LogNormal(std::log(5e5), 1.0)
                            : rng->LogNormal(std::log(300.0), 0.8);
  }
  return xs;
}

class SeededSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeededSweep, CorrelationSimilarityIsSymmetric) {
  Rng rng(GetParam());
  const auto x = RandomTraffic(&rng, 120);
  const auto y = RandomTraffic(&rng, 120);
  const auto xy = core::CorrelationSimilarity(x, y);
  const auto yx = core::CorrelationSimilarity(y, x);
  EXPECT_NEAR(xy.value, yx.value, 1e-9);
  EXPECT_EQ(xy.significant, yx.significant);
}

TEST_P(SeededSweep, CorrelationSimilarityIsBounded) {
  Rng rng(GetParam() + 1000);
  const auto x = RandomTraffic(&rng, 80);
  const auto y = RandomTraffic(&rng, 80);
  const double v = core::CorrelationSimilarity(x, y).value;
  EXPECT_GE(v, -1.0);
  EXPECT_LE(v, 1.0);
}

TEST_P(SeededSweep, CorrelationSimilarityScaleInvariant) {
  Rng rng(GetParam() + 2000);
  const auto x = RandomTraffic(&rng, 100);
  const auto y = RandomTraffic(&rng, 100);
  std::vector<double> y_scaled(y.size());
  const double scale = rng.Uniform(0.001, 1000.0);
  const double shift = rng.Uniform(0.0, 1e6);
  for (size_t i = 0; i < y.size(); ++i) y_scaled[i] = scale * y[i] + shift;
  EXPECT_NEAR(core::CorrelationSimilarity(x, y).value,
              core::CorrelationSimilarity(x, y_scaled).value, 1e-6);
}

TEST_P(SeededSweep, SelfSimilarityIsPerfectForNonConstantSeries) {
  Rng rng(GetParam() + 3000);
  const auto x = RandomTraffic(&rng, 60);
  const auto self = core::CorrelationSimilarity(x, x);
  EXPECT_NEAR(self.value, 1.0, 1e-9);
}

TEST_P(SeededSweep, CoefficientsShareSign) {
  // For a clear monotone association, all three coefficients agree in sign.
  Rng rng(GetParam() + 4000);
  std::vector<double> x(100), y(100);
  const double slope = rng.Bernoulli(0.5) ? 1.0 : -1.0;
  for (size_t i = 0; i < 100; ++i) {
    x[i] = rng.Normal();
    y[i] = slope * x[i] + 0.2 * rng.Normal();
  }
  const double p = correlation::Pearson(x, y)->coefficient;
  const double s = correlation::Spearman(x, y)->coefficient;
  const double k = correlation::Kendall(x, y)->coefficient;
  EXPECT_GT(p * slope, 0.0);
  EXPECT_GT(s * slope, 0.0);
  EXPECT_GT(k * slope, 0.0);
}

TEST_P(SeededSweep, SpearmanEqualsPearsonOnRanksAlreadyRankedData) {
  // For data that is already a permutation (no ties), Spearman's ρ equals
  // Pearson's r applied to the values (which are their own ranks).
  Rng rng(GetParam() + 5000);
  std::vector<double> x(50), y(50);
  for (size_t i = 0; i < 50; ++i) x[i] = static_cast<double>(i + 1);
  y = x;
  rng.Shuffle(&y);
  EXPECT_NEAR(correlation::Spearman(x, y)->coefficient,
              correlation::Pearson(x, y)->coefficient, 1e-9);
}

TEST_P(SeededSweep, KsTestIsSymmetric) {
  Rng rng(GetParam() + 6000);
  const auto a = RandomTraffic(&rng, 90);
  const auto b = RandomTraffic(&rng, 110);
  const auto ab = stattests::KolmogorovSmirnov(a, b).value();
  const auto ba = stattests::KolmogorovSmirnov(b, a).value();
  EXPECT_NEAR(ab.statistic, ba.statistic, 1e-12);
  EXPECT_NEAR(ab.p_value, ba.p_value, 1e-12);
}

TEST_P(SeededSweep, KsStatisticWithinUnitInterval) {
  Rng rng(GetParam() + 7000);
  const auto a = RandomTraffic(&rng, 50);
  const auto b = RandomTraffic(&rng, 70);
  const auto test = stattests::KolmogorovSmirnov(a, b).value();
  EXPECT_GE(test.statistic, 0.0);
  EXPECT_LE(test.statistic, 1.0);
  EXPECT_GE(test.p_value, 0.0);
  EXPECT_LE(test.p_value, 1.0);
}

TEST_P(SeededSweep, MannWhitneyPValueSymmetricUnderSwap) {
  Rng rng(GetParam() + 8000);
  const auto a = RandomTraffic(&rng, 60);
  const auto b = RandomTraffic(&rng, 80);
  const auto ab = stattests::MannWhitneyU(a, b).value();
  const auto ba = stattests::MannWhitneyU(b, a).value();
  EXPECT_NEAR(ab.p_value, ba.p_value, 1e-9);
  EXPECT_NEAR(ab.z, -ba.z, 1e-9);
}

TEST_P(SeededSweep, DtwNeverExceedsEuclideanForEqualLengths) {
  Rng rng(GetParam() + 9000);
  const auto a = RandomTraffic(&rng, 64);
  const auto b = RandomTraffic(&rng, 64);
  EXPECT_LE(distance::DynamicTimeWarping(a, b).value(),
            distance::Euclidean(a, b).value() + 1e-9);
}

TEST_P(SeededSweep, WiderBandNeverIncreasesDtw) {
  Rng rng(GetParam() + 10000);
  const auto a = RandomTraffic(&rng, 48);
  const auto b = RandomTraffic(&rng, 48);
  const double narrow = distance::DynamicTimeWarping(a, b, 2).value();
  const double wide = distance::DynamicTimeWarping(a, b, 10).value();
  const double full = distance::DynamicTimeWarping(a, b, -1).value();
  EXPECT_GE(narrow, wide - 1e-9);
  EXPECT_GE(wide, full - 1e-9);
}

TEST_P(SeededSweep, AggregationPreservesTotalMass) {
  Rng rng(GetParam() + 11000);
  const auto values = RandomTraffic(&rng, 1440);
  ts::TimeSeries series(0, 1, values);
  for (const int64_t g : {10LL, 60LL, 180LL, 720LL}) {
    const auto agg = ts::Aggregate(series, g, 0, ts::AggKind::kSum).value();
    EXPECT_NEAR(agg.Sum(), series.Sum(), 1e-6 * series.Sum());
  }
}

TEST_P(SeededSweep, TwoStageAggregationEqualsDirect) {
  // Sum-aggregating at 10 min then 60 min equals aggregating at 60 directly.
  Rng rng(GetParam() + 12000);
  ts::TimeSeries series(0, 1, RandomTraffic(&rng, 720));
  const auto fine = ts::Aggregate(series, 10, 0, ts::AggKind::kSum).value();
  const auto two_stage = ts::Aggregate(fine, 60, 0, ts::AggKind::kSum).value();
  const auto direct = ts::Aggregate(series, 60, 0, ts::AggKind::kSum).value();
  ASSERT_EQ(two_stage.size(), direct.size());
  for (size_t i = 0; i < direct.size(); ++i) {
    // Relative tolerance: summation order differs between the two routes.
    EXPECT_NEAR(two_stage[i], direct[i], 1e-12 * std::fabs(direct[i]) + 1e-9);
  }
}

TEST_P(SeededSweep, TimeSeriesAddIsCommutative) {
  Rng rng(GetParam() + 13000);
  auto values_a = RandomTraffic(&rng, 100);
  auto values_b = RandomTraffic(&rng, 80);
  // Punch some missing holes.
  for (size_t i = 0; i < values_a.size(); i += 7) {
    values_a[i] = ts::TimeSeries::Missing();
  }
  ts::TimeSeries a(0, 1, values_a);
  ts::TimeSeries b(20, 1, values_b);
  const auto ab = ts::TimeSeries::Add(a, b).value();
  const auto ba = ts::TimeSeries::Add(b, a).value();
  ASSERT_EQ(ab.size(), ba.size());
  for (size_t i = 0; i < ab.size(); ++i) {
    if (ts::TimeSeries::IsMissing(ab[i])) {
      EXPECT_TRUE(ts::TimeSeries::IsMissing(ba[i]));
    } else {
      EXPECT_DOUBLE_EQ(ab[i], ba[i]);
    }
  }
}

TEST_P(SeededSweep, ZNormalizePreservesCorrelationSimilarity) {
  Rng rng(GetParam() + 14000);
  ts::TimeSeries x(0, 1, RandomTraffic(&rng, 90));
  ts::TimeSeries y(0, 1, RandomTraffic(&rng, 90));
  const double raw =
      core::CorrelationSimilarity(x.values(), y.values()).value;
  const double normalized = core::CorrelationSimilarity(
                                ts::ZNormalize(x).values(),
                                ts::ZNormalize(y).values())
                                .value;
  EXPECT_NEAR(raw, normalized, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededSweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

}  // namespace
}  // namespace homets
