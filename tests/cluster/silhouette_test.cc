#include "cluster/silhouette.h"

#include <gtest/gtest.h>

#include <vector>

namespace homets::cluster {
namespace {

// Two tight planted groups {0,1,2} and {3,4}.
DistanceMatrix TwoClusterMatrix() {
  auto dist = DistanceMatrix::Make(5).value();
  const std::vector<std::vector<double>> d{
      {0.0, 0.1, 0.15, 0.9, 0.95},
      {0.1, 0.0, 0.12, 0.92, 0.9},
      {0.15, 0.12, 0.0, 0.88, 0.91},
      {0.9, 0.92, 0.88, 0.0, 0.05},
      {0.95, 0.9, 0.91, 0.05, 0.0},
  };
  for (size_t i = 0; i < 5; ++i) {
    for (size_t j = i + 1; j < 5; ++j) dist.Set(i, j, d[i][j]);
  }
  return dist;
}

TEST(SilhouetteTest, CorrectClusteringScoresHigh) {
  const auto score =
      MeanSilhouette(TwoClusterMatrix(), {0, 0, 0, 1, 1}).value();
  EXPECT_GT(score, 0.8);
}

TEST(SilhouetteTest, WrongClusteringScoresLow) {
  const auto good =
      MeanSilhouette(TwoClusterMatrix(), {0, 0, 0, 1, 1}).value();
  const auto bad =
      MeanSilhouette(TwoClusterMatrix(), {0, 1, 0, 1, 0}).value();
  EXPECT_LT(bad, good);
  EXPECT_LT(bad, 0.2);
}

TEST(SilhouetteTest, SingletonContributesZero) {
  // {0,1,2} vs {3} vs {4}: item 3 and 4 are singletons.
  const auto score =
      MeanSilhouette(TwoClusterMatrix(), {0, 0, 0, 1, 2}).value();
  // Still positive thanks to the tight first group, but reduced by the two
  // zero-contribution singletons.
  EXPECT_GT(score, 0.0);
  const auto full = MeanSilhouette(TwoClusterMatrix(), {0, 0, 0, 1, 1}).value();
  EXPECT_LT(score, full);
}

TEST(SilhouetteTest, InvalidInputs) {
  const auto dist = TwoClusterMatrix();
  EXPECT_FALSE(MeanSilhouette(dist, {0, 0, 0}).ok());          // size mismatch
  EXPECT_FALSE(MeanSilhouette(dist, {0, 0, 0, 0, 0}).ok());    // one cluster
  EXPECT_FALSE(MeanSilhouette(dist, {0, 1, 2, 3, 4}).ok());    // n clusters
}

TEST(BestCutTest, FindsThePlantedStructure) {
  const auto dist = TwoClusterMatrix();
  const auto tree = AgglomerativeCluster(dist, Linkage::kAverage).value();
  const auto sweep = BestCutBySilhouette(dist, tree).value();
  EXPECT_EQ(sweep.best_clusters, 2u);
  EXPECT_GT(sweep.best_score, 0.8);
  // Cutting at the best threshold reproduces the planted labels.
  const auto labels = tree.CutAt(sweep.best_threshold);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[3], labels[4]);
  EXPECT_NE(labels[0], labels[3]);
}

TEST(BestCutTest, TwoLeavesUnscorable) {
  auto dist = DistanceMatrix::Make(2).value();
  dist.Set(0, 1, 1.0);
  const auto tree = AgglomerativeCluster(dist, Linkage::kAverage).value();
  // Only possible cuts: 2 singletons (k = n) or 1 cluster — neither scorable.
  EXPECT_FALSE(BestCutBySilhouette(dist, tree).ok());
}

}  // namespace
}  // namespace homets::cluster
