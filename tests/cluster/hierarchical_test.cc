#include "cluster/hierarchical.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace homets::cluster {
namespace {

// Distance matrix with two tight groups {0,1,2} and {3,4} far apart.
DistanceMatrix TwoClusterMatrix() {
  auto dist = DistanceMatrix::Make(5).value();
  const std::vector<std::vector<double>> d{
      {0.0, 0.1, 0.15, 0.9, 0.95},
      {0.1, 0.0, 0.12, 0.92, 0.9},
      {0.15, 0.12, 0.0, 0.88, 0.91},
      {0.9, 0.92, 0.88, 0.0, 0.05},
      {0.95, 0.9, 0.91, 0.05, 0.0},
  };
  for (size_t i = 0; i < 5; ++i) {
    for (size_t j = i + 1; j < 5; ++j) dist.Set(i, j, d[i][j]);
  }
  return dist;
}

TEST(DistanceMatrixTest, SetIsSymmetric) {
  auto dist = DistanceMatrix::Make(3).value();
  dist.Set(0, 2, 0.7);
  EXPECT_DOUBLE_EQ(dist.At(0, 2), 0.7);
  EXPECT_DOUBLE_EQ(dist.At(2, 0), 0.7);
  EXPECT_DOUBLE_EQ(dist.At(1, 1), 0.0);
}

TEST(DistanceMatrixTest, ZeroSizeRejected) {
  EXPECT_FALSE(DistanceMatrix::Make(0).ok());
}

TEST(DistanceMatrixTest, FromCondensedFillsUpperTriangleRowMajor) {
  // Condensed layout over n=4: (0,1) (0,2) (0,3) (1,2) (1,3) (2,3).
  const std::vector<double> condensed = {0.1, 0.2, 0.3, 0.4, 0.5, 0.6};
  const auto dist = DistanceMatrix::FromCondensed(4, condensed).value();
  EXPECT_DOUBLE_EQ(dist.At(0, 1), 0.1);
  EXPECT_DOUBLE_EQ(dist.At(0, 2), 0.2);
  EXPECT_DOUBLE_EQ(dist.At(0, 3), 0.3);
  EXPECT_DOUBLE_EQ(dist.At(1, 2), 0.4);
  EXPECT_DOUBLE_EQ(dist.At(1, 3), 0.5);
  EXPECT_DOUBLE_EQ(dist.At(2, 3), 0.6);
  EXPECT_DOUBLE_EQ(dist.At(3, 1), 0.5);  // symmetric
  EXPECT_DOUBLE_EQ(dist.At(2, 2), 0.0);  // zero diagonal
}

TEST(DistanceMatrixTest, FromCondensedRejectsBadSizes) {
  EXPECT_FALSE(DistanceMatrix::FromCondensed(0, {}).ok());
  EXPECT_FALSE(DistanceMatrix::FromCondensed(4, {0.1, 0.2}).ok());
  EXPECT_TRUE(DistanceMatrix::FromCondensed(1, {}).ok());
  EXPECT_TRUE(DistanceMatrix::FromCondensed(3, {0.1, 0.2, 0.3}).ok());
}

TEST(AgglomerativeTest, ProducesNMinusOneMerges) {
  const auto tree =
      AgglomerativeCluster(TwoClusterMatrix(), Linkage::kAverage).value();
  EXPECT_EQ(tree.n_leaves, 5u);
  EXPECT_EQ(tree.merges.size(), 4u);
}

TEST(AgglomerativeTest, MergeDistancesNonDecreasingForAverageLinkage) {
  const auto tree =
      AgglomerativeCluster(TwoClusterMatrix(), Linkage::kAverage).value();
  for (size_t i = 1; i < tree.merges.size(); ++i) {
    EXPECT_GE(tree.merges[i].distance, tree.merges[i - 1].distance - 1e-12);
  }
}

TEST(AgglomerativeTest, CutRecoversPlantedClusters) {
  // The Figure 3 operation: distance 1 − cor, cut at 0.4.
  const auto tree =
      AgglomerativeCluster(TwoClusterMatrix(), Linkage::kAverage).value();
  const auto labels = tree.CutAt(0.4);
  ASSERT_EQ(labels.size(), 5u);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[1], labels[2]);
  EXPECT_EQ(labels[3], labels[4]);
  EXPECT_NE(labels[0], labels[3]);
  EXPECT_EQ(tree.CountClustersAt(0.4), 2u);
}

TEST(AgglomerativeTest, CutAtZeroIsAllSingletons) {
  const auto tree =
      AgglomerativeCluster(TwoClusterMatrix(), Linkage::kAverage).value();
  EXPECT_EQ(tree.CountClustersAt(-1.0), 5u);
}

TEST(AgglomerativeTest, CutAtMaxIsOneCluster) {
  const auto tree =
      AgglomerativeCluster(TwoClusterMatrix(), Linkage::kAverage).value();
  EXPECT_EQ(tree.CountClustersAt(10.0), 1u);
}

TEST(AgglomerativeTest, SingleLeafTrivial) {
  const auto dist = DistanceMatrix::Make(1).value();
  const auto tree = AgglomerativeCluster(dist, Linkage::kSingle).value();
  EXPECT_EQ(tree.merges.size(), 0u);
  EXPECT_EQ(tree.CountClustersAt(0.5), 1u);
}

TEST(AgglomerativeTest, SingleLinkageChains) {
  // Chain 0-1-2-3 with gaps 0.1; single linkage merges the whole chain at
  // 0.1 while complete linkage needs the full diameter.
  auto dist = DistanceMatrix::Make(4).value();
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = i + 1; j < 4; ++j) {
      dist.Set(i, j, 0.1 * static_cast<double>(j - i));
    }
  }
  const auto single = AgglomerativeCluster(dist, Linkage::kSingle).value();
  EXPECT_NEAR(single.merges.back().distance, 0.1, 1e-12);
  const auto complete =
      AgglomerativeCluster(dist, Linkage::kComplete).value();
  EXPECT_NEAR(complete.merges.back().distance, 0.3, 1e-12);
}

TEST(AgglomerativeTest, AverageLinkageBetweenSingleAndComplete) {
  const auto m = TwoClusterMatrix();
  const double s =
      AgglomerativeCluster(m, Linkage::kSingle).value().merges.back().distance;
  const double a = AgglomerativeCluster(m, Linkage::kAverage)
                       .value()
                       .merges.back()
                       .distance;
  const double c = AgglomerativeCluster(m, Linkage::kComplete)
                       .value()
                       .merges.back()
                       .distance;
  EXPECT_LE(s, a + 1e-12);
  EXPECT_LE(a, c + 1e-12);
}

TEST(AgglomerativeTest, MergeSizesAccountForAllLeaves) {
  const auto tree =
      AgglomerativeCluster(TwoClusterMatrix(), Linkage::kAverage).value();
  EXPECT_EQ(tree.merges.back().size, 5u);
}

TEST(DendrogramTest, CutLabelsAreCompact) {
  const auto tree =
      AgglomerativeCluster(TwoClusterMatrix(), Linkage::kAverage).value();
  const auto labels = tree.CutAt(0.4);
  std::set<size_t> distinct(labels.begin(), labels.end());
  // Labels must be 0..k−1.
  size_t expect = 0;
  for (size_t l : distinct) EXPECT_EQ(l, expect++);
}

}  // namespace
}  // namespace homets::cluster
