#include "cluster/rand_index.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace homets::cluster {
namespace {

TEST(AriTest, IdenticalPartitionsScoreOne) {
  EXPECT_DOUBLE_EQ(
      AdjustedRandIndex({0, 0, 1, 1, 2}, {0, 0, 1, 1, 2}).value(), 1.0);
}

TEST(AriTest, RelabeledPartitionsScoreOne) {
  // ARI is invariant to label permutation.
  EXPECT_DOUBLE_EQ(
      AdjustedRandIndex({0, 0, 1, 1, 2}, {5, 5, 9, 9, 7}).value(), 1.0);
}

TEST(AriTest, KnownSmallExample) {
  // Classic example: ARI of {0,0,1,1} vs {0,1,1,1}.
  // Pairs: joint table {0,0}:1 {0,1}:1 {1,1}:2 → sum_joint = C(2,2) = 1;
  // rows: 2,2 → 2; cols: 1,3 → 3; total pairs = 6; expected = 1;
  // ARI = (1 − 1) / (2.5 − 1) = 0.
  EXPECT_NEAR(AdjustedRandIndex({0, 0, 1, 1}, {0, 1, 1, 1}).value(), 0.0,
              1e-12);
}

TEST(AriTest, IndependentRandomLabelsNearZero) {
  Rng rng(1);
  std::vector<size_t> a(2000), b(2000);
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.UniformInt(4);
    b[i] = rng.UniformInt(4);
  }
  EXPECT_NEAR(AdjustedRandIndex(a, b).value(), 0.0, 0.02);
}

TEST(AriTest, PartialAgreementBetweenZeroAndOne) {
  // Same as truth but with 20% of labels scrambled.
  Rng rng(2);
  std::vector<size_t> truth(1000), noisy(1000);
  for (size_t i = 0; i < truth.size(); ++i) {
    truth[i] = rng.UniformInt(3);
    noisy[i] = rng.Bernoulli(0.2) ? rng.UniformInt(3) : truth[i];
  }
  const double ari = AdjustedRandIndex(truth, noisy).value();
  EXPECT_GT(ari, 0.4);
  EXPECT_LT(ari, 1.0);
}

TEST(AriTest, SymmetricInArguments) {
  const std::vector<size_t> a{0, 0, 1, 2, 2, 1};
  const std::vector<size_t> b{1, 1, 0, 0, 2, 2};
  EXPECT_DOUBLE_EQ(AdjustedRandIndex(a, b).value(),
                   AdjustedRandIndex(b, a).value());
}

TEST(AriTest, DegenerateEqualPartitions) {
  // All-singletons vs all-singletons, and one-cluster vs one-cluster.
  EXPECT_DOUBLE_EQ(AdjustedRandIndex({0, 1, 2}, {2, 0, 1}).value(), 1.0);
  EXPECT_DOUBLE_EQ(AdjustedRandIndex({0, 0, 0}, {1, 1, 1}).value(), 1.0);
}

TEST(AriTest, InvalidInputs) {
  EXPECT_FALSE(AdjustedRandIndex({}, {}).ok());
  EXPECT_FALSE(AdjustedRandIndex({0, 1}, {0}).ok());
}

}  // namespace
}  // namespace homets::cluster
