// End-to-end integration tests: run the paper's full analysis pipeline on a
// small synthetic fleet — background removal → aggregation → stationarity →
// dominance → motif mining → characterization.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "core/aggregation.h"
#include "core/background.h"
#include "core/dominance.h"
#include "core/motif.h"
#include "core/motif_analysis.h"
#include "simgen/fleet.h"

namespace homets {
namespace {

simgen::SimConfig PipelineConfig() {
  simgen::SimConfig config;
  config.n_gateways = 24;
  config.weeks = 4;
  config.seed = 20140317;
  return config;
}

TEST(PipelineTest, WeeklyMotifPipelineEndToEnd) {
  const simgen::SimConfig config = PipelineConfig();
  simgen::FleetGenerator gen(config);

  // Stage 1: eligibility + background removal + weekly windows @ 8h from 2am.
  std::vector<ts::TimeSeries> windows;
  std::vector<core::WindowProvenance> provenance;
  int eligible = 0;
  for (int id = 0; id < config.n_gateways; ++id) {
    const auto gw = gen.Generate(id);
    if (!gw.HasObservationEveryWeek(0, config.weeks)) continue;
    ++eligible;
    const auto active = core::ActiveAggregate(gw);
    auto aggregated = ts::Aggregate(active, 480, 120, ts::AggKind::kSum);
    if (!aggregated.ok()) continue;
    for (auto& window :
         ts::SliceWindows(*aggregated, ts::kMinutesPerWeek, 120)) {
      provenance.push_back({id, window.start_minute()});
      windows.push_back(std::move(window));
    }
  }
  ASSERT_GT(eligible, 10);
  ASSERT_GT(windows.size(), 20u);

  // Stage 2: motif mining.
  const auto motifs = core::MotifDiscovery().Discover(windows).value();
  // Regular homes exist in the fleet, so some weekly motif must appear.
  ASSERT_FALSE(motifs.empty());
  EXPECT_GE(motifs[0].support(), 2u);

  // Stage 3: characterization with lazily-provided gateways.
  std::map<int, simgen::GatewayTrace> cache;
  auto provider = [&](int id) -> const simgen::GatewayTrace* {
    auto it = cache.find(id);
    if (it == cache.end()) it = cache.emplace(id, gen.Generate(id)).first;
    return &it->second;
  };
  std::map<int, std::vector<core::DominantDevice>> overall;
  for (const auto& p : provenance) {
    if (!overall.count(p.gateway_id)) {
      overall[p.gateway_id] = core::FindDominantDevices(*provider(p.gateway_id));
    }
  }
  core::MotifAnalysisOptions options;
  options.granularity_minutes = 480;
  options.anchor_offset_minutes = 120;
  options.window_minutes = ts::kMinutesPerWeek;
  const auto characterization =
      core::CharacterizeMotif(motifs[0], provenance, provider, overall,
                              options)
          .value();
  EXPECT_EQ(characterization.support, motifs[0].support());
  EXPECT_GE(characterization.distinct_gateways, 1u);
}

TEST(PipelineTest, DominantDevicesExistForMostGateways) {
  const simgen::SimConfig config = PipelineConfig();
  simgen::FleetGenerator gen(config);
  int with_dominant = 0, checked = 0;
  for (int id = 0; id < config.n_gateways; ++id) {
    const auto gw = gen.Generate(id);
    if (!gw.HasObservationEveryWeek(0, config.weeks)) continue;
    ++checked;
    if (!core::FindDominantDevices(gw).empty()) ++with_dominant;
  }
  ASSERT_GT(checked, 10);
  // Paper: 149/153 gateways (97%) have at least one dominant device.
  EXPECT_GT(static_cast<double>(with_dominant) / checked, 0.7);
}

TEST(PipelineTest, AggregationSweepPrefersCoarseBins) {
  const simgen::SimConfig config = PipelineConfig();
  simgen::FleetGenerator gen(config);
  std::vector<ts::TimeSeries> active_series;
  for (int id = 0; id < config.n_gateways; ++id) {
    const auto gw = gen.Generate(id);
    if (!gw.HasObservationEveryWeek(0, config.weeks)) continue;
    active_series.push_back(core::ActiveAggregate(gw));
  }
  core::AggregationSweepOptions options;
  options.period = core::PatternPeriod::kWeekly;
  options.anchor_offset_minutes = 120;
  const auto sweep =
      core::SweepAggregations(active_series, {60, 480}, options).value();
  ASSERT_EQ(sweep.size(), 2u);
  // Figure 6's shape: coarse bins beat 1-hour bins on average correlation.
  EXPECT_GT(sweep[1].mean_correlation_all, sweep[0].mean_correlation_all);
}

TEST(PipelineTest, DailyMotifsMoreNumerousThanWeeklyPerGateway) {
  // Daily analysis sees 7× more windows per gateway, so per-gateway motif
  // participation is higher (Figure 10's contrast).
  const simgen::SimConfig config = PipelineConfig();
  simgen::FleetGenerator gen(config);
  std::vector<ts::TimeSeries> weekly_windows, daily_windows;
  for (int id = 0; id < config.n_gateways; ++id) {
    const auto gw = gen.Generate(id);
    if (!gw.HasObservationEveryDay(0, config.weeks * 7)) continue;
    const auto active = core::ActiveAggregate(gw);
    auto weekly = ts::Aggregate(active, 480, 120, ts::AggKind::kSum);
    if (weekly.ok()) {
      for (auto& w : ts::SliceWindows(*weekly, ts::kMinutesPerWeek, 120)) {
        weekly_windows.push_back(std::move(w));
      }
    }
    auto daily = ts::Aggregate(active, 180, 0, ts::AggKind::kSum);
    if (daily.ok()) {
      for (auto& w : ts::SliceWindows(*daily, ts::kMinutesPerDay, 0)) {
        daily_windows.push_back(std::move(w));
      }
    }
  }
  ASSERT_FALSE(weekly_windows.empty());
  ASSERT_FALSE(daily_windows.empty());
  EXPECT_GT(daily_windows.size(), 3 * weekly_windows.size());
}

TEST(PipelineTest, StationaryGatewayFractionIsSmall) {
  // Section 7: only a small share of gateways is strongly stationary.
  const simgen::SimConfig config = PipelineConfig();
  simgen::FleetGenerator gen(config);
  int stationary = 0, checked = 0;
  for (int id = 0; id < config.n_gateways; ++id) {
    const auto gw = gen.Generate(id);
    if (!gw.HasObservationEveryWeek(0, config.weeks)) continue;
    const auto active = core::ActiveAggregate(gw);
    auto aggregated = ts::Aggregate(active, 180, 0, ts::AggKind::kSum);
    if (!aggregated.ok()) continue;
    const auto windows =
        ts::SliceWindows(*aggregated, ts::kMinutesPerWeek, 0);
    if (windows.size() < 2) continue;
    ++checked;
    const auto result = core::CheckStrongStationarity(windows);
    if (result.ok() && result->strongly_stationary) ++stationary;
  }
  ASSERT_GT(checked, 10);
  EXPECT_LT(static_cast<double>(stationary) / checked, 0.5);
}

}  // namespace
}  // namespace homets
