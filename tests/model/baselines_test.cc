#include "model/baselines.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace homets::model {
namespace {

TEST(SeasonalNaiveTest, ForecastsValueOnePeriodBack) {
  const auto model = SeasonalNaive::Make(3).value();
  const std::vector<double> values{10, 20, 30, 40, 50, 60};
  EXPECT_DOUBLE_EQ(model.Forecast(values, 3), 10.0);
  EXPECT_DOUBLE_EQ(model.Forecast(values, 5), 30.0);
  EXPECT_TRUE(std::isnan(model.Forecast(values, 2)));
}

TEST(SeasonalNaiveTest, ZeroPeriodRejected) {
  EXPECT_FALSE(SeasonalNaive::Make(0).ok());
}

TEST(CompareBaselinesTest, SeasonalWinsOnPeriodicData) {
  // Perfect daily pattern (period 24) plus small noise: seasonal-naive must
  // beat both the last-value and mean baselines.
  homets::Rng rng(1);
  std::vector<double> v(24 * 50);
  for (size_t i = 0; i < v.size(); ++i) {
    v[i] = 100.0 + 80.0 * std::sin(2.0 * M_PI * (i % 24) / 24.0) +
           rng.Normal();
  }
  ts::TimeSeries series(0, 60, std::move(v));
  const auto cmp = CompareBaselines(series, 24).value();
  EXPECT_LT(cmp.rmse_seasonal_naive, cmp.rmse_last_value);
  EXPECT_LT(cmp.rmse_seasonal_naive, cmp.rmse_mean);
  EXPECT_LT(cmp.rmse_seasonal_naive, 3.0);
}

TEST(CompareBaselinesTest, LastValueWinsOnRandomWalk) {
  homets::Rng rng(2);
  std::vector<double> v(2000, 0.0);
  for (size_t i = 1; i < v.size(); ++i) v[i] = v[i - 1] + rng.Normal();
  ts::TimeSeries series(0, 1, std::move(v));
  const auto cmp = CompareBaselines(series, 24).value();
  EXPECT_LT(cmp.rmse_last_value, cmp.rmse_seasonal_naive);
  EXPECT_LT(cmp.rmse_last_value, cmp.rmse_mean);
}

TEST(CompareBaselinesTest, MeanWinsOnWhiteNoise) {
  homets::Rng rng(3);
  std::vector<double> v(2000);
  for (auto& x : v) x = rng.Normal();
  ts::TimeSeries series(0, 1, std::move(v));
  const auto cmp = CompareBaselines(series, 24).value();
  EXPECT_LE(cmp.rmse_mean, cmp.rmse_last_value);
  EXPECT_LE(cmp.rmse_mean, cmp.rmse_seasonal_naive);
}

TEST(CompareBaselinesTest, MissingTargetsSkipped) {
  std::vector<double> v(100, 1.0);
  v[50] = ts::TimeSeries::Missing();
  ts::TimeSeries series(0, 1, std::move(v));
  const auto cmp = CompareBaselines(series, 10).value();
  EXPECT_EQ(cmp.n_forecasts, 89u);  // 90 candidates minus the missing one
}

TEST(CompareBaselinesTest, InvalidInputs) {
  ts::TimeSeries tiny(0, 1, {1.0, 2.0});
  EXPECT_FALSE(CompareBaselines(tiny, 24).ok());
  EXPECT_FALSE(CompareBaselines(tiny, 0).ok());
}

}  // namespace
}  // namespace homets::model
