#include "model/autoregressive.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/random.h"

namespace homets::model {
namespace {

std::vector<double> Ar1Series(double phi, double mean, size_t n,
                              uint64_t seed) {
  homets::Rng rng(seed);
  std::vector<double> x(n);
  x[0] = mean;
  for (size_t t = 1; t < n; ++t) {
    x[t] = mean + phi * (x[t - 1] - mean) + rng.Normal();
  }
  return x;
}

TEST(FitArTest, RecoversAr1Coefficient) {
  const auto model = FitAr(Ar1Series(0.6, 0.0, 20000, 1), 1).value();
  ASSERT_EQ(model.phi.size(), 1u);
  EXPECT_NEAR(model.phi[0], 0.6, 0.02);
  EXPECT_NEAR(model.noise_variance, 1.0, 0.05);
}

TEST(FitArTest, RecoversAr2Coefficients) {
  homets::Rng rng(2);
  const size_t n = 30000;
  std::vector<double> x(n, 0.0);
  for (size_t t = 2; t < n; ++t) {
    x[t] = 0.5 * x[t - 1] - 0.3 * x[t - 2] + rng.Normal();
  }
  const auto model = FitAr(x, 2).value();
  EXPECT_NEAR(model.phi[0], 0.5, 0.03);
  EXPECT_NEAR(model.phi[1], -0.3, 0.03);
}

TEST(FitArTest, MeanCaptured) {
  const auto model = FitAr(Ar1Series(0.4, 100.0, 10000, 3), 1).value();
  EXPECT_NEAR(model.mean, 100.0, 0.5);
}

TEST(FitArTest, OrderZeroIsMeanModel) {
  const auto model = FitAr({1, 2, 3, 4, 5, 4, 3, 2, 1, 2, 3}, 0).value();
  EXPECT_TRUE(model.phi.empty());
  EXPECT_GT(model.noise_variance, 0.0);
}

TEST(FitArTest, ConstantSeriesErrors) {
  EXPECT_FALSE(FitAr(std::vector<double>(100, 7.0), 2).ok());
}

TEST(FitArTest, TooShortErrors) {
  EXPECT_FALSE(FitAr({1.0, 2.0, 3.0}, 5).ok());
  EXPECT_FALSE(FitAr({1.0}, 0).ok());
}

TEST(FitArTest, NansImputed) {
  auto x = Ar1Series(0.5, 0.0, 5000, 4);
  for (size_t i = 0; i < x.size(); i += 31) x[i] = std::nan("");
  EXPECT_TRUE(FitAr(x, 1).ok());
}

TEST(FitArAicSelectTest, PrefersTrueOrderNeighborhood) {
  const auto model = FitArAicSelect(Ar1Series(0.7, 0.0, 20000, 5), 8).value();
  // AIC is known to overselect mildly, but it must find a low order for an
  // AR(1) process and beat the degenerate mean model.
  EXPECT_LE(model.order, 6u);
  EXPECT_GE(model.order, 1u);
  EXPECT_NEAR(model.phi[0], 0.7, 0.05);
}

TEST(FitArAicSelectTest, WhiteNoisePrefersLowOrder) {
  homets::Rng rng(6);
  std::vector<double> x(20000);
  for (auto& v : x) v = rng.Normal();
  const auto model = FitArAicSelect(x, 6).value();
  EXPECT_LE(model.order, 1u);
}

TEST(ForecastTest, OneStepPredictionTracksProcess) {
  const auto series = Ar1Series(0.8, 10.0, 5000, 7);
  const auto model = FitAr(series, 1).value();
  // Forecast after a value far above the mean regresses toward the mean.
  const double high = 20.0;
  const double pred = model.ForecastOneStep({high});
  EXPECT_GT(pred, model.mean);
  EXPECT_LT(pred, high);
}

TEST(ForecastTest, EmptyHistoryPredictsMean) {
  const auto model = FitAr(Ar1Series(0.5, 3.0, 1000, 8), 1).value();
  EXPECT_NEAR(model.ForecastOneStep({}), model.mean, 1e-12);
}

TEST(BurstForecastTest, LinearModelMissesRareBursts) {
  // The paper's Section 4.2 point: minute-level traffic bursts are not
  // predictable with ARIMA-style linear models. Build a background hum with
  // rare huge spikes and check burst recall is poor.
  homets::Rng rng(9);
  std::vector<double> x(20000);
  for (auto& v : x) {
    v = rng.LogNormal(std::log(300.0), 0.6);
    if (rng.Bernoulli(0.003)) v += rng.LogNormal(std::log(1e6), 0.4);
  }
  const auto model = FitArAicSelect(x, 5).value();
  const auto report = EvaluateBurstForecast(model, x, 1e5).value();
  ASSERT_GT(report.n_bursts, 10u);
  EXPECT_LT(report.recall, 0.2);
}

TEST(BurstForecastTest, OscillatoryProcessOnsetsArePredictable) {
  // Contrast case: an AR(2) cycle with small innovations crosses the
  // threshold with momentum, so a fitted AR model anticipates the onsets —
  // showing the low recall on bursty traffic is about the data, not a
  // defect of the metric.
  homets::Rng rng(10);
  const size_t n = 20000;
  std::vector<double> x(n, 0.0);
  for (size_t t = 2; t < n; ++t) {
    x[t] = 1.8 * x[t - 1] - 0.97 * x[t - 2] + 0.05 * rng.Normal();
  }
  const auto model = FitAr(x, 2).value();
  double sd = 0.0;
  for (double v : x) sd += v * v;
  sd = std::sqrt(sd / static_cast<double>(n));
  const auto summary = EvaluateBurstForecast(model, x, 0.5 * sd).value();
  ASSERT_GT(summary.n_bursts, 100u);
  EXPECT_GT(summary.recall, 0.5);
}

TEST(BurstForecastTest, ReportsRmse) {
  const auto series = Ar1Series(0.5, 0.0, 2000, 11);
  const auto model = FitAr(series, 1).value();
  const auto report = EvaluateBurstForecast(model, series, 100.0).value();
  EXPECT_GT(report.rmse, 0.5);
  EXPECT_LT(report.rmse, 2.0);  // near the innovation sd of 1
  EXPECT_GT(report.n_forecasts, 1900u);
}

TEST(BurstForecastTest, InvalidInputs) {
  const auto model = FitAr(Ar1Series(0.5, 0.0, 100, 12), 1).value();
  EXPECT_FALSE(EvaluateBurstForecast(model, {1.0}, 1.0).ok());
  EXPECT_FALSE(
      EvaluateBurstForecast(model, Ar1Series(0.5, 0.0, 100, 13), -1.0).ok());
}

}  // namespace
}  // namespace homets::model
