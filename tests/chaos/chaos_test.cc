// Chaos suite (`ctest -L chaos`): whole-subsystem failpoint schedules
// asserting the three resilience contracts — no crash, clean Status
// propagation, and bit-identical output when retries absorb transient
// faults. Each test installs a schedule, drives a real read or engine run,
// and disarms; everything else in the process must behave as if the
// schedule never existed.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "common/failpoint.h"
#include "common/random.h"
#include "common/status.h"
#include "core/similarity_engine.h"
#include "io/csv.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "simgen/types.h"
#include "storage/homets_format.h"
#include "ts/time_series.h"

namespace homets {
namespace {

class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override { Failpoints::Global().Reset(); }
  void TearDown() override { Failpoints::Global().Reset(); }

  /// A clean five-row series file on disk, plus its fault-free read.
  std::string WriteCleanSeries() {
    const std::string path = testing::TempDir() + "/chaos_series.csv";
    const ts::TimeSeries series(0, 1, {1.0, 2.0, 3.0, 4.0, 5.0});
    EXPECT_TRUE(io::WriteTimeSeriesCsv(path, series).ok());
    return path;
  }
};

bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

// Schedule 1: two transient open errors, absorbed by a retry budget of two.
// The result must be bit-identical to the fault-free read.
TEST_F(ChaosTest, TransientOpenErrorsAbsorbedByRetries) {
  const std::string path = WriteCleanSeries();
  const auto clean = io::ReadTimeSeriesCsv(path);
  ASSERT_TRUE(clean.ok());
  const uint64_t retries_before =
      obs::MetricsRegistry::Global().GetCounter(obs::kIngestRetries)->Value();

  ASSERT_TRUE(Failpoints::Global().Configure("io.csv.open=error*2").ok());
  io::ReadOptions options;
  options.max_retries = 2;
  io::IngestReport report;
  const auto retried = io::ReadTimeSeriesCsv(path, options, &report);
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  EXPECT_EQ(report.retries, 2u);
  ASSERT_EQ(retried->size(), clean->size());
  for (size_t i = 0; i < clean->size(); ++i) {
    EXPECT_TRUE(SameBits((*retried)[i], (*clean)[i])) << "index " << i;
  }
  EXPECT_EQ(
      obs::MetricsRegistry::Global().GetCounter(obs::kIngestRetries)->Value(),
      retries_before + 2);
  std::remove(path.c_str());
}

// Schedule 1b: the same faults with a retry budget of one — the error must
// surface as a clean, retryable IoError, not a crash or a mangled result.
TEST_F(ChaosTest, TransientErrorsBeyondBudgetPropagateCleanly) {
  const std::string path = WriteCleanSeries();
  ASSERT_TRUE(Failpoints::Global().Configure("io.csv.open=error*2").ok());
  io::ReadOptions options;
  options.max_retries = 1;
  io::IngestReport report;
  const auto failed = io::ReadTimeSeriesCsv(path, options, &report);
  EXPECT_EQ(failed.status().code(), StatusCode::kIoError);
  EXPECT_NE(failed.status().message().find("io.csv.open"),
            std::string::npos);
  EXPECT_EQ(report.retries, 1u);
  std::remove(path.c_str());
}

// Schedule 2: one corrupted row, observed under all three error policies.
TEST_F(ChaosTest, CorruptRowUnderEveryPolicy) {
  const std::string path = WriteCleanSeries();

  // Strict: corruption of the first data row fails the read.
  ASSERT_TRUE(Failpoints::Global().Configure("io.csv.row=corrupt*1").ok());
  EXPECT_EQ(io::ReadTimeSeriesCsv(path).status().code(),
            StatusCode::kInvalidArgument);

  // Skip: the corrupted first row is quarantined; the surviving four rows
  // still form a grid, now starting at minute 1.
  ASSERT_TRUE(Failpoints::Global().Configure("io.csv.row=corrupt*1").ok());
  io::ReadOptions skip;
  skip.policy = io::ErrorPolicy::kSkipAndReport;
  io::IngestReport report;
  const auto skipped = io::ReadTimeSeriesCsv(path, skip, &report);
  ASSERT_TRUE(skipped.ok()) << skipped.status().ToString();
  EXPECT_EQ(skipped->size(), 4u);
  EXPECT_EQ(skipped->start_minute(), 1);
  EXPECT_EQ(report.rows_malformed, 1u);

  // Repair: corrupting a row in the middle leaves a hole that only kRepair
  // can bridge — with an explicit missing marker, not an invented value.
  ASSERT_TRUE(Failpoints::Global().Configure("io.csv.row=corrupt@3*1").ok());
  io::ReadOptions repair;
  repair.policy = io::ErrorPolicy::kRepair;
  io::IngestReport repair_report;
  const auto repaired = io::ReadTimeSeriesCsv(path, repair, &repair_report);
  ASSERT_TRUE(repaired.ok()) << repaired.status().ToString();
  ASSERT_EQ(repaired->size(), 5u);
  EXPECT_TRUE(ts::TimeSeries::IsMissing((*repaired)[2]));
  EXPECT_DOUBLE_EQ((*repaired)[3], 4.0);
  EXPECT_EQ(repair_report.gaps_repaired, 1u);
  std::remove(path.c_str());
}

// Schedule 3: the stream ends mid-file.
TEST_F(ChaosTest, TruncatedStreamStrictFailsSkipKeepsPrefix) {
  const std::string path = WriteCleanSeries();
  ASSERT_TRUE(Failpoints::Global().Configure("io.csv.row=truncate@4").ok());
  const auto strict = io::ReadTimeSeriesCsv(path);
  EXPECT_EQ(strict.status().code(), StatusCode::kIoError);
  EXPECT_NE(strict.status().message().find("truncated stream"),
            std::string::npos);

  ASSERT_TRUE(Failpoints::Global().Configure("io.csv.row=truncate@4").ok());
  io::ReadOptions skip;
  skip.policy = io::ErrorPolicy::kSkipAndReport;
  io::IngestReport report;
  const auto partial = io::ReadTimeSeriesCsv(path, skip, &report);
  ASSERT_TRUE(partial.ok()) << partial.status().ToString();
  EXPECT_EQ(partial->size(), 3u);  // rows before the cut survive
  EXPECT_TRUE(report.truncated);
  std::remove(path.c_str());
}

// Schedule 4: probabilistic task failures inside the similarity engine.
// Degrade mode must finish with a masked matrix, and the same seed must
// mask the same cells on a re-run (single-threaded schedules are exactly
// reproducible).
TEST_F(ChaosTest, EngineDegradesDeterministicallyUnderRandomTaskFailures) {
  Rng rng(21);
  std::vector<std::vector<double>> windows(40);
  for (auto& w : windows) {
    w.resize(21);
    for (auto& v : w) v = rng.LogNormal(std::log(500.0), 1.0);
  }
  const auto prepared = core::SimilarityEngine::PrepareVectors(windows);
  core::SimilarityEngineOptions options;
  options.degrade_on_failure = true;
  options.threads = 1;
  const auto run = [&] {
    EXPECT_TRUE(Failpoints::Global()
                    .Configure("engine.pair_block=fail~0.5", 99)
                    .ok());
    return core::SimilarityEngine(options).PairwiseChecked(prepared);
  };
  const auto first = run();
  const auto second = run();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_GT(first->invalid_count(), 0u);
  EXPECT_LT(first->invalid_count(), first->pair_count());
  ASSERT_EQ(first->pair_count(), second->pair_count());
  for (size_t k = 0; k < first->pair_count(); ++k) {
    ASSERT_EQ(first->IsValidIndex(k), second->IsValidIndex(k)) << "cell " << k;
    if (first->IsValidIndex(k)) {
      EXPECT_TRUE(
          SameBits(first->cells()[k].value, second->cells()[k].value));
    }
  }
  // Every distance stays usable for clustering: invalid cells read 1.0.
  for (const double d : first->CondensedDistances()) {
    EXPECT_TRUE(std::isfinite(d));
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, 2.0);
  }
}

// Schedule 4b: the same failures without degrade mode surface as one clean,
// deterministic error.
TEST_F(ChaosTest, EngineStrictModeSurfacesInjectedFailure) {
  Rng rng(22);
  std::vector<std::vector<double>> windows(20);
  for (auto& w : windows) {
    w.resize(21);
    for (auto& v : w) v = rng.LogNormal(std::log(500.0), 1.0);
  }
  const auto prepared = core::SimilarityEngine::PrepareVectors(windows);
  ASSERT_TRUE(Failpoints::Global().Configure("engine.pair_block=fail*1").ok());
  const auto checked = core::SimilarityEngine().PairwiseChecked(prepared);
  EXPECT_EQ(checked.status().code(), StatusCode::kComputeError);
  EXPECT_NE(checked.status().message().find("engine.pair_block"),
            std::string::npos);
}

// Schedule 5: a deadline watchdog cancels a long engine run mid-flight.
TEST_F(ChaosTest, WatchdogCancelsEngineRunCleanly) {
  Rng rng(23);
  std::vector<std::vector<double>> windows(300);
  for (auto& w : windows) {
    w.resize(21);
    for (auto& v : w) v = rng.LogNormal(std::log(500.0), 1.0);
  }
  const auto prepared = core::SimilarityEngine::PrepareVectors(windows);
  CancellationToken cancel;
  core::SimilarityEngineOptions options;
  options.cancel = &cancel;
  Result<core::SimilarityMatrix> checked = core::SimilarityMatrix();
  {
    DeadlineWatchdog watchdog(&cancel, 0.01);  // fires almost immediately
    checked = core::SimilarityEngine(options).PairwiseChecked(prepared);
  }
  // 44850 pairs cannot finish inside 10 microseconds; the run must stop at
  // a block boundary with the cancellation status — never a crash, never a
  // partially-valid matrix pretending to be complete.
  EXPECT_EQ(checked.status().code(), StatusCode::kCancelled);
}

// Schedule 6: write-side injection — the writer reports the fault instead
// of leaving a silent half-written file behind.
TEST_F(ChaosTest, WriteFailpointPropagates) {
  ASSERT_TRUE(Failpoints::Global().Configure("io.csv.write=error*1").ok());
  const std::string path = testing::TempDir() + "/chaos_write.csv";
  const ts::TimeSeries series(0, 1, {1.0, 2.0, 3.0});
  const Status st = io::WriteTimeSeriesCsv(path, series);
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  // The budget is spent; the very next write goes through untouched.
  ASSERT_TRUE(io::WriteTimeSeriesCsv(path, series).ok());
  EXPECT_TRUE(io::ReadTimeSeriesCsv(path).ok());
  std::remove(path.c_str());
}

/// A small gateway trace for the columnar-store schedules.
simgen::GatewayTrace ColumnarGateway() {
  const double miss = ts::TimeSeries::Missing();
  simgen::GatewayTrace gw;
  gw.id = 7;
  simgen::DeviceTrace dev;
  dev.name = "chaos-dev";
  dev.incoming = ts::TimeSeries(0, 1, {1.25, miss, 3.5, 4.0});
  dev.outgoing = ts::TimeSeries(0, 1, {0.25, miss, 0.5, miss});
  gw.devices = {dev};
  return gw;
}

// Schedule 7: a transient open error on the columnar reader. The failure
// names the site, spends the budget, and the very next open succeeds with
// bit-identical data.
TEST_F(ChaosTest, ColumnarOpenErrorPropagatesThenClears) {
  const std::string path = testing::TempDir() + "/chaos_col_open.homets";
  ASSERT_TRUE(storage::WriteGatewayHomets(path, ColumnarGateway()).ok());

  ASSERT_TRUE(Failpoints::Global().Configure("io.col.open=error*1").ok());
  const auto failed = storage::HometsReader::Open(path);
  EXPECT_EQ(failed.status().code(), StatusCode::kIoError);
  EXPECT_NE(failed.status().message().find("io.col.open"), std::string::npos);

  auto retried = storage::HometsReader::Open(path);
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  const auto gw = retried->ReadGateway(0);
  ASSERT_TRUE(gw.ok()) << gw.status().ToString();
  ASSERT_EQ(gw->devices.size(), 1u);
  EXPECT_TRUE(SameBits(gw->devices[0].incoming[0], 1.25));
  std::remove(path.c_str());
}

// Schedule 8: one corrupted chunk payload. The CRC catches it and the read
// reports a clean IoError; once the budget is spent the same reader serves
// the data untouched — corruption injection never poisons the mmap.
TEST_F(ChaosTest, ColumnarChunkCorruptionCaughtByCrc) {
  const std::string path = testing::TempDir() + "/chaos_col_chunk.homets";
  ASSERT_TRUE(storage::WriteGatewayHomets(path, ColumnarGateway()).ok());
  auto reader = storage::HometsReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();

  ASSERT_TRUE(Failpoints::Global().Configure("io.col.chunk=corrupt*1").ok());
  const auto corrupted = reader->ReadGateway(0);
  EXPECT_EQ(corrupted.status().code(), StatusCode::kIoError);
  EXPECT_NE(corrupted.status().message().find("crc mismatch"),
            std::string::npos);

  const auto clean = reader->ReadGateway(0);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  EXPECT_TRUE(SameBits(clean->devices[0].incoming[2], 3.5));
  std::remove(path.c_str());
}

// Schedule 9: write-side faults. An injected error during Append surfaces
// as a Status; an error during Finish leaves a torn file that the reader
// refuses with a clean Status instead of serving half a fleet.
TEST_F(ChaosTest, ColumnarWriteFaultsLeaveNoReadableHalfFile) {
  const std::string path = testing::TempDir() + "/chaos_col_write.homets";

  ASSERT_TRUE(Failpoints::Global().Configure("io.col.write=error*1").ok());
  auto writer = storage::HometsWriter::Create(path);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  const Status append = writer->Append(ColumnarGateway());
  EXPECT_EQ(append.code(), StatusCode::kIoError);
  EXPECT_NE(append.message().find("io.col.write"), std::string::npos);

  // Second schedule: the Append goes through, the Finish is the casualty —
  // the footer never lands, so Open must report the file as torn. The
  // writer is scoped so its stream flushes the chunk bytes before we look.
  ASSERT_TRUE(Failpoints::Global().Configure("io.col.write=error@2*1").ok());
  {
    auto torn_writer = storage::HometsWriter::Create(path);
    ASSERT_TRUE(torn_writer.ok()) << torn_writer.status().ToString();
    ASSERT_TRUE(torn_writer->Append(ColumnarGateway()).ok());
    EXPECT_EQ(torn_writer->Finish().code(), StatusCode::kIoError);
  }
  const auto torn = storage::HometsReader::Open(path);
  EXPECT_EQ(torn.status().code(), StatusCode::kIoError);
  EXPECT_NE(torn.status().message().find("torn"), std::string::npos);

  // Budgets spent: the same path writes and reads back cleanly.
  ASSERT_TRUE(storage::WriteGatewayHomets(path, ColumnarGateway()).ok());
  EXPECT_TRUE(storage::HometsReader::Open(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace homets
