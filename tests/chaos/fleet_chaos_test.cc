// Chaos-fleet suite (`ctest -L chaos-fleet`): kill/resume sweeps and torn-
// checkpoint recovery for the sharded fleet orchestrator (DESIGN.md §15).
//
// The contracts under test:
//   1. A run killed at shard K and then resumed produces a fleet report
//      byte-identical to the uninterrupted run — including when the last
//      checkpoint before the kill was torn mid-write.
//   2. Failpoint schedules select shards by index, not arrival order, so
//      the same chaos schedule hits the same shards under any thread count
//      (schedule equivalence).
//   3. Retries absorb transient shard and checkpoint-write faults without
//      changing a single output byte.
#include <gtest/gtest.h>

#include <sys/stat.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "common/status.h"
#include "fleet/orchestrator.h"
#include "simgen/fleet.h"
#include "storage/homets_format.h"

namespace homets {
namespace {

constexpr int kShards = 4;

class FleetChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Failpoints::Global().Reset();
    dir_ = testing::TempDir() + "/fleet_chaos_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    // TempDir() outlives the process: scrub checkpoints left by a previous
    // ctest invocation or they would satisfy --resume and skew the counts.
    std::filesystem::remove_all(dir_);
    ::mkdir(dir_.c_str(), 0755);
    simgen::SimConfig config;
    config.n_gateways = 6;
    config.weeks = 2;
    config.surveyed_gateways =
        std::min(config.surveyed_gateways, config.n_gateways);
    fleet_path_ = dir_ + "/fleet.homets";
    simgen::FleetGenerator generator(config);
    const auto stats = storage::WriteFleetHomets(generator, fleet_path_);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  }

  void TearDown() override { Failpoints::Global().Reset(); }

  fleet::FleetOptions Options(const std::string& checkpoint_dir = "") const {
    fleet::FleetOptions options;
    options.n_shards = kShards;
    options.threads = 2;
    options.checkpoint_dir = checkpoint_dir;
    return options;
  }

  // The uninterrupted, fault-free report every scenario must reproduce.
  std::string Baseline() {
    fleet::FleetOrchestrator orchestrator({fleet_path_}, Options());
    const auto report = orchestrator.Analyze();
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_FALSE(report->degraded);
    return fleet::FormatFleetReport(*report);
  }

  std::string dir_;
  std::string fleet_path_;
};

// Contract 1, swept: for every shard K, kill the run as it reaches K (all
// shards >= K fail, fail-fast, no retry — the checkpoints of shards < K are
// already on disk, exactly as after a SIGKILL), then resume and demand the
// uninterrupted report byte for byte.
TEST_F(FleetChaosTest, KilledAtEveryShardThenResumedIsByteIdentical) {
  const std::string baseline = Baseline();
  for (int k = 1; k <= kShards; ++k) {
    const std::string ckpt = dir_ + "/ckpt_" + std::to_string(k);
    fleet::FleetOptions options = Options(ckpt);
    options.quarantine = false;  // fail-fast, like a crash
    options.max_attempts = 1;
    ASSERT_TRUE(Failpoints::Global()
                    .Configure("fleet.shard.run=fail@" + std::to_string(k))
                    .ok());
    fleet::FleetOrchestrator killed({fleet_path_}, options);
    const auto dead = killed.Analyze();
    ASSERT_FALSE(dead.ok()) << "kill at shard " << k;
    EXPECT_EQ(dead.status().code(), StatusCode::kComputeError);
    Failpoints::Global().Reset();

    fleet::FleetOptions resume_options = Options(ckpt);
    resume_options.resume = true;
    fleet::FleetOrchestrator resumed({fleet_path_}, resume_options);
    const auto report = resumed.Analyze();
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    // Exactly the shards before the kill point were checkpointed.
    EXPECT_EQ(report->shards_resumed, static_cast<uint64_t>(k - 1));
    EXPECT_EQ(report->checkpoints_discarded, 0u);
    EXPECT_EQ(fleet::FormatFleetReport(*report), baseline)
        << "kill at shard " << k;
  }
}

// Contract 1, torn edge: the kill lands mid-checkpoint-write, leaving half a
// file under the FINAL name (as after power loss). Resume must discard it by
// CRC, recompute that shard, and still match the baseline exactly.
TEST_F(FleetChaosTest, TornLastCheckpointIsDiscardedAndRecomputed) {
  const std::string baseline = Baseline();
  const std::string ckpt = dir_ + "/ckpt_torn";
  fleet::FleetOptions options = Options(ckpt);
  options.quarantine = false;
  options.max_attempts = 1;
  // Shard 1 (index 2) tears its checkpoint; shards 2+ (index >= 3) die
  // before producing one. Shard 0 checkpoints cleanly.
  ASSERT_TRUE(Failpoints::Global()
                  .Configure(
                      "io.ckpt.write=truncate@2;fleet.shard.run=fail@3")
                  .ok());
  fleet::FleetOrchestrator killed({fleet_path_}, options);
  ASSERT_FALSE(killed.Analyze().ok());
  Failpoints::Global().Reset();

  fleet::FleetOptions resume_options = Options(ckpt);
  resume_options.resume = true;
  fleet::FleetOrchestrator resumed({fleet_path_}, resume_options);
  const auto report = resumed.Analyze();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->shards_resumed, 1u);        // shard 0
  EXPECT_EQ(report->checkpoints_discarded, 1u);  // torn shard 1
  EXPECT_EQ(fleet::FormatFleetReport(*report), baseline);
}

// A checkpoint that fails to READ (I/O error, not absence) is treated like a
// discard: the shard is recomputed, the figures never change.
TEST_F(FleetChaosTest, UnreadableCheckpointsFallBackToRecompute) {
  const std::string baseline = Baseline();
  const std::string ckpt = dir_ + "/ckpt_read";
  fleet::FleetOptions options = Options(ckpt);
  fleet::FleetOrchestrator first({fleet_path_}, options);
  ASSERT_TRUE(first.Analyze().ok());

  ASSERT_TRUE(Failpoints::Global().Configure("io.ckpt.read=error@1").ok());
  fleet::FleetOptions resume_options = Options(ckpt);
  resume_options.resume = true;
  fleet::FleetOrchestrator resumed({fleet_path_}, resume_options);
  const auto report = resumed.Analyze();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->shards_resumed, 0u);
  EXPECT_EQ(report->checkpoints_discarded, static_cast<uint64_t>(kShards));
  EXPECT_EQ(fleet::FormatFleetReport(*report), baseline);
}

// Contract 2: the same deterministic schedule (shards 2 and 3 poisoned)
// quarantines the same shards and renders the same degraded report under
// every thread count.
TEST_F(FleetChaosTest, ScheduleEquivalenceAcrossThreadCounts) {
  std::string expected;
  for (const int threads : {1, 2, 8}) {
    ASSERT_TRUE(
        Failpoints::Global().Configure("fleet.shard.run=fail@3").ok());
    fleet::FleetOptions options = Options();
    options.threads = threads;
    options.max_attempts = 2;
    fleet::FleetOrchestrator orchestrator({fleet_path_}, options);
    const auto report = orchestrator.Analyze();
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_TRUE(report->degraded);
    ASSERT_EQ(report->quarantined.size(), 2u);
    EXPECT_EQ(report->quarantined[0].shard_index, 2);
    EXPECT_EQ(report->quarantined[1].shard_index, 3);
    EXPECT_EQ(report->quarantined[0].attempts, 2);
    const std::string formatted = fleet::FormatFleetReport(*report);
    if (expected.empty()) {
      expected = formatted;
    } else {
      EXPECT_EQ(formatted, expected) << "threads=" << threads;
    }
    Failpoints::Global().Reset();
  }
}

// Contract 2, probabilistic: a seeded coin-flip schedule is a pure function
// of (shard index, attempt, seed), so even random chaos picks identical
// victims under 1 and 8 threads.
TEST_F(FleetChaosTest, SeededProbabilisticScheduleIsThreadCountInvariant) {
  std::string expected;
  for (const int threads : {1, 8}) {
    ASSERT_TRUE(Failpoints::Global()
                    .Configure("fleet.shard.run=fail~0.5", 42)
                    .ok());
    fleet::FleetOptions options = Options();
    options.threads = threads;
    options.max_attempts = 1;
    fleet::FleetOrchestrator orchestrator({fleet_path_}, options);
    const auto report = orchestrator.Analyze();
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    const std::string formatted = fleet::FormatFleetReport(*report);
    if (expected.empty()) {
      expected = formatted;
    } else {
      EXPECT_EQ(formatted, expected) << "threads=" << threads;
    }
    Failpoints::Global().Reset();
  }
}

// Contract 3: a fault on every shard's FIRST attempt only — one retry
// absorbs all of them; the report matches the fault-free baseline and
// nothing is quarantined.
TEST_F(FleetChaosTest, RetryAbsorbsTransientShardFaults) {
  const std::string baseline = Baseline();
  ASSERT_TRUE(
      Failpoints::Global().Configure("fleet.shard.run=fail@1*1").ok());
  fleet::FleetOptions options = Options();
  options.max_attempts = 2;
  fleet::FleetOrchestrator orchestrator({fleet_path_}, options);
  const auto report = orchestrator.Analyze();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->degraded);
  EXPECT_EQ(fleet::FormatFleetReport(*report), baseline);
}

// Contract 3 for the write path: a transient checkpoint-write error is a
// retryable shard failure, not a lost shard.
TEST_F(FleetChaosTest, RetryAbsorbsTransientCheckpointWriteFaults) {
  const std::string baseline = Baseline();
  const std::string ckpt = dir_ + "/ckpt_write_retry";
  ASSERT_TRUE(Failpoints::Global().Configure("io.ckpt.write=error@1*1").ok());
  fleet::FleetOptions options = Options(ckpt);
  options.max_attempts = 2;
  fleet::FleetOrchestrator orchestrator({fleet_path_}, options);
  const auto report = orchestrator.Analyze();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->degraded);
  EXPECT_EQ(fleet::FormatFleetReport(*report), baseline);
  Failpoints::Global().Reset();
  // Every checkpoint landed intact despite the first-attempt faults.
  fleet::FleetOptions resume_options = Options(ckpt);
  resume_options.resume = true;
  fleet::FleetOrchestrator resumed({fleet_path_}, resume_options);
  const auto resumed_report = resumed.Analyze();
  ASSERT_TRUE(resumed_report.ok());
  EXPECT_EQ(resumed_report->shards_resumed, static_cast<uint64_t>(kShards));
  EXPECT_EQ(fleet::FormatFleetReport(*resumed_report), baseline);
}

}  // namespace
}  // namespace homets
