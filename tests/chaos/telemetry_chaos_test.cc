// Telemetry under fault injection (`ctest -L chaos`): the run manifest must
// land on disk with a clean failure Status whenever a failpoint kills a
// pipeline stage, and the structured logger must narrate the faults without
// disturbing the failure path. This is the library-level half of the
// manifest-on-failure acceptance; tools/cli_telemetry_test.sh drives the
// same contract through the homets_cli binary.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "common/json.h"
#include "common/status.h"
#include "core/similarity_engine.h"
#include "obs/log.h"
#include "obs/report.h"
#include "simgen/types.h"
#include "storage/homets_format.h"
#include "ts/time_series.h"

namespace homets {
namespace {

class TelemetryChaosTest : public ::testing::Test {
 protected:
  void SetUp() override { Failpoints::Global().Reset(); }
  void TearDown() override { Failpoints::Global().Reset(); }

  static JsonValue ReadManifest(const std::string& path) {
    std::ifstream in(path);
    std::ostringstream text;
    text << in.rdbuf();
    auto doc = ParseJson(text.str());
    EXPECT_TRUE(doc.ok()) << text.str();
    return doc.ok() ? *doc : JsonValue();
  }
};

// An engine task failpoint aborts the pairwise run; the manifest written
// afterwards must carry the partial stages and the injected Status verbatim.
TEST_F(TelemetryChaosTest, EngineFaultLandsInManifestAsFailure) {
  ASSERT_TRUE(
      Failpoints::Global().Configure("engine.pair_block=fail*1").ok());

  obs::RunManifestBuilder manifest;
  manifest.SetTool("telemetry_chaos");
  manifest.SetFailpoints("engine.pair_block=fail*1", 0);

  std::vector<ts::TimeSeries> windows;
  for (int w = 0; w < 24; ++w) {
    std::vector<double> values;
    for (int i = 0; i < 64; ++i) {
      values.push_back(static_cast<double>((w * 7 + i * 13) % 29));
    }
    windows.emplace_back(0, 1, values);
  }
  core::SimilarityEngineOptions options;
  options.threads = 2;
  options.min_parallel_pairs = 1;
  const core::SimilarityEngine engine(options);
  Status failed = Status::OK();
  {
    obs::RunManifestBuilder::StageTimer stage(&manifest, "pairwise");
    const auto result =
        engine.PairwiseChecked(core::SimilarityEngine::PrepareWindows(windows));
    ASSERT_FALSE(result.ok());
    failed = result.status();
    manifest.MarkFailed("pairwise", failed);
  }
  manifest.SetExitCode(10 + static_cast<int>(failed.code()));

  const std::string path = testing::TempDir() + "/chaos_manifest_pool.json";
  ASSERT_TRUE(manifest.WriteJson(path).ok());
  const JsonValue doc = ReadManifest(path);
  EXPECT_EQ(doc.StringOr("outcome", ""), "failure");
  EXPECT_EQ(doc.StringOr("failed_stage", ""), "pairwise");
  const JsonValue* status = doc.Find("status");
  ASSERT_NE(status, nullptr);
  EXPECT_NE(status->StringOr("message", "").find("failpoint"),
            std::string::npos)
      << status->StringOr("message", "");
  // The aborted stage still appears, with its wall time, in `stages`.
  const JsonValue* stages = doc.Find("stages");
  ASSERT_NE(stages, nullptr);
  ASSERT_EQ(stages->array_items().size(), 1u);
  EXPECT_EQ(stages->array_items()[0].StringOr("stage", ""), "pairwise");
  std::remove(path.c_str());
}

// A corrupted columnar chunk: the storage layer logs the CRC mismatch
// through the structured logger and the manifest records the IoError.
TEST_F(TelemetryChaosTest, ColumnarChunkFaultLandsInManifestAndLog) {
  // Write a small gateway file first, with no faults armed.
  simgen::GatewayTrace gw;
  gw.id = 0;
  simgen::DeviceTrace dev;
  dev.name = "gw000-dev0";
  dev.incoming = ts::TimeSeries(0, 1, {1.0, 2.0, 3.0, 4.0});
  dev.outgoing = ts::TimeSeries(0, 1, {4.0, 3.0, 2.0, 1.0});
  gw.devices.push_back(dev);
  const std::string path = testing::TempDir() + "/chaos_telemetry.homets";
  ASSERT_TRUE(storage::WriteGatewayHomets(path, gw).ok());

  const std::string log_path = testing::TempDir() + "/chaos_telemetry.jsonl";
  obs::LoggerOptions log_options;
  log_options.min_level = obs::LogLevel::kDebug;
  log_options.stderr_level = obs::LogLevel::kOff;
  log_options.file_path = log_path;
  ASSERT_TRUE(obs::Logger::Global().Configure(log_options).ok());

  ASSERT_TRUE(Failpoints::Global().Configure("io.col.chunk=corrupt*1").ok());
  obs::RunManifestBuilder manifest;
  manifest.SetTool("telemetry_chaos");
  Status failed = Status::OK();
  {
    obs::RunManifestBuilder::StageTimer stage(&manifest, "read_chunks");
    const auto reader = storage::HometsReader::Open(path);
    if (reader.ok()) {
      const auto read = reader->ReadGateway(0);
      ASSERT_FALSE(read.ok());
      failed = read.status();
    } else {
      failed = reader.status();
    }
    manifest.MarkFailed("read_chunks", failed);
  }

  const std::string manifest_path =
      testing::TempDir() + "/chaos_manifest_col.json";
  ASSERT_TRUE(manifest.WriteJson(manifest_path).ok());
  const JsonValue doc = ReadManifest(manifest_path);
  EXPECT_EQ(doc.StringOr("outcome", ""), "failure");
  EXPECT_EQ(doc.StringOr("failed_stage", ""), "read_chunks");
  const JsonValue* status = doc.Find("status");
  ASSERT_NE(status, nullptr);
  EXPECT_EQ(status->StringOr("code", ""), "IoError");

  // Reset the global logger to defaults before leaving the test, then check
  // the JSONL narration that landed while the fault was armed.
  obs::Logger::Global().Drain();
  ASSERT_TRUE(obs::Logger::Global().Configure(obs::LoggerOptions{}).ok());
  std::ifstream log_in(log_path);
  std::string line;
  bool every_line_parses = true;
  size_t lines = 0;
  while (std::getline(log_in, line)) {
    ++lines;
    if (!ParseJson(line).ok()) every_line_parses = false;
  }
  EXPECT_GT(lines, 0u);
  EXPECT_TRUE(every_line_parses);
  std::remove(path.c_str());
  std::remove(log_path.c_str());
  std::remove(manifest_path.c_str());
}

// Cancellation-style failpoint statuses map to the `cancelled` outcome so
// an orchestrator can tell a killed shard from a broken one.
TEST_F(TelemetryChaosTest, DeadlineFailureReadsAsCancelled) {
  obs::RunManifestBuilder manifest;
  manifest.MarkFailed("engine",
                      Status::DeadlineExceeded("engine exceeded deadline"));
  const std::string path = testing::TempDir() + "/chaos_manifest_cancel.json";
  ASSERT_TRUE(manifest.WriteJson(path).ok());
  const JsonValue doc = ReadManifest(path);
  EXPECT_EQ(doc.StringOr("outcome", ""), "cancelled");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace homets
