#include "obs/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "core/profiling.h"

namespace homets::obs {
namespace {

// Install/uninstall around each test body so a crashed expectation can't
// leave a dangling global session for later tests.
class SessionGuard {
 public:
  explicit SessionGuard(TraceSession* session) {
    InstallGlobalTraceSession(session);
  }
  ~SessionGuard() { InstallGlobalTraceSession(nullptr); }
};

TEST(ScopedSpanTest, NoSessionNoSinkIsANoOp) {
  InstallGlobalTraceSession(nullptr);
  ScopedSpan span("orphan");  // must not crash or record anywhere
  EXPECT_EQ(GlobalTraceSession(), nullptr);
}

TEST(ScopedSpanTest, RecordsIntoInstalledSession) {
  TraceSession session;
  {
    SessionGuard guard(&session);
    ScopedSpan span("unit.work");
  }
  ASSERT_EQ(session.size(), 1u);
  const TraceEvent event = session.Events()[0];
  EXPECT_EQ(event.name, "unit.work");
  EXPECT_EQ(event.category, "homets");
  EXPECT_GE(event.ts_us, 0);
  EXPECT_GE(event.dur_us, 0);
  EXPECT_EQ(event.depth, 0u);
}

TEST(ScopedSpanTest, NestedSpansCarryIncreasingDepth) {
  TraceSession session;
  {
    SessionGuard guard(&session);
    ScopedSpan outer("outer");
    {
      ScopedSpan middle("middle");
      ScopedSpan inner("inner");
    }
    ScopedSpan sibling("sibling");
  }
  ASSERT_EQ(session.size(), 4u);
  const auto events = session.Events();
  const auto depth_of = [&](const std::string& name) {
    const auto it = std::find_if(
        events.begin(), events.end(),
        [&](const TraceEvent& e) { return e.name == name; });
    EXPECT_NE(it, events.end()) << name;
    return it == events.end() ? ~0u : it->depth;
  };
  EXPECT_EQ(depth_of("outer"), 0u);
  EXPECT_EQ(depth_of("middle"), 1u);
  EXPECT_EQ(depth_of("inner"), 2u);
  EXPECT_EQ(depth_of("sibling"), 1u);  // reopened under outer only
}

TEST(ScopedSpanTest, ThreadsGetDistinctDenseIds) {
  TraceSession session;
  {
    SessionGuard guard(&session);
    std::vector<std::thread> threads;
    for (int t = 0; t < 3; ++t) {
      threads.emplace_back([] { ScopedSpan span("worker.step"); });
    }
    for (auto& t : threads) t.join();
  }
  ASSERT_EQ(session.size(), 3u);
  std::vector<uint32_t> tids;
  for (const auto& e : session.Events()) tids.push_back(e.tid);
  std::sort(tids.begin(), tids.end());
  EXPECT_EQ(std::unique(tids.begin(), tids.end()), tids.end())
      << "each thread must get its own trace id";
}

TEST(ScopedSpanTest, ReportsToSinkWithoutSession) {
  InstallGlobalTraceSession(nullptr);
  core::PhaseTimings timings;
  { ScopedSpan span("phase.a", &timings); }
  EXPECT_GE(timings.TotalNs("phase.a"), 0u);
  EXPECT_EQ(timings.phases().count("phase.a"), 1u);
}

TEST(TraceSessionTest, ChromeJsonIsWellFormed) {
  TraceSession session;
  {
    SessionGuard guard(&session);
    ScopedSpan outer("outer \"quoted\"\\");
    ScopedSpan inner("inner");
  }
  const std::string json = session.ToChromeJson();
  EXPECT_EQ(json.find("{\"traceEvents\""), 0u) << json;
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"pid\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos)
      << "span names must be JSON-escaped: " << json;
  int braces = 0, brackets = 0;
  bool in_string = false;
  bool escaped = false;
  for (const char c : json) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (c == '\\') {
      escaped = true;
      continue;
    }
    if (c == '"') in_string = !in_string;
    if (in_string) continue;
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
    ASSERT_GE(braces, 0);
    ASSERT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_FALSE(in_string);
}

TEST(TraceSessionTest, ConcurrentAddsAllArrive) {
  TraceSession session;
  {
    SessionGuard guard(&session);
    constexpr int kThreads = 4;
    constexpr int kPerThread = 500;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([] {
        for (int i = 0; i < kPerThread; ++i) ScopedSpan span("burst");
      });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(session.size(), 4u * 500u);
  }
}

TEST(PhaseTimingsTest, AdapterAccumulatesAndFeedsTrace) {
  // The ScopedPhaseTimer path must hit both destinations: the PhaseTimings
  // sink and the installed trace session, under the same phase name.
  TraceSession session;
  core::PhaseTimings timings;
  {
    SessionGuard guard(&session);
    core::ScopedPhaseTimer timer(&timings, "engine.prepare");
  }
  EXPECT_EQ(timings.phases().size(), 1u);
  ASSERT_EQ(session.size(), 1u);
  EXPECT_EQ(session.Events()[0].name, "engine.prepare");
  EXPECT_NE(timings.Report().find("engine.prepare"), std::string::npos);
}

TEST(PhaseTimingsTest, ConcurrentRecordSumsExactly) {
  core::PhaseTimings timings;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&timings] {
      for (int i = 0; i < kPerThread; ++i) timings.Record("phase", 3);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(timings.TotalNs("phase"),
            static_cast<uint64_t>(kThreads) * kPerThread * 3);
}

}  // namespace
}  // namespace homets::obs
