#include "obs/progress.h"

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/log.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"

namespace homets::obs {
namespace {

TEST(ProgressTrackerTest, StagePointersAreStableAndNamed) {
  ProgressTracker tracker;
  ProgressTracker::Stage* a = tracker.GetStage("read");
  ProgressTracker::Stage* b = tracker.GetStage("mine");
  EXPECT_EQ(tracker.GetStage("read"), a);
  EXPECT_EQ(a->name(), "read");
  EXPECT_NE(a, b);
}

TEST(ProgressTrackerTest, TicksAccumulateAndFinishSnapsToTotal) {
  ProgressTracker tracker;
  ProgressTracker::Stage* stage = tracker.GetStage("read");
  stage->AddTotal(10);
  stage->Tick(3);
  stage->Tick();
  EXPECT_EQ(stage->done(), 4u);
  EXPECT_EQ(stage->total(), 10u);
  EXPECT_FALSE(stage->finished());
  stage->Finish();
  EXPECT_TRUE(stage->finished());
  EXPECT_EQ(stage->done(), 10u);
}

TEST(ProgressTrackerTest, SnapshotPreservesRegistrationOrder) {
  ProgressTracker tracker;
  tracker.GetStage("one")->Tick();
  tracker.GetStage("two")->AddTotal(5);
  tracker.GetStage("three");
  const std::vector<ProgressTracker::StageSnapshot> snap = tracker.Snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "one");
  EXPECT_EQ(snap[1].name, "two");
  EXPECT_EQ(snap[2].name, "three");
  EXPECT_EQ(snap[0].done, 1u);
  EXPECT_EQ(snap[1].total, 5u);
  // No total and no second tick: rate and ETA stay unknown.
  EXPECT_EQ(snap[0].eta_sec, -1.0);
}

TEST(ProgressTrackerTest, ConcurrentTicksAreLossless) {
  ProgressTracker tracker;
  ProgressTracker::Stage* stage = tracker.GetStage("parallel");
  constexpr int kThreads = 4;
  constexpr int kTicks = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([stage] {
      for (int i = 0; i < kTicks; ++i) stage->Tick();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(stage->done(), static_cast<uint64_t>(kThreads) * kTicks);
}

TEST(ProgressTrackerTest, HeartbeatUpdatesGaugesAndCountsBeats) {
  auto& registry = MetricsRegistry::Global();
  const uint64_t beats_before =
      registry.GetCounter(kProgressHeartbeats)->Value();

  ProgressTracker tracker;
  ProgressTracker::Stage* stage = tracker.GetStage("hb");
  stage->AddTotal(8);
  stage->Tick(2);
  tracker.EmitHeartbeat();

  EXPECT_EQ(registry.GetCounter(kProgressHeartbeats)->Value(),
            beats_before + 1);
  EXPECT_EQ(registry.GetGauge(kProgressUnitsDone)->Value(), 2);
  EXPECT_EQ(registry.GetGauge(kProgressUnitsTotal)->Value(), 8);
  EXPECT_EQ(registry.GetGauge(kProgressActiveStages)->Value(), 1);

  stage->Finish();
  tracker.EmitHeartbeat();
  EXPECT_EQ(registry.GetGauge(kProgressActiveStages)->Value(), 0);
  EXPECT_EQ(registry.GetGauge(kProgressUnitsDone)->Value(), 8);
}

TEST(ProgressTrackerTest, StartStopHeartbeatIsClean) {
  ProgressTracker tracker;
  tracker.GetStage("thread")->AddTotal(1);
  tracker.StartHeartbeat(3600.0);  // never fires mid-test on its own
  tracker.StartHeartbeat(3600.0);  // second start is a no-op
  tracker.StopHeartbeat();         // emits one final heartbeat
  tracker.StopHeartbeat();         // idempotent
}

// The instrumentation seam: without an installed tracker the accessor is
// null (library ticks are skipped); with one, the same call resolves.
TEST(ProgressStageTest, GlobalAccessorIsNullptrSafe) {
  InstallGlobalProgressTracker(nullptr);
  EXPECT_EQ(ProgressStage("anything"), nullptr);
  ProgressTracker tracker;
  InstallGlobalProgressTracker(&tracker);
  ProgressTracker::Stage* stage = ProgressStage("wired");
  ASSERT_NE(stage, nullptr);
  stage->Tick();
  EXPECT_EQ(tracker.GetStage("wired")->done(), 1u);
  InstallGlobalProgressTracker(nullptr);
  EXPECT_EQ(ProgressStage("wired"), nullptr);
}

}  // namespace
}  // namespace homets::obs
