#include "obs/log.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "obs/trace.h"

namespace homets::obs {
namespace {

std::string TempPath(const std::string& stem) {
  return testing::TempDir() + "/" + stem;
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// --- level names ----------------------------------------------------------

TEST(LogLevelTest, NamesRoundTripThroughParse) {
  for (const LogLevel level :
       {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn, LogLevel::kError,
        LogLevel::kOff}) {
    LogLevel parsed = LogLevel::kDebug;
    ASSERT_TRUE(ParseLogLevel(LogLevelName(level), &parsed))
        << LogLevelName(level);
    EXPECT_EQ(parsed, level);
  }
  LogLevel parsed = LogLevel::kError;
  EXPECT_FALSE(ParseLogLevel("verbose", &parsed));
  EXPECT_EQ(parsed, LogLevel::kError);  // untouched on failure
}

// --- token bucket ---------------------------------------------------------

// The limiter is a pure state machine over the timestamps it is shown:
// identical call sequences must give identical verdicts.
TEST(TokenBucketTest, DeterministicOverIdenticalSequences) {
  const std::vector<int64_t> times = {0,       1000,    2000,   3000,
                                      500000,  600000,  700000, 1500000,
                                      1500001, 3000000, 3000002};
  std::vector<bool> first;
  {
    TokenBucket bucket(3.0, 1.0);
    for (const int64_t t : times) first.push_back(bucket.Allow(t));
  }
  std::vector<bool> second;
  {
    TokenBucket bucket(3.0, 1.0);
    for (const int64_t t : times) second.push_back(bucket.Allow(t));
  }
  EXPECT_EQ(first, second);
}

TEST(TokenBucketTest, BurstThenRefill) {
  TokenBucket bucket(2.0, 1.0);  // burst of 2, then 1 token/sec
  EXPECT_TRUE(bucket.Allow(0));
  EXPECT_TRUE(bucket.Allow(0));
  EXPECT_FALSE(bucket.Allow(0));        // burst spent
  EXPECT_FALSE(bucket.Allow(500000));   // +0.5 token: still short
  EXPECT_TRUE(bucket.Allow(1000000));   // +0.5 more: one full token
  EXPECT_FALSE(bucket.Allow(1000001));  // spent again
}

TEST(TokenBucketTest, RefillCapsAtCapacity) {
  TokenBucket bucket(2.0, 1.0);
  EXPECT_TRUE(bucket.Allow(0));
  // A decade of idle time must not bank more than `capacity` tokens.
  EXPECT_TRUE(bucket.Allow(10'000'000'000));
  EXPECT_TRUE(bucket.Allow(10'000'000'000));
  EXPECT_FALSE(bucket.Allow(10'000'000'000));
}

// --- record formatting ----------------------------------------------------

LogRecord SampleRecord() {
  LogRecord record;
  record.ts_us = 1234567;
  record.level = LogLevel::kWarn;
  record.component = "io.csv";
  record.message = "rows quarantined";
  record.span_id = 42;
  record.tid = 7;
  record.fields.push_back(LogField::Uint("rows", 3));
  record.fields.push_back(LogField::Double("ratio", 0.25));
  record.fields.push_back(LogField::Bool("repaired", true));
  record.fields.push_back(LogField::Str("path", "a \"b\"\n.csv"));
  record.fields.push_back(LogField::Int("delta", -2));
  return record;
}

// The JSONL line must parse with the project's own JSON parser and hand
// back every header key and typed field intact.
TEST(LogFormatTest, JsonLineRoundTripsThroughCommonJson) {
  const std::string line = FormatJsonLine(SampleRecord());
  const auto doc = ParseJson(line);
  ASSERT_TRUE(doc.ok()) << line;
  EXPECT_EQ(doc->NumberOr("ts_us", -1), 1234567);
  EXPECT_EQ(doc->StringOr("level", ""), "warn");
  EXPECT_EQ(doc->StringOr("component", ""), "io.csv");
  EXPECT_EQ(doc->StringOr("msg", ""), "rows quarantined");
  EXPECT_EQ(doc->NumberOr("span", -1), 42);
  EXPECT_EQ(doc->NumberOr("tid", -1), 7);
  EXPECT_EQ(doc->NumberOr("rows", -1), 3);
  EXPECT_EQ(doc->NumberOr("ratio", -1), 0.25);
  const JsonValue* repaired = doc->Find("repaired");
  ASSERT_NE(repaired, nullptr);
  EXPECT_TRUE(repaired->is_bool());
  EXPECT_TRUE(repaired->bool_value());
  EXPECT_EQ(doc->StringOr("path", ""), "a \"b\"\n.csv");
  EXPECT_EQ(doc->NumberOr("delta", 0), -2);
}

TEST(LogFormatTest, HumanLineCarriesLevelClockAndSpan) {
  const std::string line = FormatHumanLine(SampleRecord());
  EXPECT_EQ(line.rfind("W 1.234567 io.csv: rows quarantined", 0), 0u) << line;
  EXPECT_NE(line.find("rows=3"), std::string::npos) << line;
  EXPECT_NE(line.find("[span 42]"), std::string::npos) << line;
}

// --- logger ---------------------------------------------------------------

LoggerOptions QuietFileOptions(const std::string& path) {
  LoggerOptions options;
  options.min_level = LogLevel::kDebug;
  options.stderr_level = LogLevel::kOff;  // keep test output clean
  options.file_path = path;
  return options;
}

TEST(LoggerTest, RecordsLandInTheFileSinkOnDrain) {
  const std::string path = TempPath("logger_basic.jsonl");
  Logger logger;
  ASSERT_TRUE(logger.Configure(QuietFileOptions(path)).ok());
  logger.Log(LogLevel::kInfo, "test", "first",
             {LogField::Uint("n", 1)});
  logger.Log(LogLevel::kDebug, "test", "second");
  EXPECT_EQ(logger.Drain(), 2u);
  logger.Close();

  std::ifstream in(path);
  std::string line;
  size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_TRUE(ParseJson(line).ok()) << line;
  }
  EXPECT_EQ(lines, 2u);
  std::remove(path.c_str());
}

TEST(LoggerTest, MinLevelFiltersAtTheCallSite) {
  const std::string path = TempPath("logger_filter.jsonl");
  LoggerOptions options = QuietFileOptions(path);
  options.min_level = LogLevel::kWarn;
  Logger logger;
  ASSERT_TRUE(logger.Configure(options).ok());
  logger.Log(LogLevel::kDebug, "test", "invisible");
  logger.Log(LogLevel::kInfo, "test", "invisible");
  logger.Log(LogLevel::kError, "test", "visible");
  logger.Drain();
  logger.Close();
  EXPECT_EQ(logger.records_logged(), 1u);
  const std::string text = ReadAll(path);
  EXPECT_EQ(text.find("invisible"), std::string::npos) << text;
  EXPECT_NE(text.find("visible"), std::string::npos) << text;
  std::remove(path.c_str());
}

// Deterministic suppression: LogAt drives the rate limiter with explicit
// timestamps, so the accept/suppress pattern is a pure function of them.
TEST(LoggerTest, RateLimiterSuppressionIsDeterministic) {
  const auto run = [](Logger& logger) {
    std::vector<uint64_t> logged_after;
    for (int i = 0; i < 8; ++i) {
      logger.LogAt(i * 1000, LogLevel::kInfo, "noisy", "tick");
      logged_after.push_back(logger.records_logged());
    }
    // One second later a refilled token admits exactly one more record.
    logger.LogAt(2'000'000, LogLevel::kInfo, "noisy", "tock");
    logged_after.push_back(logger.records_logged());
    return logged_after;
  };

  LoggerOptions options;
  options.min_level = LogLevel::kDebug;
  options.stderr_level = LogLevel::kOff;
  options.rate_capacity = 3.0;
  options.rate_per_sec = 1.0;

  Logger first;
  ASSERT_TRUE(first.Configure(options).ok());
  Logger second;
  ASSERT_TRUE(second.Configure(options).ok());
  const auto a = run(first);
  const auto b = run(second);
  EXPECT_EQ(a, b);
  // Burst of 3 accepted, the rest of the first 8 suppressed, then 1 more.
  EXPECT_EQ(a.back(), 4u);
  EXPECT_EQ(first.records_suppressed(), 5u);
  first.Drain();
  second.Drain();
}

// Distinct (component, severity) keys rate-limit independently.
TEST(LoggerTest, RateLimiterKeysAreIndependent) {
  LoggerOptions options;
  options.min_level = LogLevel::kDebug;
  options.stderr_level = LogLevel::kOff;
  options.rate_capacity = 1.0;
  options.rate_per_sec = 0.0001;
  Logger logger;
  ASSERT_TRUE(logger.Configure(options).ok());
  logger.LogAt(0, LogLevel::kInfo, "alpha", "x");
  logger.LogAt(0, LogLevel::kInfo, "alpha", "x");  // suppressed
  logger.LogAt(0, LogLevel::kWarn, "alpha", "x");  // other severity: admitted
  logger.LogAt(0, LogLevel::kInfo, "beta", "x");   // other component: admitted
  EXPECT_EQ(logger.records_logged(), 3u);
  EXPECT_EQ(logger.records_suppressed(), 1u);
  logger.Drain();
}

// A ring smaller than the burst drops the overflow and counts it; nothing
// crashes and the drained records are intact.
TEST(LoggerTest, RingOverflowDropsAndCounts) {
  const std::string path = TempPath("logger_overflow.jsonl");
  Logger logger(4);
  LoggerOptions options = QuietFileOptions(path);
  options.rate_capacity = 1000.0;  // rate limiter out of the way
  options.rate_per_sec = 1000.0;
  ASSERT_TRUE(logger.Configure(options).ok());
  for (int i = 0; i < 10; ++i) {
    logger.Log(LogLevel::kInfo, "test", "burst");
  }
  EXPECT_GT(logger.records_dropped(), 0u);
  const size_t drained = logger.Drain();
  EXPECT_EQ(drained + logger.records_dropped(), 10u);
  logger.Close();
  std::remove(path.c_str());
}

TEST(LoggerTest, ConfigureFailsCleanlyOnUnopenablePath) {
  Logger logger;
  LoggerOptions options;
  options.file_path = testing::TempDir() + "/no/such/dir/x.jsonl";
  const Status status = logger.Configure(options);
  EXPECT_EQ(status.code(), StatusCode::kIoError);
}

// Records carry the innermost open trace span, which is what lets a JSONL
// line join against the Chrome trace written by the same run.
TEST(LoggerTest, RecordsCarryTheCurrentSpanId) {
  const std::string path = TempPath("logger_span.jsonl");
  Logger logger;
  ASSERT_TRUE(logger.Configure(QuietFileOptions(path)).ok());
  TraceSession session;
  InstallGlobalTraceSession(&session);
  {
    ScopedSpan span("log_test.outer");
    logger.Log(LogLevel::kInfo, "test", "inside");
  }
  InstallGlobalTraceSession(nullptr);
  logger.Log(LogLevel::kInfo, "test", "outside");
  logger.Drain();
  logger.Close();

  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  const auto inside = ParseJson(line);
  ASSERT_TRUE(inside.ok());
  EXPECT_GT(inside->NumberOr("span", 0), 0) << line;
  ASSERT_TRUE(std::getline(in, line));
  const auto outside = ParseJson(line);
  ASSERT_TRUE(outside.ok());
  EXPECT_EQ(outside->NumberOr("span", -1), 0) << line;
  std::remove(path.c_str());
}

// Concurrent producers against one drainer: every record is either emitted
// or counted as dropped, never lost silently.
TEST(LoggerTest, ConcurrentProducersAccountForEveryRecord) {
  const std::string path = TempPath("logger_mpsc.jsonl");
  Logger logger(1024);
  LoggerOptions options = QuietFileOptions(path);
  options.rate_capacity = 1e9;  // accounting test, not a rate test
  options.rate_per_sec = 1e9;
  ASSERT_TRUE(logger.Configure(options).ok());

  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  size_t drained = 0;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&logger, t] {
      for (int i = 0; i < kPerThread; ++i) {
        logger.Log(LogLevel::kInfo, "mpsc", "m",
                   {LogField::Int("t", t), LogField::Int("i", i)});
      }
    });
  }
  for (auto& thread : threads) thread.join();
  drained += logger.Drain();
  logger.Close();

  EXPECT_EQ(logger.records_logged(),
            static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(drained + logger.records_dropped(),
            static_cast<size_t>(kThreads * kPerThread));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace homets::obs
