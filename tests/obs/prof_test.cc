// Execution-profiler contract tests: the common/prof_hooks.h accumulators
// written by Mutex / ParallelFor hot paths, the obs/prof snapshot + publish
// surface, and the StageTimer resource accounting in run manifests. Runs
// under the `prof` ctest label, including a TSan pass (run_all_gates.sh), so
// every assertion here must be race-free against the instrumented paths.
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/mutex.h"
#include "common/prof_hooks.h"
#include "common/thread_pool.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/prof.h"
#include "obs/report.h"

namespace homets::obs {
namespace {

// Every test starts from zeroed accumulators with the profiler ON and leaves
// it OFF, so test order cannot leak instrumentation into other suites.
class ProfTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ResetProfCounters();
    EnableProfiler(true);
  }
  void TearDown() override {
    EnableProfiler(false);
    EnableAllocTally(false);
    ResetProfCounters();
  }
};

TEST_F(ProfTest, ContendedLockIsRecordedWithItsName) {
  Mutex mu("prof_test.contended");
  std::atomic<bool> held{false};
  std::thread holder([&] {
    MutexLock lock(&mu);
    held.store(true, std::memory_order_release);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  });
  while (!held.load(std::memory_order_acquire)) std::this_thread::yield();
  mu.Lock();  // must block: the holder sleeps while holding
  mu.Unlock();
  holder.join();

  const ProfSnapshot snap = CaptureProfSnapshot();
  EXPECT_GE(snap.contended_locks, 1u);
  EXPECT_GT(snap.lock_wait_ns, 0u);
  bool found = false;
  for (const auto& entry : snap.locks) {
    if (entry.name == "prof_test.contended") {
      found = true;
      EXPECT_GE(entry.contended, 1u);
      EXPECT_GT(entry.wait_ns, 0u);
    }
  }
  EXPECT_TRUE(found) << "named slot missing from snapshot";
}

TEST_F(ProfTest, UncontendedLockRecordsNothing) {
  Mutex mu("prof_test.uncontended");
  for (int i = 0; i < 100; ++i) {
    MutexLock lock(&mu);
  }
  EXPECT_EQ(CaptureProfSnapshot().contended_locks, 0u);
}

TEST_F(ProfTest, DisabledProfilerRecordsNothing) {
  EnableProfiler(false);
  Mutex mu("prof_test.disabled");
  std::atomic<bool> held{false};
  std::thread holder([&] {
    MutexLock lock(&mu);
    held.store(true, std::memory_order_release);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  });
  while (!held.load(std::memory_order_acquire)) std::this_thread::yield();
  mu.Lock();
  mu.Unlock();
  holder.join();
  ParallelFor(64, 4, 1, [](size_t, size_t, int) {});

  const ProfSnapshot snap = CaptureProfSnapshot();
  EXPECT_EQ(snap.contended_locks, 0u);
  EXPECT_EQ(snap.pool_blocks, 0u);
  EXPECT_EQ(snap.pool_loops, 0u);
}

TEST_F(ProfTest, ParallelForAccountsBlocksPerWorker) {
  std::atomic<uint64_t> sum{0};
  ParallelFor(128, 4, 1, [&](size_t begin, size_t end, int) {
    uint64_t local = 0;
    for (size_t i = begin; i < end; ++i) local += i;
    sum.fetch_add(local, std::memory_order_relaxed);
  });

  const ProfSnapshot snap = CaptureProfSnapshot();
  EXPECT_EQ(sum.load(), 128u * 127u / 2u);
  EXPECT_GE(snap.pool_loops, 1u);
  EXPECT_GE(snap.pool_blocks, 128u);
  EXPECT_FALSE(snap.workers.empty());
  uint64_t worker_blocks = 0;
  for (const auto& w : snap.workers) {
    EXPECT_GE(w.worker, 0);
    EXPECT_LT(w.worker, prof::kPoolProfWorkers);
    worker_blocks += w.blocks;
  }
  EXPECT_EQ(worker_blocks, snap.pool_blocks)
      << "per-worker blocks must sum to the total (all workers fit the table)";
}

TEST_F(ProfTest, ParallelForStatusFeedsTheSameAccumulators) {
  const Status status =
      ParallelForStatus(32, 2, 4, nullptr,
                        [](size_t, size_t, int) { return Status::OK(); });
  ASSERT_TRUE(status.ok());
  const ProfSnapshot snap = CaptureProfSnapshot();
  EXPECT_GE(snap.pool_loops, 1u);
  EXPECT_GE(snap.pool_blocks, 8u);  // 32 items / block 4
}

TEST_F(ProfTest, CaptureRusageReportsLiveFigures) {
  const ResourceUsage usage = CaptureRusage();
#if defined(__unix__) || defined(__APPLE__)
  EXPECT_GT(usage.max_rss_bytes, 0u);
  EXPECT_GE(usage.user_seconds + usage.sys_seconds, 0.0);
#else
  EXPECT_EQ(usage.max_rss_bytes, 0u);
#endif
}

TEST_F(ProfTest, AllocTallyCountsHeapTraffic) {
  if (!AllocTallyAvailable()) {
    GTEST_SKIP() << "operator-new replacement compiled out (sanitizer build)";
  }
  EnableAllocTally(true);
  const uint64_t bytes_before =
      prof::g_alloc_bytes.load(std::memory_order_relaxed);
  {
    // Volatile pointer defeats heap elision of an unused allocation.
    char* volatile block = new char[4096];
    delete[] block;
  }
  EnableAllocTally(false);
  const uint64_t bytes_after =
      prof::g_alloc_bytes.load(std::memory_order_relaxed);
  EXPECT_GE(bytes_after - bytes_before, 4096u);
}

TEST_F(ProfTest, PublishProfMetricsIsMonotonicAndIdempotent) {
  prof::RecordLockContention("prof_test.publish", 5000);
  prof::RecordLockContention("prof_test.publish", 7000);
  PublishProfMetrics();
  Counter* contended =
      MetricsRegistry::Global().GetCounter(kProfContendedLocks);
  Counter* wait_us = MetricsRegistry::Global().GetCounter(kProfLockWaitUs);
  // The counters carry the published prefix of the monotonic accumulator:
  // after a publish they are at least the accumulator total, and publishing
  // again with no new events must not double-count.
  EXPECT_GE(contended->Value(),
            prof::g_lock_prof.contended_total.load(std::memory_order_relaxed));
  const uint64_t contended_once = contended->Value();
  const uint64_t wait_once = wait_us->Value();
  PublishProfMetrics();
  EXPECT_EQ(contended->Value(), contended_once);
  EXPECT_EQ(wait_us->Value(), wait_once);
}

TEST_F(ProfTest, ResetZeroesEveryAccumulator) {
  prof::RecordLockContention("prof_test.reset", 100);
  prof::RecordPoolBlock(0, 10, 20);
  prof::RecordPoolLoop(2, 100, 50);
  ResetProfCounters();
  const ProfSnapshot snap = CaptureProfSnapshot();
  EXPECT_EQ(snap.contended_locks, 0u);
  EXPECT_EQ(snap.lock_wait_ns, 0u);
  EXPECT_EQ(snap.pool_loops, 0u);
  EXPECT_EQ(snap.pool_blocks, 0u);
  EXPECT_EQ(snap.pool_busy_ns, 0u);
  for (const auto& entry : snap.locks) EXPECT_EQ(entry.contended, 0u);
}

TEST_F(ProfTest, ProfReportJsonCarriesTheSchemaAndSections) {
  prof::RecordLockContention("prof_test.report", 1234);
  const std::string json = ProfReportJson();
  EXPECT_NE(json.find("\"schema\": \"homets.prof_report\""),
            std::string::npos)
      << json;
  for (const char* key :
       {"\"profiler_enabled\"", "\"rusage\"", "\"locks\"", "\"pool\"",
        "\"alloc\"", "\"max_rss_bytes\"", "\"contended\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
  EXPECT_NE(json.find("prof_test.report"), std::string::npos) << json;
}

TEST_F(ProfTest, StageTimerRecordsResourcesIntoTheManifest) {
  RunManifestBuilder builder;
  builder.SetTool("prof_test");
  builder.SetThreads(1, 1);
  {
    RunManifestBuilder::StageTimer timer(&builder, "burn");
    // Burn enough CPU for getrusage ticks (1-4 ms) to resolve.
    volatile double x = 1.0;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(30);
    while (std::chrono::steady_clock::now() < deadline) x = x * 1.0000001;
    timer.set_units(7);
  }
  const std::string json = builder.ToJson();
  EXPECT_NE(json.find("\"stage\": \"burn\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"resources\""), std::string::npos) << json;
  for (const char* key :
       {"\"cpu_user_seconds\"", "\"cpu_sys_seconds\"", "\"cpu_seconds\"",
        "\"max_rss_bytes\"", "\"minor_faults\"", "\"major_faults\"",
        "\"alloc_bytes\"", "\"parallel_efficiency\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
}

}  // namespace
}  // namespace homets::obs
