#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace homets::obs {
namespace {

std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) out.push_back(line);
  return out;
}

bool HasLine(const std::string& text, const std::string& wanted) {
  for (const auto& line : Lines(text)) {
    if (line == wanted) return true;
  }
  return false;
}

TEST(PrometheusExportTest, ManglesDottedNamesToUnderscores) {
  MetricsRegistry registry;
  registry.GetCounter("homets.engine.pairs_computed")->Increment(3);
  const std::string text = registry.ExportPrometheus();
  EXPECT_TRUE(HasLine(text, "# TYPE homets_engine_pairs_computed counter"))
      << text;
  EXPECT_TRUE(HasLine(text, "homets_engine_pairs_computed 3")) << text;
  // The dotted spelling must not leak into the exposition.
  EXPECT_EQ(text.find("homets.engine"), std::string::npos) << text;
}

TEST(PrometheusExportTest, GaugesKeepSignedValues) {
  MetricsRegistry registry;
  registry.GetGauge("homets.threadpool.queue_depth")->Set(-2);
  const std::string text = registry.ExportPrometheus();
  EXPECT_TRUE(HasLine(text, "# TYPE homets_threadpool_queue_depth gauge"))
      << text;
  EXPECT_TRUE(HasLine(text, "homets_threadpool_queue_depth -2")) << text;
}

TEST(PrometheusExportTest, HistogramBucketsAreCumulativeAndEndAtInf) {
  MetricsRegistry registry;
  Histogram* h =
      registry.GetHistogram("homets.io.read_us", {1.0, 10.0, 100.0});
  for (const double v : {0.5, 1.0, 5.0, 10.0, 50.0, 100.0, 1000.0}) {
    h->Observe(v);
  }
  const std::string text = registry.ExportPrometheus();

  EXPECT_TRUE(HasLine(text, "# TYPE homets_io_read_us histogram")) << text;
  // Per-bound counts are 2/2/2/1 (inclusive upper bounds); the exposition
  // must present them cumulatively, closing with the mandatory +Inf bucket
  // that equals _count.
  EXPECT_TRUE(HasLine(text, "homets_io_read_us_bucket{le=\"1\"} 2")) << text;
  EXPECT_TRUE(HasLine(text, "homets_io_read_us_bucket{le=\"10\"} 4")) << text;
  EXPECT_TRUE(HasLine(text, "homets_io_read_us_bucket{le=\"100\"} 6"))
      << text;
  EXPECT_TRUE(HasLine(text, "homets_io_read_us_bucket{le=\"+Inf\"} 7"))
      << text;
  EXPECT_TRUE(HasLine(text, "homets_io_read_us_count 7")) << text;

  // _sum carries the exact total of the observations.
  bool found_sum = false;
  for (const auto& line : Lines(text)) {
    if (line.rfind("homets_io_read_us_sum ", 0) == 0) {
      found_sum = true;
      EXPECT_DOUBLE_EQ(std::stod(line.substr(line.find(' ') + 1)), 1166.5);
    }
  }
  EXPECT_TRUE(found_sum) << text;
}

TEST(PrometheusExportTest, ParsedBucketsSumToCount) {
  // Generic exposition-consumer check: for every histogram, the +Inf bucket,
  // the _count sample, and the last cumulative bucket must agree.
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("homets.obs.flush_write_us");
  for (int i = 0; i < 257; ++i) h->Observe(static_cast<double>(i * i));
  const std::string text = registry.ExportPrometheus();

  uint64_t inf_bucket = 0;
  uint64_t count = 0;
  for (const auto& line : Lines(text)) {
    if (line.rfind("homets_obs_flush_write_us_bucket{le=\"+Inf\"} ", 0) == 0) {
      inf_bucket = std::stoull(line.substr(line.find("} ") + 2));
    } else if (line.rfind("homets_obs_flush_write_us_count ", 0) == 0) {
      count = std::stoull(line.substr(line.find(' ') + 1));
    }
  }
  EXPECT_EQ(inf_bucket, 257u);
  EXPECT_EQ(count, 257u);
}

TEST(PrometheusExportTest, LeadingDigitNamesGetUnderscorePrefix) {
  // Prometheus metric names must not start with a digit; the mangler
  // prefixes an underscore rather than emitting an invalid name.
  MetricsRegistry registry;
  registry.GetCounter("9lives")->Increment();
  const std::string text = registry.ExportPrometheus();
  EXPECT_TRUE(HasLine(text, "_9lives 1")) << text;
}

TEST(PrometheusExportTest, EmptyRegistryExportsNothing) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.ExportPrometheus(), "");
}

TEST(PrometheusExportTest, ZeroCountHistogramRendersBucketsButNoPercentiles) {
  // A registered histogram nobody observed into still renders a complete
  // family (all-zero cumulative buckets, the mandatory +Inf bucket, _sum,
  // _count) — but no derived percentile gauges: an interpolated quantile of
  // nothing is noise, not data.
  MetricsRegistry registry;
  registry.GetHistogram("homets.io.read_us", {1.0, 10.0});
  const std::string text = registry.ExportPrometheus();
  EXPECT_TRUE(HasLine(text, "homets_io_read_us_bucket{le=\"1\"} 0")) << text;
  EXPECT_TRUE(HasLine(text, "homets_io_read_us_bucket{le=\"10\"} 0")) << text;
  EXPECT_TRUE(HasLine(text, "homets_io_read_us_bucket{le=\"+Inf\"} 0"))
      << text;
  EXPECT_TRUE(HasLine(text, "homets_io_read_us_count 0")) << text;
  EXPECT_EQ(text.find("_p50"), std::string::npos) << text;
  EXPECT_EQ(text.find("_p99"), std::string::npos) << text;
}

TEST(PrometheusExportTest, PercentileGaugesAccompanyNonEmptyHistograms) {
  MetricsRegistry registry;
  Histogram* h =
      registry.GetHistogram("homets.io.read_us", {10.0, 100.0, 1000.0});
  for (int i = 0; i < 100; ++i) h->Observe(50.0);
  const std::string text = registry.ExportPrometheus();
  EXPECT_TRUE(HasLine(text, "# TYPE homets_io_read_us_p50 gauge")) << text;
  EXPECT_TRUE(HasLine(text, "# TYPE homets_io_read_us_p95 gauge")) << text;
  EXPECT_TRUE(HasLine(text, "# TYPE homets_io_read_us_p99 gauge")) << text;
  // All mass sits in the (10, 100] bucket, so every percentile interpolates
  // inside it.
  for (const auto& line : Lines(text)) {
    if (line.rfind("homets_io_read_us_p", 0) == 0 &&
        line.find("# TYPE") == std::string::npos) {
      const double v = std::stod(line.substr(line.find(' ') + 1));
      EXPECT_GT(v, 10.0) << line;
      EXPECT_LE(v, 100.0) << line;
    }
  }
}

TEST(PrometheusExportTest, MismatchedBoundsReturnTheExistingHistogram) {
  // GetHistogram is get-or-create keyed on name alone: a second caller with
  // different bounds gets the registered instance, not a new family that
  // would double-export under one name.
  MetricsRegistry registry;
  Histogram* first =
      registry.GetHistogram("homets.io.read_us", {1.0, 10.0});
  Histogram* second =
      registry.GetHistogram("homets.io.read_us", {5.0, 50.0, 500.0});
  EXPECT_EQ(first, second);
  EXPECT_EQ(second->bounds(), (std::vector<double>{1.0, 10.0}));
  first->Observe(3.0);
  const std::string text = registry.ExportPrometheus();
  // Exactly one histogram family under the name, with the original bounds.
  EXPECT_TRUE(HasLine(text, "homets_io_read_us_bucket{le=\"10\"} 1")) << text;
  EXPECT_EQ(text.find("le=\"50\""), std::string::npos) << text;
}

TEST(HistogramPercentileTest, EmptyHistogramIsZero) {
  HistogramSnapshot hist;
  hist.bounds = {1.0, 10.0};
  hist.buckets = {0, 0, 0};
  hist.count = 0;
  EXPECT_EQ(HistogramPercentile(hist, 0.5), 0.0);
}

TEST(HistogramPercentileTest, InterpolatesWithinTheWinningBucket) {
  // 10 observations in (10, 20]: p50 lands halfway through the bucket.
  HistogramSnapshot hist;
  hist.bounds = {10.0, 20.0};
  hist.buckets = {0, 10, 0};
  hist.count = 10;
  EXPECT_DOUBLE_EQ(HistogramPercentile(hist, 0.5), 15.0);
  // The first bucket interpolates from a lower edge of 0.
  HistogramSnapshot low;
  low.bounds = {10.0, 20.0};
  low.buckets = {10, 0, 0};
  low.count = 10;
  EXPECT_DOUBLE_EQ(HistogramPercentile(low, 0.5), 5.0);
}

TEST(HistogramPercentileTest, OverflowBucketClampsToHighestFiniteBound) {
  HistogramSnapshot hist;
  hist.bounds = {1.0, 10.0};
  hist.buckets = {1, 0, 9};  // 90% of the mass beyond the last bound
  hist.count = 10;
  EXPECT_DOUBLE_EQ(HistogramPercentile(hist, 0.99), 10.0);
}

}  // namespace
}  // namespace homets::obs
