#include "obs/flusher.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace homets::obs {
namespace {

std::string TempPath(const std::string& stem) {
  return testing::TempDir() + "/" + stem;
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

size_t CountFlushBlocks(const std::string& text) {
  size_t count = 0;
  size_t pos = 0;
  while ((pos = text.find("# HOMETS flush seq=", pos)) != std::string::npos) {
    ++count;
    pos += 1;
  }
  return count;
}

TEST(MetricsFlusherTest, StartAndStopBracketTheRunWithFlushes) {
  MetricsRegistry registry;
  registry.GetCounter("homets.engine.pairs_computed")->Increment(11);

  MetricsFlusherOptions options;
  options.path = TempPath("flusher_bracket.prom");
  options.interval_sec = 3600.0;  // never fires mid-test
  options.registry = &registry;
  options.truncate = true;
  MetricsFlusher flusher(options);
  ASSERT_TRUE(flusher.Start().ok());
  EXPECT_TRUE(flusher.Stop().ok());

  const std::string text = ReadAll(options.path);
  // Even a run far shorter than the interval leaves the start + stop pair.
  EXPECT_EQ(CountFlushBlocks(text), 2u) << text;
  EXPECT_NE(text.find("homets_engine_pairs_computed 11"), std::string::npos)
      << text;
  std::remove(options.path.c_str());
}

TEST(MetricsFlusherTest, PeriodicFlushesAccumulateWhileRunning) {
  MetricsRegistry registry;
  MetricsFlusherOptions options;
  options.path = TempPath("flusher_periodic.prom");
  options.interval_sec = 0.02;
  options.registry = &registry;
  options.truncate = true;
  MetricsFlusher flusher(options);
  ASSERT_TRUE(flusher.Start().ok());
  // Wait until the background thread demonstrably fired on its own (start
  // flush is 1; anything beyond it came from the timer loop).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (flusher.flush_count() < 3 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(flusher.flush_count(), 3u);
  EXPECT_TRUE(flusher.Stop().ok());

  const std::string text = ReadAll(options.path);
  EXPECT_GE(CountFlushBlocks(text), 4u);  // start + >=2 periodic + stop
  // The flusher meters itself in the registry it exposes: the last block
  // must report a nonzero flush counter.
  EXPECT_NE(text.find("homets_obs_flushes"), std::string::npos) << text;
  std::remove(options.path.c_str());
}

TEST(MetricsFlusherTest, StopIsIdempotentAndRestartIsRejected) {
  MetricsRegistry registry;
  MetricsFlusherOptions options;
  options.path = TempPath("flusher_idempotent.prom");
  options.interval_sec = 3600.0;
  options.registry = &registry;
  options.truncate = true;
  MetricsFlusher flusher(options);
  ASSERT_TRUE(flusher.Start().ok());
  EXPECT_EQ(flusher.Start().code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(flusher.Stop().ok());
  EXPECT_TRUE(flusher.Stop().ok());
  std::remove(options.path.c_str());
}

TEST(MetricsFlusherTest, InvalidOptionsFailStartBeforeSpawningAThread) {
  MetricsRegistry registry;
  {
    MetricsFlusherOptions options;
    options.interval_sec = 1.0;
    options.registry = &registry;
    MetricsFlusher flusher(options);  // empty path
    EXPECT_EQ(flusher.Start().code(), StatusCode::kInvalidArgument);
  }
  {
    MetricsFlusherOptions options;
    options.path = TempPath("flusher_bad_interval.prom");
    options.interval_sec = 0.0;
    options.registry = &registry;
    MetricsFlusher flusher(options);
    EXPECT_EQ(flusher.Start().code(), StatusCode::kInvalidArgument);
  }
  {
    MetricsFlusherOptions options;
    options.path = "/nonexistent-dir/flusher.prom";
    options.interval_sec = 1.0;
    options.registry = &registry;
    MetricsFlusher flusher(options);
    // The first flush is synchronous, so an unwritable path fails Start
    // instead of erroring silently in the background.
    EXPECT_FALSE(flusher.Start().ok());
  }
}

TEST(MetricsFlusherTest, DestructorStopsARunningFlusher) {
  MetricsRegistry registry;
  MetricsFlusherOptions options;
  options.path = TempPath("flusher_dtor.prom");
  options.interval_sec = 3600.0;
  options.registry = &registry;
  options.truncate = true;
  {
    MetricsFlusher flusher(options);
    ASSERT_TRUE(flusher.Start().ok());
  }  // destructor must join the thread and write the final flush
  EXPECT_EQ(CountFlushBlocks(ReadAll(options.path)), 2u);
  std::remove(options.path.c_str());
}

}  // namespace
}  // namespace homets::obs
