#include "obs/report.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/json.h"
#include "obs/metrics.h"

namespace homets::obs {
namespace {

JsonValue Parse(const RunManifestBuilder& builder) {
  const std::string json = builder.ToJson();
  auto doc = ParseJson(json);
  EXPECT_TRUE(doc.ok()) << json;
  return doc.ok() ? *doc : JsonValue();
}

TEST(RunManifestTest, MinimalManifestCarriesSchemaAndSuccess) {
  RunManifestBuilder builder;
  builder.SetTool("homets_cli");
  builder.SetCommand("homets_cli profile x.csv");
  const JsonValue doc = Parse(builder);
  EXPECT_EQ(doc.NumberOr("schema_version", -1),
            RunManifestBuilder::kSchemaVersion);
  EXPECT_EQ(doc.StringOr("tool", ""), "homets_cli");
  EXPECT_EQ(doc.StringOr("outcome", ""), "success");
  EXPECT_EQ(doc.NumberOr("exit_code", -1), 0);
  const JsonValue* status = doc.Find("status");
  ASSERT_NE(status, nullptr);
  EXPECT_EQ(status->StringOr("code", ""), "OK");
  EXPECT_GE(doc.NumberOr("wall_seconds", -1.0), 0.0);
  // Optional sections stay absent until recorded.
  EXPECT_EQ(doc.Find("failpoints"), nullptr);
  EXPECT_EQ(doc.Find("ingest"), nullptr);
  EXPECT_EQ(doc.Find("failed_stage"), nullptr);
}

TEST(RunManifestTest, ConfigInputsAndCountersRoundTrip) {
  RunManifestBuilder builder;
  builder.SetConfig("period", "daily");
  builder.SetConfig("period", "weekly");  // overwrite, not duplicate
  builder.SetConfig("read-policy", "repair");
  builder.AddInput("a.csv", "csv", 123);
  builder.AddInput("b.homets", "homets", 456);
  builder.SetFailpoints("io.csv.open=error*2", 7);
  builder.SetThreads(8, 4);
  builder.SetReadPolicy("repair", 2);
  ManifestIngestCounters counters;
  counters.rows_parsed = 100;
  counters.rows_malformed = 3;
  builder.RecordIngest(counters);
  builder.RecordIngest(counters);  // accumulates across files

  const JsonValue doc = Parse(builder);
  const JsonValue* config = doc.Find("config");
  ASSERT_NE(config, nullptr);
  EXPECT_EQ(config->StringOr("period", ""), "weekly");
  ASSERT_EQ(config->object_items().size(), 2u);

  const JsonValue* inputs = doc.Find("inputs");
  ASSERT_NE(inputs, nullptr);
  ASSERT_EQ(inputs->array_items().size(), 2u);
  EXPECT_EQ(inputs->array_items()[0].StringOr("path", ""), "a.csv");
  EXPECT_EQ(inputs->array_items()[1].StringOr("format", ""), "homets");
  EXPECT_EQ(inputs->array_items()[1].NumberOr("bytes", -1), 456);

  const JsonValue* failpoints = doc.Find("failpoints");
  ASSERT_NE(failpoints, nullptr);
  EXPECT_EQ(failpoints->StringOr("spec", ""), "io.csv.open=error*2");
  EXPECT_EQ(failpoints->NumberOr("seed", -1), 7);

  const JsonValue* threads = doc.Find("threads");
  ASSERT_NE(threads, nullptr);
  EXPECT_EQ(threads->NumberOr("hardware", -1), 8);
  EXPECT_EQ(threads->NumberOr("used", -1), 4);

  const JsonValue* ingest = doc.Find("ingest");
  ASSERT_NE(ingest, nullptr);
  EXPECT_EQ(ingest->NumberOr("rows_parsed", -1), 200);
  EXPECT_EQ(ingest->NumberOr("rows_malformed", -1), 6);
}

// Stage entries mirror the BENCH_pipeline.json shape: name, seconds, units,
// and a map of counter deltas.
TEST(RunManifestTest, StagesMirrorBenchShape) {
  RunManifestBuilder builder;
  builder.AddStage("read_traces", 1.5, 28,
                   {{"homets.io.rows_parsed", 1000}});
  builder.AddStage("mine_motifs", 0.25, 28, {});
  const JsonValue doc = Parse(builder);
  const JsonValue* stages = doc.Find("stages");
  ASSERT_NE(stages, nullptr);
  ASSERT_EQ(stages->array_items().size(), 2u);
  const JsonValue& first = stages->array_items()[0];
  EXPECT_EQ(first.StringOr("stage", ""), "read_traces");
  EXPECT_DOUBLE_EQ(first.NumberOr("seconds", -1), 1.5);
  EXPECT_EQ(first.NumberOr("units", -1), 28);
  const JsonValue* metrics = first.Find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_EQ(metrics->NumberOr("homets.io.rows_parsed", -1), 1000);
}

TEST(RunManifestTest, FirstFailureWinsAndMapsToFailureOutcome) {
  RunManifestBuilder builder;
  builder.MarkFailed("read_traces", Status::IoError("disk gone"));
  builder.MarkFailed("mine_motifs", Status::ComputeError("fallout"));
  builder.SetExitCode(17);
  const JsonValue doc = Parse(builder);
  EXPECT_EQ(doc.StringOr("outcome", ""), "failure");
  EXPECT_EQ(doc.StringOr("failed_stage", ""), "read_traces");
  const JsonValue* status = doc.Find("status");
  ASSERT_NE(status, nullptr);
  EXPECT_EQ(status->StringOr("code", ""), "IoError");
  EXPECT_EQ(status->StringOr("message", ""), "disk gone");
  EXPECT_EQ(doc.NumberOr("exit_code", -1), 17);
}

TEST(RunManifestTest, CancellationMapsToCancelledOutcome) {
  RunManifestBuilder cancelled;
  cancelled.MarkFailed("engine", Status::Cancelled("stop requested"));
  EXPECT_EQ(Parse(cancelled).StringOr("outcome", ""), "cancelled");

  RunManifestBuilder deadline;
  deadline.MarkFailed("engine", Status::DeadlineExceeded("too slow"));
  EXPECT_EQ(Parse(deadline).StringOr("outcome", ""), "cancelled");
}

TEST(RunManifestTest, WriteJsonLandsOnDiskAndFailsCleanly) {
  RunManifestBuilder builder;
  builder.SetTool("t");
  const std::string path = testing::TempDir() + "/manifest_test.json";
  ASSERT_TRUE(builder.WriteJson(path).ok());
  std::ifstream in(path);
  std::ostringstream text;
  text << in.rdbuf();
  EXPECT_TRUE(ParseJson(text.str()).ok());
  std::remove(path.c_str());

  const Status bad =
      builder.WriteJson(testing::TempDir() + "/no/such/dir/m.json");
  EXPECT_EQ(bad.code(), StatusCode::kIoError);
}

// StageTimer against a private registry double-checks the delta math; a
// null builder must be a free no-op.
TEST(RunManifestTest, StageTimerRecordsPositiveCounterDeltas) {
  auto& registry = MetricsRegistry::Global();
  Counter* counter = registry.GetCounter("homets.test.report_stage_units");
  RunManifestBuilder builder;
  {
    RunManifestBuilder::StageTimer timer(&builder, "timed");
    counter->Increment(5);
    timer.set_units(2);
  }
  {
    RunManifestBuilder::StageTimer noop(nullptr, "ignored");
    counter->Increment(1);
  }
  const JsonValue doc = Parse(builder);
  const JsonValue* stages = doc.Find("stages");
  ASSERT_NE(stages, nullptr);
  ASSERT_EQ(stages->array_items().size(), 1u);
  const JsonValue& stage = stages->array_items()[0];
  EXPECT_EQ(stage.StringOr("stage", ""), "timed");
  EXPECT_EQ(stage.NumberOr("units", -1), 2);
  const JsonValue* metrics = stage.Find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_EQ(metrics->NumberOr("homets.test.report_stage_units", -1), 5);
}

}  // namespace
}  // namespace homets::obs
