#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace homets::obs {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.Value(), 42u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(CounterTest, ConcurrentIncrementsSumExactly) {
  // Counters must not lose increments under contention: 8 threads x 10000
  // increments each must land exactly.
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.Value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(GaugeTest, SetAddAndReset) {
  Gauge g;
  g.Set(7);
  EXPECT_EQ(g.Value(), 7);
  g.Add(-10);
  EXPECT_EQ(g.Value(), -3);
  g.Reset();
  EXPECT_EQ(g.Value(), 0);
}

TEST(HistogramTest, BucketBoundariesAreInclusiveUpperBounds) {
  // Prometheus `le` semantics: a value equal to a bound lands in that bound's
  // bucket; anything above the last bound lands in the overflow bucket.
  Histogram h({1.0, 10.0, 100.0});
  for (const double v : {0.5, 1.0, 5.0, 10.0, 50.0, 100.0, 1000.0}) {
    h.Observe(v);
  }
  EXPECT_EQ(h.BucketCounts(), (std::vector<uint64_t>{2, 2, 2, 1}));
  EXPECT_EQ(h.Count(), 7u);
  EXPECT_DOUBLE_EQ(h.Sum(), 0.5 + 1.0 + 5.0 + 10.0 + 50.0 + 100.0 + 1000.0);
}

TEST(HistogramTest, SortsAndDedupsBounds) {
  Histogram h({10.0, 1.0, 10.0});
  EXPECT_EQ(h.bounds(), (std::vector<double>{1.0, 10.0}));
}

TEST(HistogramTest, ConcurrentObservationsCountExactly) {
  Histogram h({1.0, 2.0});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.Observe(1.5);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.Count(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.BucketCounts()[1], static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(h.Sum(), 1.5 * kThreads * kPerThread);
}

TEST(HistogramTest, ResetZeroesEverything) {
  Histogram h({1.0});
  h.Observe(0.5);
  h.Observe(2.0);
  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_DOUBLE_EQ(h.Sum(), 0.0);
  EXPECT_EQ(h.BucketCounts(), (std::vector<uint64_t>{0, 0}));
}

TEST(ExponentialBucketsTest, GeometricSeries) {
  EXPECT_EQ(ExponentialBuckets(1.0, 10.0, 3),
            (std::vector<double>{1.0, 10.0, 100.0}));
}

TEST(MetricsRegistryTest, SameNameReturnsSamePointer) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("homets.test.counter");
  Counter* b = registry.GetCounter("homets.test.counter");
  EXPECT_EQ(a, b);
  EXPECT_NE(registry.GetGauge("homets.test.gauge"), nullptr);
  Histogram* h1 = registry.GetHistogram("homets.test.hist", {1.0, 2.0});
  Histogram* h2 = registry.GetHistogram("homets.test.hist", {99.0});
  EXPECT_EQ(h1, h2);  // first registration fixes the bounds
  EXPECT_EQ(h1->bounds(), (std::vector<double>{1.0, 2.0}));
}

TEST(MetricsRegistryTest, ConcurrentRegistrationAndIncrement) {
  // Many threads race to register the same name and increment through
  // whatever pointer they get; the total must still be exact.
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      Counter* c = registry.GetCounter("homets.test.raced");
      for (int i = 0; i < kPerThread; ++i) c->Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(registry.GetCounter("homets.test.raced")->Value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsRegistryTest, SnapshotReflectsValues) {
  MetricsRegistry registry;
  registry.GetCounter("homets.test.count")->Increment(3);
  registry.GetGauge("homets.test.depth")->Set(-2);
  registry.GetHistogram("homets.test.lat", {10.0})->Observe(4.0);
  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counters.at("homets.test.count"), 3u);
  EXPECT_EQ(snap.gauges.at("homets.test.depth"), -2);
  EXPECT_EQ(snap.histograms.at("homets.test.lat").count, 1u);
  EXPECT_EQ(snap.histograms.at("homets.test.lat").buckets,
            (std::vector<uint64_t>{1, 0}));
}

TEST(MetricsRegistryTest, ExportTextListsEveryMetricSorted) {
  MetricsRegistry registry;
  registry.GetCounter("homets.b.count")->Increment(2);
  registry.GetCounter("homets.a.count")->Increment(1);
  const std::string text = registry.ExportText();
  const size_t a = text.find("homets.a.count 1");
  const size_t b = text.find("homets.b.count 2");
  ASSERT_NE(a, std::string::npos) << text;
  ASSERT_NE(b, std::string::npos) << text;
  EXPECT_LT(a, b);
}

TEST(MetricsRegistryTest, ExportJsonIsWellFormed) {
  MetricsRegistry registry;
  registry.GetCounter("homets.test.count")->Increment(5);
  registry.GetGauge("homets.test.gauge")->Set(9);
  registry.GetHistogram("homets.test.lat", {1.0})->Observe(0.5);
  const std::string json = registry.ExportJson();
  // Structural checks: balanced braces/brackets, expected keys and values.
  int braces = 0, brackets = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '"' && (i == 0 || json[i - 1] != '\\')) in_string = !in_string;
    if (in_string) continue;
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_FALSE(in_string);
  EXPECT_NE(json.find("\"homets.test.count\": 5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"homets.test.gauge\": 9"), std::string::npos) << json;
  EXPECT_NE(json.find("\"+inf\""), std::string::npos) << json;
}

TEST(MetricsRegistryTest, ResetZeroesButKeepsPointers) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("homets.test.count");
  c->Increment(5);
  registry.Reset();
  EXPECT_EQ(c->Value(), 0u);
  EXPECT_EQ(registry.GetCounter("homets.test.count"), c);
}

TEST(MetricsRegistryTest, GlobalIsASingleton) {
  EXPECT_EQ(&MetricsRegistry::Global(), &MetricsRegistry::Global());
}

}  // namespace
}  // namespace homets::obs
