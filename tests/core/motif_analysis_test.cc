#include "core/motif_analysis.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/random.h"

namespace homets::core {
namespace {

// A deterministic two-gateway world with evening-driver devices, giving
// motif members something to dominate.
class MotifAnalysisFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int id = 0; id < 2; ++id) {
      gateways_[id] = MakeGateway(static_cast<uint64_t>(id) + 1);
      overall_[id] = FindDominantDevices(gateways_[id]);
    }
    // Daily windows at 60-minute bins over 3 days for both gateways.
    for (int id = 0; id < 2; ++id) {
      for (int day = 0; day < 3; ++day) {
        provenance_.push_back({id, day * ts::kMinutesPerDay});
      }
    }
    motif_.members = {0, 1, 2, 3, 4, 5};
  }

  static simgen::GatewayTrace MakeGateway(uint64_t seed) {
    Rng rng(seed);
    const size_t minutes = static_cast<size_t>(3 * ts::kMinutesPerDay);
    simgen::GatewayTrace gw;
    std::vector<double> driver(minutes), side(minutes);
    for (size_t m = 0; m < minutes; ++m) {
      const int hour = static_cast<int>((m / 60) % 24);
      driver[m] = (hour >= 18 && hour < 23)
                      ? rng.LogNormal(std::log(7e5), 0.4)
                      : rng.LogNormal(std::log(150), 0.4);
      side[m] = rng.LogNormal(std::log(250), 0.5);
    }
    auto make_dev = [&](const std::string& name, std::vector<double> in,
                        simgen::DeviceType type) {
      simgen::DeviceTrace dev;
      dev.name = name;
      dev.true_type = type;
      dev.reported_type = type;
      std::vector<double> out(in.size());
      for (size_t i = 0; i < in.size(); ++i) out[i] = 0.1 * in[i];
      dev.incoming = ts::TimeSeries(0, 1, std::move(in));
      dev.outgoing = ts::TimeSeries(0, 1, std::move(out));
      return dev;
    };
    gw.devices.push_back(
        make_dev("tv", driver, simgen::DeviceType::kPortable));
    gw.devices.push_back(make_dev("hub", side, simgen::DeviceType::kFixed));
    return gw;
  }

  GatewayProvider Provider() {
    return [this](int id) -> const simgen::GatewayTrace* {
      const auto it = gateways_.find(id);
      return it == gateways_.end() ? nullptr : &it->second;
    };
  }

  MotifAnalysisOptions Options() const {
    MotifAnalysisOptions options;
    options.granularity_minutes = 60;
    options.anchor_offset_minutes = 0;
    options.window_minutes = ts::kMinutesPerDay;
    return options;
  }

  std::map<int, simgen::GatewayTrace> gateways_;
  std::map<int, std::vector<DominantDevice>> overall_;
  std::vector<WindowProvenance> provenance_;
  Motif motif_;
};

TEST_F(MotifAnalysisFixture, BasicCounts) {
  const auto result =
      CharacterizeMotif(motif_, provenance_, Provider(), overall_, Options())
          .value();
  EXPECT_EQ(result.support, 6u);
  EXPECT_EQ(result.distinct_gateways, 2u);
  EXPECT_DOUBLE_EQ(result.within_gateway_fraction, 1.0);
}

TEST_F(MotifAnalysisFixture, DominantDevicesFoundPerWindow) {
  const auto result =
      CharacterizeMotif(motif_, provenance_, Provider(), overall_, Options())
          .value();
  size_t windows_with_dominants = 0;
  for (size_t count = 1; count < result.dominant_count_histogram.size();
       ++count) {
    windows_with_dominants += result.dominant_count_histogram[count];
  }
  EXPECT_GE(windows_with_dominants, 4u);
}

TEST_F(MotifAnalysisFixture, DominantTypesReflectDrivers) {
  const auto result =
      CharacterizeMotif(motif_, provenance_, Provider(), overall_, Options())
          .value();
  // The evening driver is portable in both gateways.
  const auto it = result.dominant_type_counts.find(
      simgen::DeviceType::kPortable);
  ASSERT_NE(it, result.dominant_type_counts.end());
  EXPECT_GE(it->second, 4u);
}

TEST_F(MotifAnalysisFixture, WindowDominantsOverlapOverall) {
  const auto result =
      CharacterizeMotif(motif_, provenance_, Provider(), overall_, Options())
          .value();
  // Overall dominant is the same evening driver, so most windows overlap.
  size_t with_overlap = 0;
  for (size_t k = 1; k < result.overlap_count_histogram.size(); ++k) {
    with_overlap += result.overlap_count_histogram[k];
  }
  EXPECT_GE(with_overlap, 4u);
}

TEST_F(MotifAnalysisFixture, DayMixCountsWeekdays) {
  const auto result =
      CharacterizeMotif(motif_, provenance_, Provider(), overall_, Options())
          .value();
  // Days 0..2 from the Monday epoch are Mon/Tue/Wed — all workdays.
  EXPECT_EQ(result.workday_members, 6u);
  EXPECT_EQ(result.weekend_members, 0u);
}

TEST_F(MotifAnalysisFixture, WeekendWindowsClassified) {
  Motif weekend_motif;
  weekend_motif.members = {0, 1};
  std::vector<WindowProvenance> weekend_prov{
      {0, 5 * ts::kMinutesPerDay},  // Saturday
      {0, 6 * ts::kMinutesPerDay},  // Sunday
  };
  // Gateway 0 only spans 3 days; dominance windows will be empty but day
  // classification still applies.
  const auto result = CharacterizeMotif(weekend_motif, weekend_prov,
                                        Provider(), overall_, Options())
                          .value();
  EXPECT_EQ(result.weekend_members, 2u);
  EXPECT_EQ(result.workday_members, 0u);
}

TEST_F(MotifAnalysisFixture, MissingGatewaySkipped) {
  std::vector<WindowProvenance> prov{{99, 0}, {0, 0}};
  Motif motif;
  motif.members = {0, 1};
  const auto result =
      CharacterizeMotif(motif, prov, Provider(), overall_, Options()).value();
  EXPECT_EQ(result.support, 2u);
  // Only the member from gateway 0 contributed dominance histograms.
  size_t histogram_total = 0;
  for (size_t c : result.dominant_count_histogram) histogram_total += c;
  EXPECT_EQ(histogram_total, 1u);
}

TEST_F(MotifAnalysisFixture, ErrorsOnBadInputs) {
  EXPECT_FALSE(
      CharacterizeMotif(Motif{}, provenance_, Provider(), overall_, Options())
          .ok());
  MotifAnalysisOptions bad = Options();
  bad.window_minutes = 0;
  EXPECT_FALSE(
      CharacterizeMotif(motif_, provenance_, Provider(), overall_, bad).ok());
  Motif out_of_range;
  out_of_range.members = {999};
  EXPECT_FALSE(CharacterizeMotif(out_of_range, provenance_, Provider(),
                                 overall_, Options())
                   .ok());
}

TEST_F(MotifAnalysisFixture, WeeklyWindowsSkipDayMix) {
  MotifAnalysisOptions weekly = Options();
  weekly.window_minutes = ts::kMinutesPerWeek;
  Motif motif;
  motif.members = {0, 3};
  const auto result = CharacterizeMotif(motif, provenance_, Provider(),
                                        overall_, weekly)
                          .value();
  EXPECT_EQ(result.workday_members + result.weekend_members, 0u);
}

}  // namespace
}  // namespace homets::core
