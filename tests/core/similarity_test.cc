#include "core/similarity.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "common/random.h"
#include "correlation/prepared_series.h"

namespace homets::core {
namespace {

std::vector<double> Ramp(size_t n) {
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) v[i] = static_cast<double>(i);
  return v;
}

TEST(CorrelationSimilarityTest, PerfectLinearIsOne) {
  const auto x = Ramp(40);
  const auto result = CorrelationSimilarity(x, x);
  EXPECT_NEAR(result.value, 1.0, 1e-9);
  EXPECT_TRUE(result.significant);
  EXPECT_NE(result.source, SimilaritySource::kNone);
}

TEST(CorrelationSimilarityTest, TakesMaximumOfSignificantCoefficients) {
  // Exponential growth: Spearman/Kendall see a perfect monotone relation
  // (ρ = τ = 1) while Pearson is below 1, so the max must be 1.
  const auto x = Ramp(40);
  std::vector<double> y(40);
  for (size_t i = 0; i < 40; ++i) y[i] = std::exp(0.25 * x[i]);
  const auto result = CorrelationSimilarity(x, y);
  EXPECT_NEAR(result.value, 1.0, 1e-9);
  EXPECT_TRUE(result.source == SimilaritySource::kSpearman ||
              result.source == SimilaritySource::kKendall);
}

TEST(CorrelationSimilarityTest, InsignificantIsZeroByDefinition) {
  Rng rng(1);
  std::vector<double> x(25), y(25);
  for (size_t i = 0; i < 25; ++i) {
    x[i] = rng.Normal();
    y[i] = rng.Normal();
  }
  const auto result = CorrelationSimilarity(x, y);
  if (!result.significant) {
    EXPECT_DOUBLE_EQ(result.value, 0.0);
    EXPECT_EQ(result.source, SimilaritySource::kNone);
  }
}

TEST(CorrelationSimilarityTest, ConstantSeriesIsZeroNotError) {
  const std::vector<double> constant(30, 5.0);
  const auto result = CorrelationSimilarity(constant, Ramp(30));
  EXPECT_DOUBLE_EQ(result.value, 0.0);
  EXPECT_FALSE(result.significant);
}

TEST(CorrelationSimilarityTest, AllZeroActiveWindowsAreDissimilar) {
  // Background-removed inactive windows are all zeros; Definition 1 yields 0
  // so they never form motifs.
  const std::vector<double> zeros(21, 0.0);
  const auto result = CorrelationSimilarity(zeros, zeros);
  EXPECT_DOUBLE_EQ(result.value, 0.0);
}

TEST(CorrelationSimilarityTest, ScaleInvariant) {
  Rng rng(2);
  std::vector<double> x(60), y(60), y_scaled(60);
  for (size_t i = 0; i < 60; ++i) {
    x[i] = rng.Normal();
    y[i] = x[i] + 0.3 * rng.Normal();
    y_scaled[i] = 5000.0 * y[i];
  }
  EXPECT_NEAR(CorrelationSimilarity(x, y).value,
              CorrelationSimilarity(x, y_scaled).value, 1e-9);
}

TEST(CorrelationSimilarityTest, NegativeCorrelationReported) {
  const auto x = Ramp(30);
  std::vector<double> y(x.rbegin(), x.rend());
  const auto result = CorrelationSimilarity(x, y);
  EXPECT_TRUE(result.significant);
  EXPECT_NEAR(result.value, -1.0, 1e-9);
}

TEST(CorrelationSimilarityTest, StricterAlphaCanSilenceWeakAssociations) {
  Rng rng(3);
  // Construct a weak association with p-value between 1e-4 and 0.05 is
  // fiddly; instead verify alpha monotonicity: anything significant at
  // alpha=1e-9 is significant at 0.05.
  std::vector<double> x(100), y(100);
  for (size_t i = 0; i < 100; ++i) {
    x[i] = rng.Normal();
    y[i] = 0.5 * x[i] + rng.Normal();
  }
  SimilarityOptions strict;
  strict.alpha = 1e-9;
  const auto strict_result = CorrelationSimilarity(x, y, strict);
  if (strict_result.significant) {
    EXPECT_TRUE(CorrelationSimilarity(x, y).significant);
  }
}

TEST(CorrelationSimilarityTest, TimeSeriesOverloadUsesOverlap) {
  // Two series overlapping on [10, 40) — similarity computed there.
  std::vector<double> a(40), b(40);
  for (size_t i = 0; i < 40; ++i) {
    a[i] = static_cast<double>(i);
    b[i] = static_cast<double>(i) * 2.0 + 5.0;
  }
  ts::TimeSeries sa(0, 1, a);
  ts::TimeSeries sb(10, 1, b);
  const auto result = CorrelationSimilarity(sa, sb);
  EXPECT_TRUE(result.significant);
  EXPECT_NEAR(result.value, 1.0, 1e-9);
  EXPECT_EQ(result.n, 30u);
}

TEST(CorrelationSimilarityTest, TimeSeriesMisalignedGridsYieldZero) {
  ts::TimeSeries a(0, 2, {1.0, 2.0, 3.0});
  ts::TimeSeries b(1, 2, {1.0, 2.0, 3.0});  // phase-shifted bins
  const auto result = CorrelationSimilarity(a, b);
  EXPECT_FALSE(result.significant);
  EXPECT_DOUBLE_EQ(result.value, 0.0);
}

TEST(CorrelationSimilarityTest, DisjointSeriesYieldZero) {
  ts::TimeSeries a(0, 1, {1.0, 2.0});
  ts::TimeSeries b(100, 1, {1.0, 2.0});
  EXPECT_DOUBLE_EQ(CorrelationSimilarity(a, b).value, 0.0);
}

TEST(CorrelationSimilarityTest, ZeroStepSeriesYieldZeroNotUB) {
  // Regression: a default-constructed (empty, step 0) series used to hit
  // modulo-by-zero in the grid-alignment check.
  const ts::TimeSeries empty;
  ts::TimeSeries real(0, 1, {1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(CorrelationSimilarity(empty, real).value, 0.0);
  EXPECT_DOUBLE_EQ(CorrelationSimilarity(real, empty).value, 0.0);
  EXPECT_DOUBLE_EQ(CorrelationSimilarity(empty, empty).value, 0.0);
  EXPECT_FALSE(CorrelationSimilarity(empty, real).significant);
}

TEST(CorrelationSimilarityTest, PreparedOverloadMatchesVectorOverloadBitwise) {
  Rng rng(21);
  std::vector<double> x(56), y(56);
  for (size_t i = 0; i < 56; ++i) {
    x[i] = rng.LogNormal(std::log(500.0), 1.0);
    y[i] = 0.7 * x[i] + rng.Normal() * 50.0;
  }
  const auto px = correlation::PreparedSeries::Make(x);
  const auto py = correlation::PreparedSeries::Make(y);
  correlation::PairWorkspace workspace;
  const SimilarityResult prepared =
      CorrelationSimilarity(px, py, {}, &workspace);
  const SimilarityResult legacy = CorrelationSimilarity(x, y);
  EXPECT_EQ(std::memcmp(&prepared.value, &legacy.value, sizeof(double)), 0);
  EXPECT_EQ(prepared.source, legacy.source);
  EXPECT_EQ(prepared.significant, legacy.significant);
  EXPECT_EQ(prepared.n, legacy.n);
}

TEST(CorrelationDistanceTest, ComplementOfSimilarity) {
  const auto x = Ramp(30);
  EXPECT_NEAR(CorrelationDistance(x, x), 0.0, 1e-9);
  std::vector<double> y(x.rbegin(), x.rend());
  EXPECT_NEAR(CorrelationDistance(x, y), 2.0, 1e-9);
  const std::vector<double> constant(30, 1.0);
  EXPECT_DOUBLE_EQ(CorrelationDistance(x, constant), 1.0);
}

TEST(SimilaritySourceTest, Names) {
  EXPECT_EQ(SimilaritySourceName(SimilaritySource::kNone), "none");
  EXPECT_EQ(SimilaritySourceName(SimilaritySource::kPearson), "pearson");
  EXPECT_EQ(SimilaritySourceName(SimilaritySource::kSpearman), "spearman");
  EXPECT_EQ(SimilaritySourceName(SimilaritySource::kKendall), "kendall");
}

class SimilarityNoiseSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(SimilarityNoiseSweepTest, SimilarityDecreasesWithNoise) {
  const double noise = GetParam();
  Rng rng(11);
  std::vector<double> x(200), y_clean(200), y_noisy(200);
  for (size_t i = 0; i < 200; ++i) {
    x[i] = rng.Normal();
    const double eps = rng.Normal();
    y_clean[i] = x[i] + 0.1 * eps;
    y_noisy[i] = x[i] + noise * eps;
  }
  EXPECT_GE(CorrelationSimilarity(x, y_clean).value,
            CorrelationSimilarity(x, y_noisy).value - 0.05);
}

INSTANTIATE_TEST_SUITE_P(NoiseLevels, SimilarityNoiseSweepTest,
                         ::testing::Values(0.5, 1.0, 2.0, 4.0));

}  // namespace
}  // namespace homets::core
