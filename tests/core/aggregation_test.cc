#include "core/aggregation.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace homets::core {
namespace {

// A gateway whose minute-level traffic repeats a daily template with bursty
// noise: fine granularities decorrelate, coarse ones align — Figure 6/8's
// mechanism.
ts::TimeSeries TemplateGateway(int weeks, double session_prob, uint64_t seed) {
  Rng rng(seed);
  const int64_t horizon = weeks * ts::kMinutesPerWeek;
  std::vector<double> v(static_cast<size_t>(horizon), 0.0);
  for (int64_t m = 0; m < horizon; ++m) {
    const int hour = static_cast<int>(ts::MinuteOfDay(m) / 60);
    const bool active_hours = hour >= 18 && hour < 23;
    if (active_hours && rng.Bernoulli(session_prob)) {
      v[static_cast<size_t>(m)] = rng.LogNormal(std::log(5e5), 0.8);
    }
  }
  return ts::TimeSeries(0, 1, std::move(v));
}

TEST(AverageWindowCorrelationTest, WeeklyRegularGatewayHighAtCoarseBins) {
  const auto gw = TemplateGateway(4, 0.30, 1);
  const double coarse =
      AverageWindowCorrelation(gw, 480, 120, PatternPeriod::kWeekly).value();
  const double fine =
      AverageWindowCorrelation(gw, 5, 0, PatternPeriod::kWeekly).value();
  EXPECT_GT(coarse, 0.6);
  EXPECT_GT(coarse, fine);
}

TEST(AverageWindowCorrelationTest, DailyComparesSameWeekdayOnly) {
  const auto gw = TemplateGateway(2, 0.30, 2);
  // At 180-minute bins the evening block repeats day over day.
  const double cor =
      AverageWindowCorrelation(gw, 180, 0, PatternPeriod::kDaily).value();
  EXPECT_GT(cor, 0.5);
}

TEST(AverageWindowCorrelationTest, ErrorsWhenTooFewWindows) {
  const auto gw = TemplateGateway(1, 0.3, 3);
  EXPECT_FALSE(
      AverageWindowCorrelation(gw, 480, 0, PatternPeriod::kWeekly).ok());
}

TEST(AverageWindowCorrelationTest, GranularityMustDivideWindow) {
  const auto gw = TemplateGateway(2, 0.3, 4);
  // 7 hours does not divide a day/week evenly.
  EXPECT_FALSE(
      AverageWindowCorrelation(gw, 7 * 60, 0, PatternPeriod::kDaily).ok());
}

TEST(SweepAggregationsTest, CurveRisesWithGranularityForRegularFleet) {
  // Sparse sessions: fine bins decorrelate week-over-week, coarse bins align.
  std::vector<ts::TimeSeries> fleet;
  for (int g = 0; g < 5; ++g) {
    fleet.push_back(TemplateGateway(4, 0.04, 10 + static_cast<uint64_t>(g)));
  }
  AggregationSweepOptions options;
  options.period = PatternPeriod::kWeekly;
  options.anchor_offset_minutes = 120;
  const auto sweep =
      SweepAggregations(fleet, {5, 240, 480}, options).value();
  ASSERT_EQ(sweep.size(), 3u);
  EXPECT_GT(sweep[2].mean_correlation_all, sweep[0].mean_correlation_all);
  EXPECT_EQ(sweep[0].gateways_all, 5u);
}

TEST(SweepAggregationsTest, StationarySubsetTracked) {
  std::vector<ts::TimeSeries> fleet;
  // Regular gateways plus a pure-noise one.
  for (int g = 0; g < 3; ++g) {
    fleet.push_back(TemplateGateway(4, 0.35, 20 + static_cast<uint64_t>(g)));
  }
  Rng rng(99);
  std::vector<double> noise(static_cast<size_t>(4 * ts::kMinutesPerWeek));
  for (auto& v : noise) v = rng.Bernoulli(0.01) ? rng.LogNormal(13.0, 1.0) : 0.0;
  fleet.emplace_back(0, 1, std::move(noise));

  AggregationSweepOptions options;
  options.period = PatternPeriod::kWeekly;
  options.anchor_offset_minutes = 120;
  const auto sweep = SweepAggregations(fleet, {480}, options).value();
  ASSERT_EQ(sweep.size(), 1u);
  EXPECT_LE(sweep[0].gateways_stationary, sweep[0].gateways_all);
  if (sweep[0].gateways_stationary > 0) {
    EXPECT_GE(sweep[0].mean_correlation_stationary,
              sweep[0].mean_correlation_all - 0.05);
  }
}

TEST(SweepAggregationsTest, EmptyFleetErrors) {
  AggregationSweepOptions options;
  EXPECT_FALSE(SweepAggregations({}, {60}, options).ok());
}

TEST(BestGranularityTest, PicksArgmax) {
  std::vector<AggregationPoint> sweep(3);
  sweep[0] = {60, 0.3, 10, 0.5, 2};
  sweep[1] = {180, 0.6, 10, 0.7, 3};
  sweep[2] = {480, 0.5, 10, 0.9, 1};
  EXPECT_EQ(BestGranularity(sweep, false).value(), 180);
  EXPECT_EQ(BestGranularity(sweep, true).value(), 480);
}

TEST(BestGranularityTest, SkipsEmptyPoints) {
  std::vector<AggregationPoint> sweep(2);
  sweep[0] = {60, 0.9, 0, 0.0, 0};  // no gateways evaluated
  sweep[1] = {180, 0.4, 5, 0.0, 0};
  EXPECT_EQ(BestGranularity(sweep, false).value(), 180);
  EXPECT_FALSE(BestGranularity(sweep, true).ok());
}

TEST(StationaryWeekdayCountTest, RegularGatewayHasStationaryDays) {
  // Very regular evening usage at high session probability.
  const auto gw = TemplateGateway(4, 0.5, 30);
  const auto count = StationaryWeekdayCount(gw, 180).value();
  EXPECT_GE(count, 1u);
}

TEST(StationaryWeekdayCountTest, PureNoiseGatewayHasFew) {
  Rng rng(31);
  std::vector<double> noise(static_cast<size_t>(4 * ts::kMinutesPerWeek));
  for (auto& v : noise) {
    v = rng.Bernoulli(0.005) ? rng.LogNormal(14.0, 1.5) : 0.0;
  }
  ts::TimeSeries gw(0, 1, std::move(noise));
  const auto count = StationaryWeekdayCount(gw, 180).value();
  EXPECT_LE(count, 2u);
}

}  // namespace
}  // namespace homets::core
