#include "core/background.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "core/similarity.h"
#include "simgen/fleet.h"

namespace homets::core {
namespace {

ts::TimeSeries BackgroundWithBursts(double base, double burst, size_t n,
                                    uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) {
    x = rng.LogNormal(std::log(base), 0.6);
    if (rng.Bernoulli(0.01)) x += burst;
  }
  return ts::TimeSeries(0, 1, std::move(v));
}

TEST(TauGroupTest, PaperBoundaries) {
  EXPECT_EQ(ClassifyTau(100.0), TauGroup::kSmall);
  EXPECT_EQ(ClassifyTau(5000.0), TauGroup::kSmall);
  EXPECT_EQ(ClassifyTau(5000.1), TauGroup::kMedium);
  EXPECT_EQ(ClassifyTau(40000.0), TauGroup::kMedium);
  EXPECT_EQ(ClassifyTau(40001.0), TauGroup::kLarge);
  EXPECT_EQ(TauGroupName(TauGroup::kSmall), "small");
  EXPECT_EQ(TauGroupName(TauGroup::kMedium), "medium");
  EXPECT_EQ(TauGroupName(TauGroup::kLarge), "large");
}

TEST(BackgroundThresholdTest, TauSeparatesBackgroundFromBursts) {
  const auto traffic = BackgroundWithBursts(300.0, 1e6, 5000, 1);
  const auto bg = EstimateBackgroundThreshold(traffic).value();
  EXPECT_GT(bg.tau, 300.0);   // above the background median
  EXPECT_LT(bg.tau, 1e5);     // far below burst scale
}

TEST(BackgroundThresholdTest, TauBackCappedAt5000) {
  // A chatty fixed device with high background: τ_back caps at 5000.
  const auto traffic = BackgroundWithBursts(30000.0, 1e7, 5000, 2);
  const auto bg = EstimateBackgroundThreshold(traffic).value();
  EXPECT_GT(bg.tau, kBackgroundCapBytes);
  EXPECT_DOUBLE_EQ(bg.tau_back, kBackgroundCapBytes);
}

TEST(BackgroundThresholdTest, LowBackgroundTauBackIsTau) {
  const auto traffic = BackgroundWithBursts(100.0, 1e6, 5000, 3);
  const auto bg = EstimateBackgroundThreshold(traffic).value();
  if (bg.tau < kBackgroundCapBytes) {
    EXPECT_DOUBLE_EQ(bg.tau_back, bg.tau);
  }
}

TEST(BackgroundThresholdTest, GroupAssignedFromTau) {
  const auto low = EstimateBackgroundThreshold(
                       BackgroundWithBursts(100.0, 1e6, 3000, 4))
                       .value();
  EXPECT_EQ(low.group, TauGroup::kSmall);
  const auto high = EstimateBackgroundThreshold(
                        BackgroundWithBursts(50000.0, 1e7, 3000, 5))
                        .value();
  EXPECT_EQ(high.group, TauGroup::kLarge);
}

TEST(BackgroundThresholdTest, MissingValuesIgnored) {
  auto traffic = BackgroundWithBursts(200.0, 1e6, 1000, 6);
  for (size_t i = 0; i < traffic.size(); i += 7) {
    traffic[i] = ts::TimeSeries::Missing();
  }
  const auto bg = EstimateBackgroundThreshold(traffic).value();
  EXPECT_LT(bg.observations, 1000u);
  EXPECT_GT(bg.tau, 0.0);
}

TEST(BackgroundThresholdTest, TooFewObservationsError) {
  ts::TimeSeries tiny(0, 1, {1, 2, 3});
  EXPECT_FALSE(EstimateBackgroundThreshold(tiny).ok());
}

TEST(DeviceBackgroundTest, PerDirectionEstimates) {
  simgen::DeviceTrace dev;
  dev.incoming = BackgroundWithBursts(400.0, 2e6, 2000, 7);
  dev.outgoing = BackgroundWithBursts(80.0, 2e5, 2000, 8);
  const auto bg = EstimateDeviceBackground(dev).value();
  EXPECT_GT(bg.incoming.tau, bg.outgoing.tau);
}

TEST(ActiveTrafficTest, RemovesBackgroundKeepsBursts) {
  simgen::DeviceTrace dev;
  dev.incoming = BackgroundWithBursts(300.0, 1e6, 5000, 9);
  dev.outgoing = BackgroundWithBursts(50.0, 1e5, 5000, 10);
  const auto active = ActiveTraffic(dev).value();
  size_t zeros = 0, bursts = 0, observed = 0;
  for (double v : active.values()) {
    if (ts::TimeSeries::IsMissing(v)) continue;
    ++observed;
    if (v == 0.0) ++zeros;
    if (v > 1e5) ++bursts;
  }
  // Most minutes are background → zeroed; bursts survive.
  EXPECT_GT(static_cast<double>(zeros) / observed, 0.8);
  EXPECT_GT(bursts, 10u);
}

TEST(ActiveTrafficTest, ActiveNeverExceedsRaw) {
  simgen::DeviceTrace dev;
  dev.incoming = BackgroundWithBursts(300.0, 1e6, 2000, 11);
  dev.outgoing = BackgroundWithBursts(60.0, 1e5, 2000, 12);
  const auto active = ActiveTraffic(dev).value();
  const auto raw = dev.TotalTraffic();
  for (size_t i = 0; i < active.size(); ++i) {
    if (ts::TimeSeries::IsMissing(active[i])) continue;
    EXPECT_LE(active[i], raw[i] + 1e-9);
  }
}

TEST(ActiveAggregateTest, FleetGatewayProducesActiveSeries) {
  simgen::SimConfig config;
  config.n_gateways = 2;
  config.weeks = 1;
  config.seed = 21;
  const auto gw = simgen::FleetGenerator(config).Generate(0);
  const auto active = ActiveAggregate(gw);
  ASSERT_FALSE(active.empty());
  // Active mass is a strict subset of raw mass.
  EXPECT_LT(active.Sum(), gw.AggregateTraffic().Sum());
  EXPECT_GT(active.Sum(), 0.0);
}

TEST(ActiveAggregateTest, RevealsMoreRegularity) {
  // Removing background raises the week-over-week correlation — the paper's
  // Section 7 observation (7% → 11% stationary gateways).
  simgen::SimConfig config;
  config.n_gateways = 6;
  config.weeks = 3;  // two full 2am-anchored weekly windows need > 2 weeks
  config.seed = 22;
  config.long_outage_prob = 0.0;
  config.unreliable_daily_prob = 0.0;
  simgen::FleetGenerator gen(config);
  double raw_cor = 0.0, active_cor = 0.0;
  int counted = 0;
  for (int id = 0; id < config.n_gateways; ++id) {
    const auto gw = gen.Generate(id);
    const auto split = [&](const ts::TimeSeries& s) {
      auto agg = ts::Aggregate(s, 480, 120, ts::AggKind::kSum);
      return ts::SliceWindows(*agg, ts::kMinutesPerWeek, 120);
    };
    const auto raw_weeks = split(gw.AggregateTraffic());
    const auto act_weeks = split(ActiveAggregate(gw));
    if (raw_weeks.size() < 2 || act_weeks.size() < 2) continue;
    raw_cor += CorrelationSimilarity(raw_weeks[0].values(),
                                     raw_weeks[1].values())
                   .value;
    active_cor += CorrelationSimilarity(act_weeks[0].values(),
                                        act_weeks[1].values())
                      .value;
    ++counted;
  }
  ASSERT_GT(counted, 3);
  // Averaged over gateways, active correlation should not be much below raw
  // (usually above); allow slack for randomness.
  EXPECT_GT(active_cor / counted, raw_cor / counted - 0.25);
}

}  // namespace
}  // namespace homets::core
