#include "core/stationarity.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace homets::core {
namespace {

// Windows sharing one deterministic daily shape plus small noise: strongly
// stationary by construction.
std::vector<ts::TimeSeries> RegularWindows(size_t count, size_t length,
                                           double noise, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> shape(length);
  for (size_t i = 0; i < length; ++i) {
    shape[i] = 100.0 + 80.0 * std::sin(2.0 * M_PI * static_cast<double>(i) /
                                       static_cast<double>(length));
  }
  std::vector<ts::TimeSeries> windows;
  for (size_t w = 0; w < count; ++w) {
    std::vector<double> v(length);
    for (size_t i = 0; i < length; ++i) {
      v[i] = shape[i] + noise * rng.Normal();
    }
    windows.emplace_back(static_cast<int64_t>(w) * ts::kMinutesPerDay,
                         ts::kMinutesPerDay / static_cast<int64_t>(length),
                         std::move(v));
  }
  return windows;
}

TEST(StrongStationarityTest, RegularWindowsAreStationary) {
  const auto windows = RegularWindows(4, 24, 3.0, 1);
  const auto result = CheckStrongStationarity(windows).value();
  EXPECT_TRUE(result.strongly_stationary);
  EXPECT_TRUE(result.correlation_ok);
  EXPECT_TRUE(result.distribution_ok);
  EXPECT_GT(result.min_pair_similarity, 0.6);
  EXPECT_GT(result.min_ks_p_value, 0.05);
  EXPECT_EQ(result.window_pairs, 6u);  // C(4,2)
}

TEST(StrongStationarityTest, IndependentNoiseFailsCorrelation) {
  Rng rng(2);
  std::vector<ts::TimeSeries> windows;
  for (int w = 0; w < 3; ++w) {
    std::vector<double> v(24);
    for (auto& x : v) x = rng.Normal(100.0, 10.0);
    windows.emplace_back(w * ts::kMinutesPerDay, 60, std::move(v));
  }
  const auto result = CheckStrongStationarity(windows).value();
  EXPECT_FALSE(result.strongly_stationary);
  EXPECT_FALSE(result.correlation_ok);
  // Same marginal distribution though — KS should typically pass.
}

TEST(StrongStationarityTest, DistributionShiftFailsKs) {
  // Same shape but one window has its level and spread blown up 50×: window
  // correlation stays perfect (scale-invariant), the distribution differs.
  auto windows = RegularWindows(3, 48, 0.5, 3);
  for (double& v : windows[2].mutable_values()) v *= 50.0;
  const auto result = CheckStrongStationarity(windows).value();
  EXPECT_TRUE(result.correlation_ok);
  EXPECT_FALSE(result.distribution_ok);
  EXPECT_FALSE(result.strongly_stationary);
}

TEST(StrongStationarityTest, PhiThresholdRespected) {
  const auto windows = RegularWindows(3, 24, 30.0, 4);
  StationarityOptions strict;
  strict.phi = 0.99;  // stricter than any noisy pair can satisfy
  const auto result = CheckStrongStationarity(windows, strict).value();
  EXPECT_FALSE(result.correlation_ok);
}

TEST(StrongStationarityTest, NeedsTwoWindows) {
  const auto windows = RegularWindows(1, 24, 1.0, 5);
  EXPECT_FALSE(CheckStrongStationarity(windows).ok());
}

TEST(StrongStationarityTest, MinPairSimilarityIsTheWeakestLink) {
  auto windows = RegularWindows(3, 48, 1.0, 6);
  // Corrupt one window into anti-phase.
  auto& bad = windows[2].mutable_values();
  std::reverse(bad.begin(), bad.end());
  const auto result = CheckStrongStationarity(windows).value();
  EXPECT_LT(result.min_pair_similarity, 0.5);
}

TEST(WeekdayStationarityTest, GroupsByWeekday) {
  // 14 daily windows (2 weeks): same-weekday windows identical, different
  // weekdays uncorrelated. Every weekday should be stationary.
  Rng rng(7);
  std::vector<std::vector<double>> weekday_shape(7, std::vector<double>(24));
  for (auto& shape : weekday_shape) {
    for (auto& v : shape) v = rng.Uniform(50.0, 400.0);
  }
  std::vector<ts::TimeSeries> windows;
  for (int day = 0; day < 14; ++day) {
    std::vector<double> v = weekday_shape[static_cast<size_t>(day % 7)];
    for (auto& x : v) x += rng.Normal(0.0, 2.0);
    windows.emplace_back(day * ts::kMinutesPerDay, 60, std::move(v));
  }
  const auto results = CheckWeekdayStationarity(windows).value();
  ASSERT_EQ(results.size(), 7u);
  EXPECT_EQ(CountStationaryWeekdays(results), 7u);
}

TEST(WeekdayStationarityTest, SingleWeekHasNoEvidence) {
  // One window per weekday → no pairs → nothing stationary.
  std::vector<ts::TimeSeries> windows;
  Rng rng(8);
  for (int day = 0; day < 7; ++day) {
    std::vector<double> v(24);
    for (auto& x : v) x = rng.Uniform(0.0, 100.0);
    windows.emplace_back(day * ts::kMinutesPerDay, 60, std::move(v));
  }
  const auto results = CheckWeekdayStationarity(windows).value();
  EXPECT_EQ(CountStationaryWeekdays(results), 0u);
  for (const auto& r : results) EXPECT_EQ(r.window_pairs, 0u);
}

TEST(WeekdayStationarityTest, PartiallyStationaryGateway) {
  // Mondays repeat across 3 weeks; all other days are noise.
  Rng rng(9);
  std::vector<double> monday(24);
  for (auto& v : monday) v = rng.Uniform(100.0, 500.0);
  std::vector<ts::TimeSeries> windows;
  for (int day = 0; day < 21; ++day) {
    std::vector<double> v(24);
    if (day % 7 == 0) {
      v = monday;
      for (auto& x : v) x += rng.Normal(0.0, 1.0);
    } else {
      for (auto& x : v) x = rng.Uniform(0.0, 1000.0);
    }
    windows.emplace_back(day * ts::kMinutesPerDay, 60, std::move(v));
  }
  const auto results = CheckWeekdayStationarity(windows).value();
  EXPECT_TRUE(results[0].strongly_stationary);  // Monday
  EXPECT_GE(CountStationaryWeekdays(results), 1u);
  EXPECT_LT(CountStationaryWeekdays(results), 7u);
}

}  // namespace
}  // namespace homets::core
