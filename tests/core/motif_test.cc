#include "core/motif.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "core/similarity.h"

namespace homets::core {
namespace {

// Windows drawn from k planted shape families plus noise-only windows.
struct PlantedWindows {
  std::vector<ts::TimeSeries> windows;
  std::vector<int> family;  // −1 for noise windows
};

PlantedWindows MakePlanted(size_t families, size_t per_family, size_t noise,
                           size_t length, double jitter, uint64_t seed) {
  Rng rng(seed);
  PlantedWindows out;
  std::vector<std::vector<double>> shapes(families,
                                          std::vector<double>(length));
  for (size_t f = 0; f < families; ++f) {
    // Mutually (near-)orthogonal harmonics so families do not correlate and
    // the merge phase cannot collapse them.
    const double harmonic = static_cast<double>(f / 2 + 1);
    const double phase = (f % 2 == 0) ? 0.0 : M_PI / 2.0;
    for (size_t i = 0; i < length; ++i) {
      shapes[f][i] = 200.0 + 150.0 * std::sin(2.0 * M_PI * harmonic *
                                                  static_cast<double>(i) /
                                                  static_cast<double>(length) +
                                              phase);
    }
  }
  int64_t start = 0;
  for (size_t f = 0; f < families; ++f) {
    for (size_t w = 0; w < per_family; ++w) {
      std::vector<double> v = shapes[f];
      for (auto& x : v) x += jitter * rng.Normal();
      out.windows.emplace_back(start, 60, std::move(v));
      out.family.push_back(static_cast<int>(f));
      start += ts::kMinutesPerDay;
    }
  }
  for (size_t w = 0; w < noise; ++w) {
    std::vector<double> v(length);
    for (auto& x : v) x = rng.Uniform(0.0, 1000.0);
    out.windows.emplace_back(start, 60, std::move(v));
    out.family.push_back(-1);
    start += ts::kMinutesPerDay;
  }
  return out;
}

TEST(MotifDiscoveryTest, RecoversPlantedFamilies) {
  const auto planted = MakePlanted(2, 6, 4, 24, 3.0, 1);
  MotifDiscovery miner;
  const auto motifs = miner.Discover(planted.windows).value();
  ASSERT_GE(motifs.size(), 2u);
  // The two largest motifs must be family-pure and complete.
  for (size_t m = 0; m < 2; ++m) {
    EXPECT_EQ(motifs[m].support(), 6u);
    const int family = planted.family[motifs[m].members[0]];
    ASSERT_NE(family, -1);
    for (size_t member : motifs[m].members) {
      EXPECT_EQ(planted.family[member], family);
    }
  }
}

TEST(MotifDiscoveryTest, NoiseWindowsExcluded) {
  const auto planted = MakePlanted(1, 5, 6, 24, 2.0, 2);
  MotifDiscovery miner;
  const auto motifs = miner.Discover(planted.windows).value();
  for (const auto& motif : motifs) {
    for (size_t member : motif.members) {
      EXPECT_NE(planted.family[member], -1)
          << "noise window " << member << " joined a motif";
    }
  }
}

TEST(MotifDiscoveryTest, SupportSortedDescending) {
  const auto planted = MakePlanted(3, 4, 2, 24, 2.0, 3);
  const auto motifs = MotifDiscovery().Discover(planted.windows).value();
  for (size_t i = 1; i < motifs.size(); ++i) {
    EXPECT_GE(motifs[i - 1].support(), motifs[i].support());
  }
}

TEST(MotifDiscoveryTest, EqualSupportTieBreaksOnFirstMemberIndex) {
  // Three planted families of identical size -> three equal-support motifs.
  // The reported order must be deterministic: descending support, ties
  // broken by the earliest member index.
  const auto planted = MakePlanted(3, 4, 0, 24, 1.0, 17);
  const auto motifs = MotifDiscovery().Discover(planted.windows).value();
  ASSERT_GE(motifs.size(), 2u);
  for (size_t i = 1; i < motifs.size(); ++i) {
    const auto& prev = motifs[i - 1];
    const auto& cur = motifs[i];
    if (prev.support() == cur.support()) {
      EXPECT_LT(prev.members.front(), cur.members.front());
    } else {
      EXPECT_GT(prev.support(), cur.support());
    }
  }
  // Repeated discovery over the same input returns the same order.
  const auto again = MotifDiscovery().Discover(planted.windows).value();
  ASSERT_EQ(again.size(), motifs.size());
  for (size_t i = 0; i < motifs.size(); ++i) {
    EXPECT_EQ(again[i].members, motifs[i].members);
  }
}

TEST(MotifDiscoveryTest, MinSupportFiltersSingletons) {
  const auto planted = MakePlanted(1, 3, 5, 24, 2.0, 4);
  const auto motifs = MotifDiscovery().Discover(planted.windows).value();
  for (const auto& motif : motifs) EXPECT_GE(motif.support(), 2u);
}

TEST(MotifDiscoveryTest, GroupSimilarityEnforced) {
  // Verify Definition 5's group property on discovered motifs directly.
  const auto planted = MakePlanted(2, 5, 3, 24, 4.0, 5);
  MotifOptions options;
  const auto motifs = MotifDiscovery(options).Discover(planted.windows).value();
  for (const auto& motif : motifs) {
    for (size_t i = 0; i < motif.members.size(); ++i) {
      for (size_t j = i + 1; j < motif.members.size(); ++j) {
        const double cor =
            CorrelationSimilarity(
                planted.windows[motif.members[i]].values(),
                planted.windows[motif.members[j]].values())
                .value;
        // Members were admitted under group_factor·phi, and the merge phase
        // under merge_threshold; the weaker bound must hold for all pairs.
        EXPECT_GE(cor, std::min(options.group_factor * options.phi,
                                options.merge_threshold) -
                           1e-9);
      }
    }
  }
}

TEST(MotifDiscoveryTest, MergePhaseCombinesOverlappingFamilies) {
  // One family with tiny jitter split across two batches must end as a
  // single motif, not two.
  const auto a = MakePlanted(1, 4, 0, 24, 1.0, 6);
  const auto b = MakePlanted(1, 4, 0, 24, 1.0, 6);  // same seed → same shape
  std::vector<ts::TimeSeries> windows = a.windows;
  windows.insert(windows.end(), b.windows.begin(), b.windows.end());
  const auto motifs = MotifDiscovery().Discover(windows).value();
  ASSERT_FALSE(motifs.empty());
  EXPECT_EQ(motifs[0].support(), 8u);
}

TEST(MotifDiscoveryTest, AllZeroWindowsFormNoMotifs) {
  // Inactive (background-removed) windows must not correlate.
  std::vector<ts::TimeSeries> windows;
  for (int w = 0; w < 5; ++w) {
    windows.emplace_back(w * ts::kMinutesPerDay, 60,
                         std::vector<double>(24, 0.0));
  }
  const auto motifs = MotifDiscovery().Discover(windows).value();
  EXPECT_TRUE(motifs.empty());
}

TEST(MotifDiscoveryTest, InvalidInputs) {
  MotifDiscovery miner;
  EXPECT_FALSE(miner.Discover({}).ok());
  std::vector<ts::TimeSeries> uneven;
  uneven.emplace_back(0, 60, std::vector<double>(24, 1.0));
  uneven.emplace_back(0, 60, std::vector<double>(12, 1.0));
  EXPECT_FALSE(miner.Discover(uneven).ok());
  MotifOptions bad;
  bad.phi = 1.5;
  EXPECT_FALSE(MotifDiscovery(bad)
                   .Discover(MakePlanted(1, 3, 0, 24, 1.0, 7).windows)
                   .ok());
}

TEST(MotifShapeTest, ConsensusMatchesFamilyShape) {
  const auto planted = MakePlanted(1, 6, 0, 24, 2.0, 8);
  const auto motifs = MotifDiscovery().Discover(planted.windows).value();
  ASSERT_FALSE(motifs.empty());
  const auto shape = MotifShape(planted.windows, motifs[0]).value();
  ASSERT_EQ(shape.size(), 24u);
  // The consensus correlates strongly with a z-normalized member.
  const auto member = ts::ZNormalize(planted.windows[motifs[0].members[0]]);
  const auto sim = CorrelationSimilarity(shape, member.values());
  EXPECT_GT(sim.value, 0.9);
}

TEST(MotifShapeTest, EmptyMotifErrors) {
  const auto planted = MakePlanted(1, 3, 0, 24, 1.0, 9);
  EXPECT_FALSE(MotifShape(planted.windows, Motif{}).ok());
}

TEST(SupportHistogramTest, CountsBySupport) {
  std::vector<Motif> motifs(3);
  motifs[0].members = {0, 1, 2};
  motifs[1].members = {3, 4};
  motifs[2].members = {5, 6};
  const auto hist = SupportHistogram(motifs);
  ASSERT_EQ(hist.size(), 2u);
  EXPECT_EQ(hist[0].first, 2u);
  EXPECT_EQ(hist[0].second, 2u);
  EXPECT_EQ(hist[1].first, 3u);
  EXPECT_EQ(hist[1].second, 1u);
}

TEST(MotifsPerGatewayTest, CountsDistinctMotifs) {
  std::vector<Motif> motifs(2);
  motifs[0].members = {0, 1};
  motifs[1].members = {2, 3};
  // Gateway 7 contributes to both motifs, gateway 8 to one.
  std::vector<WindowProvenance> provenance(4);
  provenance[0] = {7, 0};
  provenance[1] = {8, 0};
  provenance[2] = {7, ts::kMinutesPerDay};
  provenance[3] = {7, 2 * ts::kMinutesPerDay};
  const auto counts = MotifsPerGateway(motifs, provenance);
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0].first, 7);
  EXPECT_EQ(counts[0].second, 2u);
  EXPECT_EQ(counts[1].first, 8);
  EXPECT_EQ(counts[1].second, 1u);
}

TEST(WithinGatewayFractionTest, RepeatedGatewaysCounted) {
  Motif motif;
  motif.members = {0, 1, 2, 3};
  std::vector<WindowProvenance> provenance(4);
  provenance[0] = {1, 0};
  provenance[1] = {1, 100};
  provenance[2] = {2, 0};
  provenance[3] = {3, 0};
  // Gateway 1 contributes 2 of 4 members.
  EXPECT_DOUBLE_EQ(WithinGatewayFraction(motif, provenance), 0.5);
}

TEST(WithinGatewayFractionTest, AllDistinctGatewaysIsZero) {
  Motif motif;
  motif.members = {0, 1};
  std::vector<WindowProvenance> provenance{{1, 0}, {2, 0}};
  EXPECT_DOUBLE_EQ(WithinGatewayFraction(motif, provenance), 0.0);
  EXPECT_DOUBLE_EQ(WithinGatewayFraction(Motif{}, provenance), 0.0);
}

}  // namespace
}  // namespace homets::core
