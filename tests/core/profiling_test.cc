#include "core/profiling.h"

#include <gtest/gtest.h>

#include "simgen/fleet.h"

namespace homets::core {
namespace {

simgen::GatewayTrace MakeGateway(int id = 0, uint64_t seed = 77) {
  simgen::SimConfig config;
  config.n_gateways = id + 1;
  config.weeks = 3;
  config.seed = seed;
  config.long_outage_prob = 0.0;
  config.unreliable_daily_prob = 0.0;
  return simgen::FleetGenerator(config).Generate(id);
}

TEST(ProfilingTest, ProducesCompleteProfile) {
  const auto gw = MakeGateway();
  const auto profile = ProfileGateway(gw).value();
  EXPECT_EQ(profile.gateway_id, gw.id);
  EXPECT_GE(profile.devices_observed, 1u);
  EXPECT_GE(profile.min_residents, 1u);
  EXPECT_GE(profile.quietest_slot, 0);
  EXPECT_LT(profile.quietest_slot, 8);
  EXPECT_GE(profile.evening_share, 0.0);
  EXPECT_LE(profile.evening_share, 1.0);
  EXPECT_FALSE(profile.device_tau_groups.empty());
}

TEST(ProfilingTest, MinResidentsLowerBoundsDominants) {
  const auto gw = MakeGateway(2, 91);
  const auto profile = ProfileGateway(gw).value();
  EXPECT_GE(profile.min_residents,
            std::max<size_t>(1, profile.dominant_devices.size()));
}

TEST(ProfilingTest, QuietestSlotIsNight) {
  // Behavior profiles concentrate usage in the day/evening, so the quietest
  // slot should be in the small hours for most homes.
  size_t night_count = 0, total = 0;
  for (int id = 0; id < 6; ++id) {
    const auto profile = ProfileGateway(MakeGateway(id, 101)).value();
    ++total;
    if (profile.quietest_slot <= 2) ++night_count;  // 00:00–09:00
  }
  EXPECT_GT(night_count, total / 2);
}

TEST(ProfilingTest, EmptyGatewayErrors) {
  simgen::GatewayTrace empty;
  EXPECT_FALSE(ProfileGateway(empty).ok());
}

TEST(ProfilingTest, FormatContainsKeyFacts) {
  const auto profile = ProfileGateway(MakeGateway()).value();
  const std::string report = FormatProfile(profile);
  EXPECT_NE(report.find("gateway 0"), std::string::npos);
  EXPECT_NE(report.find("maintenance window"), std::string::npos);
  EXPECT_NE(report.find("weekly pattern"), std::string::npos);
  if (!profile.dominant_devices.empty()) {
    EXPECT_NE(report.find("dominant #1"), std::string::npos);
  }
}

TEST(ProfilingTest, DominanceOptionsRespected) {
  const auto gw = MakeGateway(1, 55);
  ProfilingOptions strict;
  strict.dominance.phi = 0.95;
  const auto strict_profile = ProfileGateway(gw, strict).value();
  const auto default_profile = ProfileGateway(gw).value();
  EXPECT_LE(strict_profile.dominant_devices.size(),
            default_profile.dominant_devices.size());
}

}  // namespace
}  // namespace homets::core
