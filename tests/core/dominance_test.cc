#include "core/dominance.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace homets::core {
namespace {

// Builds a gateway with one heavy driver device, one light follower and one
// idle device.
simgen::GatewayTrace PlantedGateway(uint64_t seed, size_t minutes = 4000) {
  Rng rng(seed);
  simgen::GatewayTrace gw;
  std::vector<double> heavy(minutes), light(minutes), idle(minutes);
  for (size_t m = 0; m < minutes; ++m) {
    const bool evening = (m / 60) % 24 >= 18;
    heavy[m] = evening && rng.Bernoulli(0.5) ? rng.LogNormal(std::log(8e5), 0.5)
                                             : rng.LogNormal(std::log(200), 0.5);
    light[m] = rng.LogNormal(std::log(300), 0.6);
    idle[m] = rng.LogNormal(std::log(50), 0.3);
  }
  auto make_dev = [&](const std::string& name, std::vector<double> in,
                      simgen::DeviceType type) {
    simgen::DeviceTrace dev;
    dev.name = name;
    dev.true_type = type;
    dev.reported_type = type;
    std::vector<double> out(in.size());
    for (size_t i = 0; i < in.size(); ++i) out[i] = 0.1 * in[i];
    dev.incoming = ts::TimeSeries(0, 1, std::move(in));
    dev.outgoing = ts::TimeSeries(0, 1, std::move(out));
    return dev;
  };
  gw.devices.push_back(
      make_dev("heavy", heavy, simgen::DeviceType::kFixed));
  gw.devices.push_back(
      make_dev("light", light, simgen::DeviceType::kPortable));
  gw.devices.push_back(
      make_dev("idle", idle, simgen::DeviceType::kPortable));
  return gw;
}

TEST(DominanceTest, HeavyDeviceDominates) {
  const auto gw = PlantedGateway(1);
  const auto dominants = FindDominantDevices(gw);
  ASSERT_GE(dominants.size(), 1u);
  EXPECT_EQ(dominants[0].device_index, 0u);
  EXPECT_GT(dominants[0].similarity, 0.6);
  EXPECT_EQ(dominants[0].reported_type, simgen::DeviceType::kFixed);
}

TEST(DominanceTest, RankedDescendingBySimilarity) {
  const auto gw = PlantedGateway(2);
  const auto dominants = FindDominantDevices(gw);
  for (size_t i = 1; i < dominants.size(); ++i) {
    EXPECT_GE(dominants[i - 1].similarity, dominants[i].similarity);
  }
}

TEST(DominanceTest, StricterPhiFindsFewer) {
  const auto gw = PlantedGateway(3);
  DominanceOptions loose;
  loose.phi = 0.6;
  DominanceOptions strict;
  strict.phi = 0.8;
  EXPECT_GE(FindDominantDevices(gw, loose).size(),
            FindDominantDevices(gw, strict).size());
}

TEST(DominanceTest, MaxDevicesCapRespected) {
  auto gw = PlantedGateway(4);
  DominanceOptions options;
  options.phi = -1.0;  // admit everything
  options.max_devices = 2;
  EXPECT_EQ(FindDominantDevices(gw, options).size(), 2u);
}

TEST(DominanceTest, EmptyGatewayHasNoDominants) {
  simgen::GatewayTrace gw;
  EXPECT_TRUE(FindDominantDevices(gw).empty());
}

TEST(DominanceInWindowTest, WindowRestrictedDominance) {
  const auto gw = PlantedGateway(5, 4320);  // 3 days
  // Dominance over the second day at hourly bins.
  const auto dominants = FindDominantDevicesInWindow(
      gw, ts::kMinutesPerDay, 2 * ts::kMinutesPerDay, 60, 0);
  ASSERT_GE(dominants.size(), 1u);
  EXPECT_EQ(dominants[0].device_index, 0u);
}

TEST(DominanceInWindowTest, EmptyWindowYieldsNothing) {
  const auto gw = PlantedGateway(6, 1440);
  const auto dominants = FindDominantDevicesInWindow(
      gw, 10 * ts::kMinutesPerDay, 11 * ts::kMinutesPerDay, 60, 0);
  EXPECT_TRUE(dominants.empty());
}

TEST(RankingTest, VolumeRankingPutsHeaviestFirst) {
  const auto gw = PlantedGateway(7);
  const auto order = RankDevicesByVolume(gw);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 0u);  // heavy device produces the most bytes
}

TEST(RankingTest, EuclideanRankingFindsClosestToAggregate) {
  const auto gw = PlantedGateway(8);
  const auto order = RankDevicesByEuclidean(gw);
  ASSERT_EQ(order.size(), 3u);
  // The heavy device constitutes most of the aggregate, so it is closest.
  EXPECT_EQ(order[0], 0u);
}

TEST(RankingTest, AgreementCountsPositionalMatches) {
  std::vector<DominantDevice> dominants(2);
  dominants[0].device_index = 4;
  dominants[1].device_index = 2;
  EXPECT_EQ(CountRankAgreement(dominants, {4, 2, 0}), 2u);
  EXPECT_EQ(CountRankAgreement(dominants, {2, 4, 0}), 0u);
  EXPECT_EQ(CountRankAgreement(dominants, {4, 0, 2}), 1u);
  EXPECT_EQ(CountRankAgreement({}, {1, 2}), 0u);
}

TEST(DominanceTest, DisconnectedMinutesCountAsZeroTraffic) {
  // The paper compares every device on the gateway's full observation grid:
  // a portable that only connects during the busy hours must not get credit
  // for the quiet hours it never reported. Build a gateway where a
  // fair-weather device matches the aggregate perfectly *while connected*
  // but is absent during the quiet half of the day.
  const size_t minutes = 4000;
  Rng rng(21);
  std::vector<double> driver(minutes), fair_weather(
                                           minutes, ts::TimeSeries::Missing());
  for (size_t m = 0; m < minutes; ++m) {
    const bool busy = (m / 60) % 24 >= 12;
    driver[m] = busy ? rng.LogNormal(std::log(5e5), 0.3)
                     : rng.LogNormal(std::log(200), 0.3);
    if (busy) {
      // Tracks the driver tightly, but only exists when connected.
      fair_weather[m] = 0.5 * driver[m];
    }
  }
  simgen::GatewayTrace gw;
  auto make_dev = [&](const std::string& name, std::vector<double> in) {
    simgen::DeviceTrace dev;
    dev.name = name;
    dev.incoming = ts::TimeSeries(0, 1, std::move(in));
    dev.outgoing = ts::TimeSeries(0, 1, std::vector<double>(minutes, 0.0));
    return dev;
  };
  gw.devices.push_back(make_dev("driver", driver));
  gw.devices.push_back(make_dev("fair_weather", fair_weather));

  const auto dominants = FindDominantDevices(gw);
  ASSERT_FALSE(dominants.empty());
  // The always-on driver must outrank the fair-weather device: on the full
  // grid the fair-weather zeros *do* coincide with the aggregate's quiet
  // half, but its during-connection contribution is half the driver's.
  EXPECT_EQ(dominants[0].device_index, 0u);
}

TEST(RankingTest, EuclideanUsesSameGridAsDominance) {
  // A device missing for most of the trace must not look artificially close
  // to the aggregate just because its few observed minutes match: missing
  // minutes are zero traffic on the comparison grid, so the distance to the
  // aggregate stays large.
  const size_t minutes = 2000;
  Rng rng(22);
  std::vector<double> steady(minutes);
  std::vector<double> brief(minutes, ts::TimeSeries::Missing());
  for (size_t m = 0; m < minutes; ++m) {
    steady[m] = rng.LogNormal(std::log(1e5), 0.3);
  }
  for (size_t m = 0; m < 20; ++m) brief[m] = steady[m];  // perfect, briefly
  simgen::GatewayTrace gw;
  auto make_dev = [&](const std::string& name, std::vector<double> in) {
    simgen::DeviceTrace dev;
    dev.name = name;
    dev.incoming = ts::TimeSeries(0, 1, std::move(in));
    dev.outgoing = ts::TimeSeries(0, 1, std::vector<double>(minutes, 0.0));
    return dev;
  };
  gw.devices.push_back(make_dev("steady", steady));
  gw.devices.push_back(make_dev("brief", brief));
  const auto order = RankDevicesByEuclidean(gw);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 0u);
}

TEST(RankingTest, CorrelationDominanceCanDisagreeWithVolume) {
  // A device that follows the aggregate's *shape* with low volume: the
  // paper's Section 6.2 case where correlation finds what volume misses.
  Rng rng(9);
  const size_t minutes = 4000;
  std::vector<double> driver(minutes), shadow(minutes), blob(minutes);
  for (size_t m = 0; m < minutes; ++m) {
    const bool evening = (m / 60) % 24 >= 18;
    driver[m] = evening ? rng.LogNormal(std::log(6e5), 0.4) : 0.0;
    shadow[m] = 0.01 * driver[m] + rng.LogNormal(std::log(20), 0.3);
    blob[m] = rng.LogNormal(std::log(4e5), 0.2);  // huge flat volume
  }
  simgen::GatewayTrace gw;
  auto make_dev = [&](const std::string& name, std::vector<double> in) {
    simgen::DeviceTrace dev;
    dev.name = name;
    dev.incoming = ts::TimeSeries(0, 1, std::move(in));
    dev.outgoing = ts::TimeSeries(0, 1, std::vector<double>(minutes, 0.0));
    return dev;
  };
  gw.devices.push_back(make_dev("driver", driver));
  gw.devices.push_back(make_dev("shadow", shadow));
  gw.devices.push_back(make_dev("blob", blob));

  const auto dominants = FindDominantDevices(gw);
  const auto by_volume = RankDevicesByVolume(gw);
  // Shadow correlates with the aggregate far better than its volume rank.
  bool shadow_dominant = false;
  for (const auto& d : dominants) {
    if (d.device_index == 1) shadow_dominant = true;
  }
  EXPECT_TRUE(shadow_dominant);
  EXPECT_NE(by_volume[1], 1u);  // volume ranking puts shadow last or middle
}

}  // namespace
}  // namespace homets::core
