#include "core/streaming.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "core/motif.h"

namespace homets::core {
namespace {

TEST(WindowAssemblerTest, EmitsCompletedWindows) {
  auto assembler = WindowAssembler::Make(60, 20, 0).value();
  // Feed minutes 0..59: nothing emitted yet.
  for (int64_t m = 0; m < 60; ++m) {
    const auto out = assembler.Ingest(1, m, 1.0).value();
    EXPECT_TRUE(out.empty()) << "minute " << m;
  }
  // Minute 60 closes the first window.
  const auto out = assembler.Ingest(1, 60, 1.0).value();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].start_minute(), 0);
  EXPECT_EQ(out[0].step_minutes(), 20);
  ASSERT_EQ(out[0].size(), 3u);
  EXPECT_DOUBLE_EQ(out[0][0], 20.0);  // 20 minutes × 1 byte
  EXPECT_DOUBLE_EQ(out[0][2], 20.0);
}

TEST(WindowAssemblerTest, GapsEmitWindowsWithMissingBins) {
  auto assembler = WindowAssembler::Make(60, 20, 0).value();
  ASSERT_TRUE(assembler.Ingest(1, 0, 5.0).ok());
  // Jump across two full windows.
  const auto out = assembler.Ingest(1, 130, 7.0).value();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0][0], 5.0);
  EXPECT_TRUE(ts::TimeSeries::IsMissing(out[0][1]));
  // Second window entirely missing.
  EXPECT_TRUE(ts::TimeSeries::IsMissing(out[1][0]));
  EXPECT_TRUE(ts::TimeSeries::IsMissing(out[1][2]));
}

TEST(WindowAssemblerTest, AnchorAlignsWindows) {
  auto assembler = WindowAssembler::Make(60, 30, 15).value();
  const auto none = assembler.Ingest(0, 20, 1.0).value();
  EXPECT_TRUE(none.empty());
  const auto out = assembler.Ingest(0, 80, 1.0).value();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].start_minute(), 15);
}

TEST(WindowAssemblerTest, PerGatewayIsolation) {
  auto assembler = WindowAssembler::Make(60, 60, 0).value();
  ASSERT_TRUE(assembler.Ingest(1, 0, 1.0).ok());
  ASSERT_TRUE(assembler.Ingest(2, 0, 2.0).ok());
  const auto out1 = assembler.Ingest(1, 60, 0.0).value();
  ASSERT_EQ(out1.size(), 1u);
  EXPECT_DOUBLE_EQ(out1[0][0], 1.0);
  const auto out2 = assembler.Ingest(2, 60, 0.0).value();
  ASSERT_EQ(out2.size(), 1u);
  EXPECT_DOUBLE_EQ(out2[0][0], 2.0);
}

TEST(WindowAssemblerTest, RejectsLateMinutes) {
  auto assembler = WindowAssembler::Make(60, 20, 0).value();
  ASSERT_TRUE(assembler.Ingest(1, 70, 1.0).ok());
  EXPECT_FALSE(assembler.Ingest(1, 30, 1.0).ok());
}

TEST(WindowAssemblerTest, FlushReturnsPartials) {
  auto assembler = WindowAssembler::Make(60, 20, 0).value();
  ASSERT_TRUE(assembler.Ingest(7, 10, 3.0).ok());
  auto flushed = assembler.Flush();
  ASSERT_EQ(flushed.size(), 1u);
  EXPECT_EQ(flushed[0].first, 7);
  EXPECT_DOUBLE_EQ(flushed[0].second[0], 3.0);
  // Second flush has nothing.
  EXPECT_TRUE(assembler.Flush().empty());
}

TEST(WindowAssemblerTest, InvalidConfigs) {
  EXPECT_FALSE(WindowAssembler::Make(0, 10, 0).ok());
  EXPECT_FALSE(WindowAssembler::Make(60, 0, 0).ok());
  EXPECT_FALSE(WindowAssembler::Make(60, 25, 0).ok());
}

// -- StreamingMotifMiner ----------------------------------------------------

ts::TimeSeries ShapedWindow(int family, int64_t start, Rng* rng) {
  std::vector<double> v(24);
  for (size_t i = 0; i < v.size(); ++i) {
    const double base =
        200.0 + 150.0 * std::sin(2.0 * M_PI *
                                     static_cast<double>((family + 1) * i) /
                                     24.0 +
                                 (family % 2 == 0 ? 0.0 : M_PI / 2.0));
    v[i] = base + 3.0 * rng->Normal();
  }
  return ts::TimeSeries(start, 60, std::move(v));
}

TEST(StreamingMotifMinerTest, GroupsStreamedFamilies) {
  Rng rng(1);
  StreamingMotifMiner miner(MotifOptions{}, 1000);
  std::vector<size_t> ids;
  for (int i = 0; i < 12; ++i) {
    const int family = i % 2;
    const auto id = miner.AddWindow(
        family, ShapedWindow(family, i * ts::kMinutesPerDay, &rng));
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  const auto motifs = miner.CurrentMotifs();
  ASSERT_EQ(motifs.size(), 2u);
  EXPECT_EQ(motifs[0].support(), 6u);
  EXPECT_EQ(motifs[1].support(), 6u);
  // Same family → same stable motif id.
  for (int i = 2; i < 12; ++i) {
    EXPECT_EQ(ids[static_cast<size_t>(i)], ids[static_cast<size_t>(i % 2)]);
  }
}

TEST(StreamingMotifMinerTest, MatchesBatchDiscoveryOnSameWindows) {
  Rng rng(2);
  std::vector<ts::TimeSeries> windows;
  for (int i = 0; i < 18; ++i) {
    windows.push_back(ShapedWindow(i % 3, i * ts::kMinutesPerDay, &rng));
  }
  StreamingMotifMiner miner(MotifOptions{}, 1000);
  for (size_t i = 0; i < windows.size(); ++i) {
    ASSERT_TRUE(miner.AddWindow(0, windows[i]).ok());
  }
  const auto streamed = miner.CurrentMotifs();
  const auto batch = MotifDiscovery().Discover(windows).value();
  ASSERT_EQ(streamed.size(), batch.size());
  for (size_t m = 0; m < streamed.size(); ++m) {
    EXPECT_EQ(streamed[m].support(), batch[m].support());
  }
}

TEST(StreamingMotifMinerTest, EvictionBoundsMemory) {
  Rng rng(3);
  StreamingMotifMiner miner(MotifOptions{}, 8);
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(
        miner.AddWindow(0, ShapedWindow(0, i * ts::kMinutesPerDay, &rng)).ok());
  }
  EXPECT_EQ(miner.windows_retained(), 8u);
  EXPECT_EQ(miner.windows_seen(), 40u);
  const auto motifs = miner.CurrentMotifs();
  ASSERT_EQ(motifs.size(), 1u);
  EXPECT_EQ(motifs[0].support(), 8u);  // support counts retained members only
}

TEST(StreamingMotifMinerTest, NoiseWindowsFormNoRealMotifs) {
  // Independent noise windows: a support-2 pairing can arise by chance
  // (45 pairs at the 5% significance gate), but no recurring pattern of
  // support >= 3 may appear.
  Rng rng(4);
  StreamingMotifMiner miner(MotifOptions{}, 100);
  for (int i = 0; i < 10; ++i) {
    std::vector<double> v(24);
    for (auto& x : v) x = rng.Uniform(0.0, 1000.0);
    ASSERT_TRUE(
        miner.AddWindow(0, ts::TimeSeries(i * ts::kMinutesPerDay, 60, v)).ok());
  }
  for (const auto& motif : miner.CurrentMotifs()) {
    EXPECT_LT(motif.support(), 3u);
  }
}

TEST(StreamingMotifMinerTest, LengthMismatchRejected) {
  Rng rng(5);
  StreamingMotifMiner miner(MotifOptions{}, 100);
  ASSERT_TRUE(miner.AddWindow(0, ShapedWindow(0, 0, &rng)).ok());
  ts::TimeSeries shorter(0, 60, std::vector<double>(12, 1.0));
  EXPECT_FALSE(miner.AddWindow(0, shorter).ok());
}

TEST(StreamingMotifMinerTest, ProvenanceTracksArrivals) {
  Rng rng(6);
  StreamingMotifMiner miner(MotifOptions{}, 100);
  ASSERT_TRUE(miner.AddWindow(42, ShapedWindow(0, 1234 * 1440, &rng)).ok());
  ASSERT_EQ(miner.provenance().size(), 1u);
  EXPECT_EQ(miner.provenance()[0].gateway_id, 42);
  EXPECT_EQ(miner.provenance()[0].start_minute, 1234 * 1440);
}

TEST(EndToEndStreamingTest, AssemblerFeedsMiner) {
  // Minute-level stream of a strict evening user: the pipeline must surface
  // one evening motif.
  Rng rng(7);
  auto assembler = WindowAssembler::Make(ts::kMinutesPerDay, 180, 0).value();
  StreamingMotifMiner miner(MotifOptions{}, 100);
  for (int64_t m = 0; m < 14 * ts::kMinutesPerDay; ++m) {
    const int hour = static_cast<int>(ts::MinuteOfDay(m) / 60);
    double value = 0.0;
    if (hour >= 19 && hour < 22) value = rng.LogNormal(std::log(4e5), 0.3);
    const auto completed = assembler.Ingest(3, m, value).value();
    for (const auto& window : completed) {
      ASSERT_TRUE(miner.AddWindow(3, window).ok());
    }
  }
  const auto motifs = miner.CurrentMotifs();
  ASSERT_FALSE(motifs.empty());
  EXPECT_GE(motifs[0].support(), 10u);
}

}  // namespace
}  // namespace homets::core
