#include "core/similarity_engine.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "common/cancellation.h"
#include "common/failpoint.h"
#include "common/random.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/profiling.h"
#include "core/similarity.h"

namespace homets::core {
namespace {

bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

std::vector<std::vector<double>> RandomWindows(size_t count, size_t bins,
                                               uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> windows(count);
  for (auto& w : windows) {
    w.resize(bins);
    for (auto& v : w) v = rng.LogNormal(std::log(500.0), 1.0);
  }
  return windows;
}

TEST(SimilarityMatrixTest, CondensedIndexRoundTrips) {
  for (const size_t n : {2u, 3u, 7u, 40u}) {
    size_t k = 0;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j, ++k) {
        EXPECT_EQ(SimilarityMatrix::CondensedIndex(n, i, j), k);
        EXPECT_EQ(SimilarityMatrix::CondensedIndex(n, j, i), k);  // symmetric
        const auto [pi, pj] = SimilarityMatrix::PairAt(n, k);
        EXPECT_EQ(pi, i);
        EXPECT_EQ(pj, j);
      }
    }
    EXPECT_EQ(SimilarityMatrix(n).pair_count(), n * (n - 1) / 2);
  }
}

TEST(SimilarityEngineTest, MatchesLegacyVectorPathBitwise) {
  const auto windows = RandomWindows(24, 56, 7);
  const SimilarityEngine engine;
  const SimilarityMatrix matrix =
      engine.Pairwise(SimilarityEngine::PrepareVectors(windows));
  for (size_t i = 0; i < windows.size(); ++i) {
    for (size_t j = i + 1; j < windows.size(); ++j) {
      const SimilarityResult legacy =
          CorrelationSimilarity(windows[i], windows[j]);
      const SimilarityResult& fast = matrix.At(i, j);
      EXPECT_TRUE(SameBits(fast.value, legacy.value));
      EXPECT_EQ(fast.source, legacy.source);
      EXPECT_EQ(fast.significant, legacy.significant);
      EXPECT_EQ(fast.n, legacy.n);
    }
  }
}

TEST(SimilarityEngineTest, DeterministicAcrossThreadCounts) {
  // 48 windows -> 1128 pairs, above min_parallel_pairs so the pool engages.
  const auto windows = RandomWindows(48, 56, 8);
  const auto prepared = SimilarityEngine::PrepareVectors(windows);
  std::vector<SimilarityResult> reference;
  for (const int threads : {1, 4, ResolveThreadCount(0)}) {
    SimilarityEngineOptions options;
    options.threads = threads;
    const SimilarityMatrix matrix = SimilarityEngine(options).Pairwise(prepared);
    if (reference.empty()) {
      reference = matrix.cells();
      continue;
    }
    ASSERT_EQ(matrix.cells().size(), reference.size());
    for (size_t k = 0; k < reference.size(); ++k) {
      EXPECT_TRUE(SameBits(matrix.cells()[k].value, reference[k].value))
          << "pair " << k << " at " << threads << " threads";
      EXPECT_EQ(matrix.cells()[k].source, reference[k].source);
    }
  }
}

TEST(SimilarityEngineTest, HandlesDegenerateWindows) {
  // Constant, NaN-laden and short windows must flow through the engine the
  // same way the legacy path treats them: value 0, not errors or crashes.
  std::vector<std::vector<double>> windows = {
      std::vector<double>(10, 3.0),                    // constant
      {1.0, std::nan(""), 2.0, 4.0, 1.0, 0.5, 2.0, 3.0, 1.0, 2.0},  // NaN
      {1.0, 2.0},                                      // too short
  };
  for (auto& w : RandomWindows(3, 10, 9)) windows.push_back(std::move(w));
  const SimilarityEngine engine;
  const SimilarityMatrix matrix =
      engine.Pairwise(SimilarityEngine::PrepareVectors(windows));
  for (size_t i = 0; i < windows.size(); ++i) {
    for (size_t j = i + 1; j < windows.size(); ++j) {
      const SimilarityResult legacy =
          CorrelationSimilarity(windows[i], windows[j]);
      EXPECT_TRUE(SameBits(matrix.At(i, j).value, legacy.value));
    }
  }
}

TEST(SimilarityEngineTest, PairwiseSelectedMatchesFullMatrix) {
  const auto windows = RandomWindows(12, 21, 10);
  const auto prepared = SimilarityEngine::PrepareVectors(windows);
  const SimilarityEngine engine;
  const SimilarityMatrix full = engine.Pairwise(prepared);
  // An arbitrary subset, out of row-major order.
  const std::vector<std::pair<uint32_t, uint32_t>> pairs = {
      {3, 9}, {0, 1}, {5, 6}, {0, 11}, {2, 7}};
  const std::vector<SimilarityResult> selected =
      engine.PairwiseSelected(prepared, pairs);
  ASSERT_EQ(selected.size(), pairs.size());
  for (size_t k = 0; k < pairs.size(); ++k) {
    EXPECT_TRUE(SameBits(selected[k].value,
                         full.At(pairs[k].first, pairs[k].second).value));
  }
}

TEST(SimilarityEngineTest, CondensedDistancesMatchCorrelationDistance) {
  const auto windows = RandomWindows(10, 56, 11);
  const SimilarityEngine engine;
  const SimilarityMatrix matrix =
      engine.Pairwise(SimilarityEngine::PrepareVectors(windows));
  const std::vector<double> distances = matrix.CondensedDistances();
  ASSERT_EQ(distances.size(), matrix.pair_count());
  size_t k = 0;
  for (size_t i = 0; i < windows.size(); ++i) {
    for (size_t j = i + 1; j < windows.size(); ++j, ++k) {
      EXPECT_TRUE(SameBits(distances[k],
                           CorrelationDistance(windows[i], windows[j])));
    }
  }
  EXPECT_DOUBLE_EQ(matrix.Value(3, 3), 1.0);  // diagonal convention
}

TEST(SimilarityEngineCheckedTest, MatchesPairwiseBitwiseWithNoFaults) {
  Failpoints::Global().Reset();
  const auto windows = RandomWindows(48, 56, 12);
  const auto prepared = SimilarityEngine::PrepareVectors(windows);
  const SimilarityMatrix reference = SimilarityEngine().Pairwise(prepared);
  for (const int threads : {1, 4}) {
    SimilarityEngineOptions options;
    options.threads = threads;
    const Result<SimilarityMatrix> checked =
        SimilarityEngine(options).PairwiseChecked(prepared);
    ASSERT_TRUE(checked.ok()) << checked.status().ToString();
    EXPECT_TRUE(checked->complete());
    ASSERT_EQ(checked->cells().size(), reference.cells().size());
    for (size_t k = 0; k < reference.cells().size(); ++k) {
      EXPECT_TRUE(
          SameBits(checked->cells()[k].value, reference.cells()[k].value))
          << "pair " << k << " at " << threads << " threads";
    }
  }
}

TEST(SimilarityEngineCheckedTest, PreCancelledTokenReturnsCancelled) {
  const auto prepared =
      SimilarityEngine::PrepareVectors(RandomWindows(10, 21, 13));
  CancellationToken cancel;
  cancel.Cancel();
  SimilarityEngineOptions options;
  options.cancel = &cancel;
  const Result<SimilarityMatrix> checked =
      SimilarityEngine(options).PairwiseChecked(prepared);
  EXPECT_EQ(checked.status().code(), StatusCode::kCancelled);
}

TEST(SimilarityEngineCheckedTest, ExpiredDeadlineReturnsDeadlineExceeded) {
  const auto prepared =
      SimilarityEngine::PrepareVectors(RandomWindows(10, 21, 14));
  SimilarityEngineOptions options;
  options.deadline_ms = 1e-9;  // expired before the first block is checked
  const Result<SimilarityMatrix> checked =
      SimilarityEngine(options).PairwiseChecked(prepared);
  EXPECT_EQ(checked.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(SimilarityEngineCheckedTest, InjectedBlockFailureIsAnErrorByDefault) {
  Failpoints::Global().Reset();
  ASSERT_TRUE(Failpoints::Global().Configure("engine.pair_block=fail*1").ok());
  // 20 windows -> 190 pairs < min_parallel_pairs, so this runs single
  // threaded and the failing block is deterministically block 0.
  const auto prepared =
      SimilarityEngine::PrepareVectors(RandomWindows(20, 21, 15));
  const Result<SimilarityMatrix> checked =
      SimilarityEngine().PairwiseChecked(prepared);
  Failpoints::Global().Reset();
  EXPECT_EQ(checked.status().code(), StatusCode::kComputeError);
}

TEST(SimilarityEngineCheckedTest, DegradeModeMasksFailedBlockAndContinues) {
  Failpoints::Global().Reset();
  ASSERT_TRUE(Failpoints::Global().Configure("engine.pair_block=fail*1").ok());
  const auto windows = RandomWindows(20, 21, 15);
  const auto prepared = SimilarityEngine::PrepareVectors(windows);
  SimilarityEngineOptions options;
  options.degrade_on_failure = true;
  const Result<SimilarityMatrix> checked =
      SimilarityEngine(options).PairwiseChecked(prepared);
  Failpoints::Global().Reset();
  ASSERT_TRUE(checked.ok()) << checked.status().ToString();
  // Single-threaded (190 pairs), so exactly the first 64-pair block is lost.
  EXPECT_FALSE(checked->complete());
  EXPECT_EQ(checked->invalid_count(), 64u);
  const SimilarityMatrix reference = SimilarityEngine().Pairwise(prepared);
  const std::vector<double> distances = checked->CondensedDistances();
  for (size_t k = 0; k < checked->pair_count(); ++k) {
    if (k < 64) {
      EXPECT_FALSE(checked->IsValidIndex(k));
      EXPECT_DOUBLE_EQ(distances[k], 1.0);  // invalid -> maximum distance
    } else {
      EXPECT_TRUE(checked->IsValidIndex(k));
      EXPECT_TRUE(
          SameBits(checked->cells()[k].value, reference.cells()[k].value));
    }
  }
  const auto [i, j] = SimilarityMatrix::PairAt(prepared.size(), 0);
  EXPECT_FALSE(checked->IsValid(i, j));
  EXPECT_TRUE(checked->IsValid(i, i));  // diagonal is always valid
}

TEST(SimilarityEngineTest, RecordsPhaseTimings) {
  PhaseTimings timings;
  SimilarityEngineOptions options;
  options.timings = &timings;
  const SimilarityEngine engine(options);

  std::vector<ts::TimeSeries> series;
  for (size_t w = 0; w < 8; ++w) {
    std::vector<double> values(21);
    for (size_t i = 0; i < values.size(); ++i) {
      values[i] = static_cast<double>((w * 7 + i * 3) % 13);
    }
    series.emplace_back(0, 180, std::move(values));
  }
  const auto prepared = engine.Prepare(series);
  engine.Pairwise(prepared);
  EXPECT_GT(timings.TotalNs("similarity_engine.prepare"), 0u);
  EXPECT_GT(timings.TotalNs("similarity_engine.pairwise"), 0u);
  EXPECT_NE(timings.Report().find("similarity_engine.pairwise"),
            std::string::npos);
}

}  // namespace
}  // namespace homets::core
