#include <gtest/gtest.h>

#include <vector>

#include "core/motif_analysis.h"

namespace homets::core {
namespace {

std::vector<double> DailyShapeVector(std::initializer_list<int> hot_slots) {
  std::vector<double> shape(8, -0.5);
  for (int s : hot_slots) shape[static_cast<size_t>(s)] = 2.0;
  return shape;
}

TEST(DailyShapeTest, LateEvening) {
  EXPECT_EQ(ClassifyDailyShape(DailyShapeVector({6})).value(),
            DailyShape::kLateEvening);
  EXPECT_EQ(ClassifyDailyShape(DailyShapeVector({6, 7})).value(),
            DailyShape::kLateEvening);
}

TEST(DailyShapeTest, Afternoon) {
  EXPECT_EQ(ClassifyDailyShape(DailyShapeVector({4, 5})).value(),
            DailyShape::kAfternoon);
}

TEST(DailyShapeTest, Morning) {
  EXPECT_EQ(ClassifyDailyShape(DailyShapeVector({2, 3})).value(),
            DailyShape::kMorning);
}

TEST(DailyShapeTest, MorningAndEvening) {
  EXPECT_EQ(ClassifyDailyShape(DailyShapeVector({2, 7})).value(),
            DailyShape::kMorningAndEvening);
}

TEST(DailyShapeTest, AllDay) {
  EXPECT_EQ(ClassifyDailyShape(DailyShapeVector({1, 2, 3, 4, 5, 6})).value(),
            DailyShape::kAllDay);
}

TEST(DailyShapeTest, WrongLengthErrors) {
  EXPECT_FALSE(ClassifyDailyShape(std::vector<double>(7, 0.0)).ok());
}

TEST(DailyShapeTest, NamesAreHuman) {
  EXPECT_EQ(DailyShapeName(DailyShape::kLateEvening), "late evening");
  EXPECT_EQ(DailyShapeName(DailyShape::kAllDay), "all day");
}

std::vector<double> WeeklyShapeVector(std::initializer_list<int> hot_days) {
  std::vector<double> shape(21, -0.5);
  for (int d : hot_days) {
    shape[static_cast<size_t>(3 * d + 2)] = 2.0;  // evening slot of the day
  }
  return shape;
}

TEST(WeeklyShapeTest, Everyday) {
  EXPECT_EQ(
      ClassifyWeeklyShape(WeeklyShapeVector({0, 1, 2, 3, 4, 5, 6})).value(),
      WeeklyShape::kEveryday);
}

TEST(WeeklyShapeTest, WeekendHeavy) {
  EXPECT_EQ(ClassifyWeeklyShape(WeeklyShapeVector({5, 6})).value(),
            WeeklyShape::kWeekendHeavy);
  // A Friday-evening ramp into the weekend still reads as weekend-heavy —
  // exactly the paper's Figure 11a motif.
  EXPECT_EQ(ClassifyWeeklyShape(WeeklyShapeVector({4, 5, 6})).value(),
            WeeklyShape::kWeekendHeavy);
}

TEST(WeeklyShapeTest, WorkdayHeavy) {
  EXPECT_EQ(ClassifyWeeklyShape(WeeklyShapeVector({0, 1, 2, 3, 4})).value(),
            WeeklyShape::kWorkdayHeavy);
  EXPECT_EQ(ClassifyWeeklyShape(WeeklyShapeVector({1, 2, 3})).value(),
            WeeklyShape::kWorkdayHeavy);
}

TEST(WeeklyShapeTest, WrongLengthErrors) {
  EXPECT_FALSE(ClassifyWeeklyShape(std::vector<double>(20, 0.0)).ok());
}

TEST(WeeklyShapeTest, Names) {
  EXPECT_EQ(WeeklyShapeName(WeeklyShape::kWeekendHeavy), "weekend heavy");
  EXPECT_EQ(WeeklyShapeName(WeeklyShape::kEveryday), "everyday");
}

}  // namespace
}  // namespace homets::core
