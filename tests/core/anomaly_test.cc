#include "core/anomaly.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "core/motif.h"

namespace homets::core {
namespace {

// A gateway world: gateway 1 repeats an evening shape on most days but has
// one wildly different day; gateway 2 contributes unrelated but regular
// morning days.
struct World {
  std::vector<ts::TimeSeries> windows;
  std::vector<WindowProvenance> provenance;
  size_t anomaly_index = 0;
};

World MakeWorld(uint64_t seed) {
  Rng rng(seed);
  World world;
  auto push = [&](int gateway, std::vector<double> v) {
    const int64_t start =
        static_cast<int64_t>(world.windows.size()) * ts::kMinutesPerDay;
    world.provenance.push_back({gateway, start});
    world.windows.emplace_back(start, 180, std::move(v));
  };
  auto evening = [&] {
    std::vector<double> v(8, 0.0);
    v[6] = 5e6 * rng.LogNormal(0.0, 0.1);
    v[7] = 7e6 * rng.LogNormal(0.0, 0.1);
    return v;
  };
  auto morning = [&] {
    std::vector<double> v(8, 0.0);
    v[2] = 4e6 * rng.LogNormal(0.0, 0.1);
    v[3] = 6e6 * rng.LogNormal(0.0, 0.1);
    return v;
  };
  for (int d = 0; d < 6; ++d) push(1, evening());
  // The anomalous day of gateway 1: all-night blast.
  {
    std::vector<double> v(8, 0.0);
    v[0] = 9e6;
    v[1] = 9e6;
    world.anomaly_index = world.windows.size();
    push(1, std::move(v));
  }
  for (int d = 0; d < 6; ++d) push(2, morning());
  return world;
}

TEST(AnomalyTest, FlagsTheDeviantDay) {
  const World world = MakeWorld(1);
  const auto motifs = MotifDiscovery().Discover(world.windows).value();
  ASSERT_GE(motifs.size(), 2u);
  const auto anomalies =
      FindPatternAnomalies(world.windows, world.provenance, motifs).value();
  ASSERT_EQ(anomalies.size(), 1u);
  EXPECT_EQ(anomalies[0].window_index, world.anomaly_index);
  EXPECT_EQ(anomalies[0].gateway_id, 1);
  EXPECT_LT(anomalies[0].best_pattern_similarity, 0.4);
  EXPECT_GT(anomalies[0].window_volume, 1e7);
}

TEST(AnomalyTest, RegularDaysNotFlagged) {
  const World world = MakeWorld(2);
  const auto motifs = MotifDiscovery().Discover(world.windows).value();
  const auto anomalies =
      FindPatternAnomalies(world.windows, world.provenance, motifs).value();
  for (const auto& anomaly : anomalies) {
    EXPECT_EQ(anomaly.window_index, world.anomaly_index);
  }
}

TEST(AnomalyTest, GatewaysWithoutPatternSkipped) {
  // A lone gateway whose days never repeat (a single disjoint spike per
  // day) forms no motifs → no anomalies, by design: no pattern, no
  // deviation.
  std::vector<ts::TimeSeries> windows;
  std::vector<WindowProvenance> provenance;
  for (int d = 0; d < 5; ++d) {
    std::vector<double> v(8, 0.0);
    v[static_cast<size_t>(d)] = 5e6;
    provenance.push_back({9, d * ts::kMinutesPerDay});
    windows.emplace_back(d * ts::kMinutesPerDay, 180, std::move(v));
  }
  const auto motifs = MotifDiscovery().Discover(windows).value();
  EXPECT_TRUE(motifs.empty());
  const auto anomalies =
      FindPatternAnomalies(windows, provenance, motifs).value();
  EXPECT_TRUE(anomalies.empty());
}

TEST(AnomalyTest, SortedMostDeviantFirst) {
  World world = MakeWorld(4);
  // Add a second, milder deviation: evening shifted by one slot.
  {
    std::vector<double> v(8, 0.0);
    v[5] = 5e6;
    v[6] = 7e6;
    const int64_t start =
        static_cast<int64_t>(world.windows.size()) * ts::kMinutesPerDay;
    world.provenance.push_back({1, start});
    world.windows.emplace_back(start, 180, std::move(v));
  }
  const auto motifs = MotifDiscovery().Discover(world.windows).value();
  AnomalyOptions options;
  options.similarity_floor = 0.9;  // catch both deviations
  const auto anomalies =
      FindPatternAnomalies(world.windows, world.provenance, motifs, options)
          .value();
  for (size_t i = 1; i < anomalies.size(); ++i) {
    EXPECT_LE(anomalies[i - 1].best_pattern_similarity,
              anomalies[i].best_pattern_similarity);
  }
}

TEST(AnomalyTest, InvalidInputs) {
  const World world = MakeWorld(5);
  const auto motifs = MotifDiscovery().Discover(world.windows).value();
  std::vector<WindowProvenance> short_provenance(world.provenance.begin(),
                                                 world.provenance.end() - 1);
  EXPECT_FALSE(
      FindPatternAnomalies(world.windows, short_provenance, motifs).ok());
  EXPECT_FALSE(FindPatternAnomalies({}, {}, motifs).ok());
}

}  // namespace
}  // namespace homets::core
