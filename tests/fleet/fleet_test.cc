// Fleet execution unit tests (DESIGN.md §15): shard planning, checkpoint
// encode/decode with torn/stale rejection, checkpoint-dir lock hygiene, and
// the deterministic merge — the report must be byte-identical across shard
// counts and thread counts.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/status.h"
#include "fleet/checkpoint.h"
#include "fleet/orchestrator.h"
#include "fleet/shard.h"
#include "simgen/fleet.h"
#include "storage/homets_format.h"

namespace homets {
namespace {

using fleet::FleetInputs;
using fleet::GatewaySummary;
using fleet::ShardPlan;
using fleet::ShardResult;

// A fresh per-test directory under the gtest temp root; tests run as
// separate ctest processes, so names must not collide across binaries.
// TempDir() outlives the process, so scrub leftovers from a previous run —
// stale checkpoints or LOCK files would change resume/lock outcomes.
std::string MakeTestDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/fleet_" + name;
  std::filesystem::remove_all(dir);
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

// A small synthetic fleet on disk as one out-of-core .homets file.
std::string WriteSmallFleet(const std::string& dir, int gateways = 6,
                            int weeks = 2) {
  simgen::SimConfig config;
  config.n_gateways = gateways;
  config.weeks = weeks;
  config.surveyed_gateways = std::min(config.surveyed_gateways, gateways);
  const std::string path = dir + "/fleet.homets";
  simgen::FleetGenerator generator(config);
  const auto stats = storage::WriteFleetHomets(generator, path);
  EXPECT_TRUE(stats.ok()) << stats.status().ToString();
  return path;
}

ShardResult MakeShardResult() {
  ShardResult result;
  result.plan = ShardPlan{3, 4, 6};
  GatewaySummary a;
  a.gateway_id = 4;
  a.eligible = true;
  a.devices_observed = 5;
  a.dominant_count = 2;
  a.min_residents = 3;
  a.weekly_stationary = true;
  a.quietest_slot = 1;
  a.evening_share = 0.37519;
  a.tau_small = 3;
  a.tau_medium = 1;
  a.tau_large = 1;
  a.daily_windows = 14;
  a.daily_motifs = 4;
  GatewaySummary b;
  b.gateway_id = 5;
  b.eligible = false;
  b.quietest_slot = -1;
  result.gateways = {a, b};
  result.zipf_bins.assign(fleet::kZipfBins, 0);
  result.zipf_bins[17] = 42;
  result.zipf_bins[90] = 7;
  result.values_binned = 49;
  return result;
}

bool SameSummary(const GatewaySummary& x, const GatewaySummary& y) {
  return x.gateway_id == y.gateway_id && x.eligible == y.eligible &&
         x.devices_observed == y.devices_observed &&
         x.dominant_count == y.dominant_count &&
         x.min_residents == y.min_residents &&
         x.weekly_stationary == y.weekly_stationary &&
         x.quietest_slot == y.quietest_slot &&
         std::memcmp(&x.evening_share, &y.evening_share, sizeof(double)) ==
             0 &&
         x.tau_small == y.tau_small && x.tau_medium == y.tau_medium &&
         x.tau_large == y.tau_large && x.daily_windows == y.daily_windows &&
         x.daily_motifs == y.daily_motifs;
}

// --- planner ---------------------------------------------------------------

TEST(ShardPlannerTest, PartitionsContiguouslyAndNearEqually) {
  const auto plans = fleet::ShardPlanner::Plan(10, 3);
  ASSERT_TRUE(plans.ok());
  ASSERT_EQ(plans->size(), 3u);
  // First n % s shards carry the remainder.
  EXPECT_EQ((*plans)[0].begin_gateway, 0);
  EXPECT_EQ((*plans)[0].end_gateway, 4);
  EXPECT_EQ((*plans)[1].begin_gateway, 4);
  EXPECT_EQ((*plans)[1].end_gateway, 7);
  EXPECT_EQ((*plans)[2].begin_gateway, 7);
  EXPECT_EQ((*plans)[2].end_gateway, 10);
  for (int s = 0; s < 3; ++s) EXPECT_EQ((*plans)[s].shard_index, s);
}

TEST(ShardPlannerTest, MoreShardsThanGatewaysYieldsEmptyShards) {
  const auto plans = fleet::ShardPlanner::Plan(2, 5);
  ASSERT_TRUE(plans.ok());
  ASSERT_EQ(plans->size(), 5u);
  EXPECT_EQ((*plans)[0].end_gateway - (*plans)[0].begin_gateway, 1);
  EXPECT_EQ((*plans)[1].end_gateway - (*plans)[1].begin_gateway, 1);
  for (size_t s = 2; s < 5; ++s) {
    EXPECT_EQ((*plans)[s].begin_gateway, (*plans)[s].end_gateway);
  }
}

TEST(ShardPlannerTest, RejectsBadArguments) {
  EXPECT_EQ(fleet::ShardPlanner::Plan(10, 0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(fleet::ShardPlanner::Plan(-1, 2).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ZipfBinTest, MonotoneAndClamped) {
  EXPECT_EQ(fleet::ZipfBinIndex(1e-300), 0u);
  EXPECT_EQ(fleet::ZipfBinIndex(1e300), fleet::kZipfBins - 1);
  size_t last = 0;
  for (double v = 1e-6; v < 1e9; v *= 3.0) {
    const size_t bin = fleet::ZipfBinIndex(v);
    EXPECT_GE(bin, last);
    EXPECT_LT(bin, fleet::kZipfBins);
    last = bin;
  }
}

// --- checkpoint encode/decode ---------------------------------------------

TEST(CheckpointTest, RoundTripPreservesEveryFieldBitExactly) {
  const ShardResult original = MakeShardResult();
  const std::string bytes = fleet::EncodeShardCheckpoint(original, 0xF00Dull);
  const auto decoded = fleet::DecodeShardCheckpoint(bytes, 0xF00Dull);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->plan.shard_index, original.plan.shard_index);
  EXPECT_EQ(decoded->plan.begin_gateway, original.plan.begin_gateway);
  EXPECT_EQ(decoded->plan.end_gateway, original.plan.end_gateway);
  ASSERT_EQ(decoded->gateways.size(), original.gateways.size());
  for (size_t i = 0; i < original.gateways.size(); ++i) {
    EXPECT_TRUE(SameSummary(decoded->gateways[i], original.gateways[i]))
        << "gateway " << i;
  }
  EXPECT_EQ(decoded->zipf_bins, original.zipf_bins);
  EXPECT_EQ(decoded->values_binned, original.values_binned);
}

TEST(CheckpointTest, TornBytesAreRejectedAtEveryTruncationPoint) {
  const std::string bytes =
      fleet::EncodeShardCheckpoint(MakeShardResult(), 1ull);
  // Any strict prefix must decode as untrusted — never crash, never
  // half-parse.
  for (size_t cut = 0; cut < bytes.size(); cut += 7) {
    const auto torn = fleet::DecodeShardCheckpoint(bytes.substr(0, cut), 1ull);
    EXPECT_EQ(torn.status().code(), StatusCode::kFailedPrecondition)
        << "cut at " << cut;
  }
}

TEST(CheckpointTest, SingleFlippedByteFailsTheCrc) {
  const std::string bytes =
      fleet::EncodeShardCheckpoint(MakeShardResult(), 1ull);
  for (size_t i = 8; i < bytes.size(); i += 11) {
    std::string corrupt = bytes;
    corrupt[i] = static_cast<char>(static_cast<uint8_t>(corrupt[i]) ^ 0x40u);
    EXPECT_EQ(fleet::DecodeShardCheckpoint(corrupt, 1ull).status().code(),
              StatusCode::kFailedPrecondition)
        << "byte " << i;
  }
}

TEST(CheckpointTest, StaleFingerprintIsRejected) {
  const std::string bytes =
      fleet::EncodeShardCheckpoint(MakeShardResult(), 1ull);
  const auto stale = fleet::DecodeShardCheckpoint(bytes, 2ull);
  EXPECT_EQ(stale.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(stale.status().message().find("stale"), std::string::npos);
}

TEST(CheckpointTest, FileRoundTripAndNotFound) {
  const std::string dir = MakeTestDir("ckpt_file");
  const ShardResult original = MakeShardResult();
  ASSERT_TRUE(fleet::WriteShardCheckpoint(dir, original, 9ull).ok());
  const auto loaded =
      fleet::ReadShardCheckpoint(dir, original.plan.shard_index, 9ull);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->values_binned, original.values_binned);
  EXPECT_EQ(fleet::ReadShardCheckpoint(dir, 1234, 9ull).status().code(),
            StatusCode::kNotFound);
  std::remove(fleet::ShardCheckpointPath(dir, 3).c_str());
}

TEST(CheckpointTest, FingerprintTracksInputsShardsAndFormat) {
  FleetInputs inputs;
  inputs.paths = {"a.homets", "b.homets"};
  inputs.bytes = {100, 200};
  inputs.mtime_ns = {1000, 2000};
  inputs.gateways = {{0, 0}, {1, 0}};
  const uint64_t base = fleet::FleetFingerprint(inputs, 4, "homets");
  EXPECT_EQ(base, fleet::FleetFingerprint(inputs, 4, "homets"));
  EXPECT_NE(base, fleet::FleetFingerprint(inputs, 5, "homets"));
  EXPECT_NE(base, fleet::FleetFingerprint(inputs, 4, "csv"));
  FleetInputs grown = inputs;
  grown.bytes[1] = 201;  // an input file changed size
  EXPECT_NE(base, fleet::FleetFingerprint(grown, 4, "homets"));
  FleetInputs touched = inputs;
  touched.mtime_ns[1] = 2001;  // same size, edited in place
  EXPECT_NE(base, fleet::FleetFingerprint(touched, 4, "homets"));
  FleetInputs reordered;
  reordered.paths = {"b.homets", "a.homets"};
  reordered.bytes = {200, 100};
  reordered.mtime_ns = {2000, 1000};
  reordered.gateways = inputs.gateways;
  EXPECT_NE(base, fleet::FleetFingerprint(reordered, 4, "homets"));
}

TEST(CheckpointTest, InPlaceEditWithSameSizeInvalidatesResume) {
  // The fingerprint must flip when an input is rewritten without changing
  // its byte count — otherwise --resume silently merges stale checkpoints.
  const std::string dir = MakeTestDir("mtime_edit");
  const std::string path = dir + "/input.bin";
  const std::string ckpt = dir + "/ckpt";
  ::mkdir(ckpt.c_str(), 0755);
  std::ofstream(path, std::ios::trunc) << "AAAAAAAA";
  struct stat st = {};
  ASSERT_EQ(::stat(path.c_str(), &st), 0);
  FleetInputs before;
  before.paths = {path};
  before.bytes = {static_cast<uint64_t>(st.st_size)};
  before.mtime_ns = {static_cast<uint64_t>(st.st_mtim.tv_sec) *
                         1000000000ull +
                     static_cast<uint64_t>(st.st_mtim.tv_nsec)};
  before.gateways = {{0, 0}};
  const uint64_t fp_before = fleet::FleetFingerprint(before, 2, "homets");

  // Rewrite the same number of bytes, then bump mtime explicitly so the
  // test does not depend on filesystem timestamp granularity.
  std::ofstream(path, std::ios::trunc) << "BBBBBBBB";
  struct timespec times[2] = {{st.st_atim.tv_sec, st.st_atim.tv_nsec},
                              {st.st_mtim.tv_sec + 1, st.st_mtim.tv_nsec}};
  ASSERT_EQ(::utimensat(AT_FDCWD, path.c_str(), times, 0), 0);
  struct stat st_after = {};
  ASSERT_EQ(::stat(path.c_str(), &st_after), 0);
  ASSERT_EQ(st_after.st_size, st.st_size);
  FleetInputs after = before;
  after.mtime_ns = {static_cast<uint64_t>(st_after.st_mtim.tv_sec) *
                        1000000000ull +
                    static_cast<uint64_t>(st_after.st_mtim.tv_nsec)};
  const uint64_t fp_after = fleet::FleetFingerprint(after, 2, "homets");
  EXPECT_NE(fp_before, fp_after);

  // A checkpoint written under the old fingerprint reads back as stale.
  ASSERT_TRUE(
      fleet::WriteShardCheckpoint(ckpt, MakeShardResult(), fp_before).ok());
  const auto reloaded = fleet::ReadShardCheckpoint(ckpt, 3, fp_after);
  EXPECT_EQ(reloaded.status().code(), StatusCode::kFailedPrecondition);
}

// --- LOCK hygiene ----------------------------------------------------------

void WriteLock(const std::string& dir, long long pid) {
  std::ofstream out(fleet::FleetLockPath(dir), std::ios::trunc);
  out << pid << " 0000000000000000\n";
}

TEST(FleetLockTest, RefusesDirectoryOwnedByLiveRun) {
  const std::string dir = MakeTestDir("lock_live");
  // pid 1 is always alive; a manifest marks the dir as a real run's.
  ASSERT_TRUE(fleet::WriteFleetManifest(dir, 7ull, 2, 4).ok());
  WriteLock(dir, 1);
  const Status refused = fleet::AcquireFleetLock(dir, 7ull);
  EXPECT_EQ(refused.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(refused.message().find("live run"), std::string::npos);
  fleet::ReleaseFleetLock(dir);
}

TEST(FleetLockTest, ReclaimsLockOfDeadProcess) {
  const std::string dir = MakeTestDir("lock_dead");
  ASSERT_TRUE(fleet::WriteFleetManifest(dir, 7ull, 2, 4).ok());
  WriteLock(dir, 999999999);  // far past pid_max: certainly dead
  EXPECT_TRUE(fleet::AcquireFleetLock(dir, 7ull).ok());
  fleet::ReleaseFleetLock(dir);
}

TEST(FleetLockTest, ReclaimsLockWithoutManifest) {
  // A SIGKILL between LOCK creation and the manifest write leaves exactly
  // this state; it must never wedge the directory.
  const std::string dir = MakeTestDir("lock_orphan");
  std::remove(fleet::FleetManifestPath(dir).c_str());
  WriteLock(dir, 1);
  EXPECT_TRUE(fleet::AcquireFleetLock(dir, 7ull).ok());
  fleet::ReleaseFleetLock(dir);
}

TEST(FleetLockTest, OwnPidMayReacquire) {
  const std::string dir = MakeTestDir("lock_self");
  ASSERT_TRUE(fleet::WriteFleetManifest(dir, 7ull, 2, 4).ok());
  ASSERT_TRUE(fleet::AcquireFleetLock(dir, 7ull).ok());
  EXPECT_TRUE(fleet::AcquireFleetLock(dir, 7ull).ok());
  fleet::ReleaseFleetLock(dir);
}

TEST(FleetLockTest, ReclaimsLockOfRecycledPid) {
  // pid 1 is alive, but the recorded start-time token cannot match any real
  // process: the original lock owner died and the pid was recycled, so the
  // lock is stale despite the live pid.
  const std::string dir = MakeTestDir("lock_recycled");
  ASSERT_TRUE(fleet::WriteFleetManifest(dir, 7ull, 2, 4).ok());
  std::ofstream(fleet::FleetLockPath(dir), std::ios::trunc)
      << "1 0000000000000000 18446744073709551615\n";
  EXPECT_TRUE(fleet::AcquireFleetLock(dir, 7ull).ok());
  fleet::ReleaseFleetLock(dir);
}

TEST(FleetLockTest, BoundedAcquireLoopRefusesPersistentRacer) {
  // A dangling symlink makes every O_CREAT|O_EXCL fail with EEXIST while
  // the read-back finds nothing — the shape of a racer that keeps
  // recreating the LOCK. The bounded loop must refuse, not spin or clobber.
  const std::string dir = MakeTestDir("lock_race");
  ASSERT_EQ(::symlink("nonexistent", fleet::FleetLockPath(dir).c_str()), 0);
  const Status lost = fleet::AcquireFleetLock(dir, 7ull);
  EXPECT_EQ(lost.code(), StatusCode::kFailedPrecondition);
  std::remove(fleet::FleetLockPath(dir).c_str());
}

// --- orchestrator determinism ---------------------------------------------

TEST(FleetOrchestratorTest, ReportIsIdenticalAcrossShardAndThreadCounts) {
  const std::string dir = MakeTestDir("merge");
  const std::string path = WriteSmallFleet(dir);
  std::string baseline;
  for (const int shards : {1, 3, 4}) {
    for (const int threads : {1, 4}) {
      fleet::FleetOptions options;
      options.n_shards = shards;
      options.threads = threads;
      fleet::FleetOrchestrator orchestrator({path}, options);
      const auto report = orchestrator.Analyze();
      ASSERT_TRUE(report.ok()) << report.status().ToString();
      EXPECT_FALSE(report->degraded);
      const std::string formatted = fleet::FormatFleetReport(*report);
      // Only the shard-count line may differ; the figures must not.
      const std::string figures = formatted.substr(formatted.find('\n') + 1);
      if (baseline.empty()) {
        baseline = figures;
      } else {
        EXPECT_EQ(figures, baseline)
            << "shards=" << shards << " threads=" << threads;
      }
    }
  }
  std::remove(path.c_str());
}

TEST(FleetOrchestratorTest, ResumeLoadsCheckpointsWithoutRecomputation) {
  const std::string dir = MakeTestDir("resume_unit");
  const std::string path = WriteSmallFleet(dir);
  const std::string ckpt = dir + "/ckpt";
  fleet::FleetOptions options;
  options.n_shards = 3;
  options.checkpoint_dir = ckpt;
  fleet::FleetOrchestrator first({path}, options);
  const auto complete = first.Analyze();
  ASSERT_TRUE(complete.ok()) << complete.status().ToString();
  EXPECT_EQ(complete->shards_resumed, 0u);

  options.resume = true;
  fleet::FleetOrchestrator second({path}, options);
  const auto resumed = second.Analyze();
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(resumed->shards_resumed, 3u);
  EXPECT_EQ(resumed->checkpoints_discarded, 0u);
  EXPECT_EQ(fleet::FormatFleetReport(*resumed),
            fleet::FormatFleetReport(*complete));
  std::remove(path.c_str());
}

TEST(FleetOrchestratorTest, EnumerateRejectsMissingAndEmptyInputs) {
  io::DatasetOptions options;
  EXPECT_EQ(fleet::EnumerateFleetInputs({}, options).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(fleet::EnumerateFleetInputs({"/nonexistent/x.homets"}, options)
                .status()
                .code(),
            StatusCode::kIoError);
}

}  // namespace
}  // namespace homets
