#include "sax/sax_motif.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace homets::sax {
namespace {

// Windows from two planted shapes plus noise windows, 8 bins each (the
// daily-motif geometry).
std::vector<ts::TimeSeries> PlantedWindows(size_t per_family, size_t noise,
                                           uint64_t seed) {
  homets::Rng rng(seed);
  std::vector<ts::TimeSeries> windows;
  auto push = [&](std::vector<double> v) {
    windows.emplace_back(
        static_cast<int64_t>(windows.size()) * ts::kMinutesPerDay, 180,
        std::move(v));
  };
  for (size_t w = 0; w < per_family; ++w) {
    // Evening shape: activity in bins 6-7.
    std::vector<double> v{0, 0, 0, 0, 0, 0, 5e6, 8e6};
    for (auto& x : v) x *= rng.LogNormal(0.0, 0.1);
    push(std::move(v));
  }
  for (size_t w = 0; w < per_family; ++w) {
    // Morning shape: activity in bins 2-3.
    std::vector<double> v{0, 0, 6e6, 7e6, 0, 0, 0, 0};
    for (auto& x : v) x *= rng.LogNormal(0.0, 0.1);
    push(std::move(v));
  }
  for (size_t w = 0; w < noise; ++w) {
    std::vector<double> v(8);
    for (auto& x : v) x = rng.Uniform(0.0, 1e7);
    push(std::move(v));
  }
  return windows;
}

TEST(SaxMotifTest, GroupsIdenticalShapes) {
  const auto windows = PlantedWindows(6, 0, 1);
  const auto encoder = SaxEncoder::Make(4, 8).value();
  const auto motifs = DiscoverSaxMotifs(windows, encoder).value();
  ASSERT_GE(motifs.size(), 2u);
  EXPECT_EQ(motifs[0].support(), 6u);
  EXPECT_EQ(motifs[1].support(), 6u);
  // The two families map to different SAX words.
  EXPECT_NE(motifs[0].word, motifs[1].word);
}

TEST(SaxMotifTest, SupportSortedDescending) {
  const auto windows = PlantedWindows(5, 6, 2);
  const auto encoder = SaxEncoder::Make(4, 8).value();
  const auto motifs = DiscoverSaxMotifs(windows, encoder).value();
  for (size_t i = 1; i < motifs.size(); ++i) {
    EXPECT_GE(motifs[i - 1].support(), motifs[i].support());
  }
}

TEST(SaxMotifTest, MinSupportRespected) {
  const auto windows = PlantedWindows(3, 8, 3);
  const auto encoder = SaxEncoder::Make(4, 8).value();
  const auto motifs = DiscoverSaxMotifs(windows, encoder, 3).value();
  for (const auto& motif : motifs) EXPECT_GE(motif.support(), 3u);
}

TEST(SaxMotifTest, MissingBinsTreatedAsZero) {
  auto windows = PlantedWindows(4, 0, 4);
  windows[0][1] = ts::TimeSeries::Missing();
  const auto encoder = SaxEncoder::Make(4, 8).value();
  EXPECT_TRUE(DiscoverSaxMotifs(windows, encoder).ok());
}

TEST(SaxMotifTest, EmptyInputErrors) {
  const auto encoder = SaxEncoder::Make(4, 8).value();
  EXPECT_FALSE(DiscoverSaxMotifs({}, encoder).ok());
}

TEST(SaxMotifTest, CoarseAlphabetMergesDistinctBehaviors) {
  // The paper's criticism made concrete: with Zipfian values, z-normalized
  // SAX maps very different activity levels to the same word because most
  // breakpoints sit in the near-zero mass. A high-traffic evening and a
  // low-traffic evening collapse into one motif, which the correlation
  // measure would keep apart (it sees magnitudes via the KS condition and
  // significance, and more bins in real windows).
  homets::Rng rng(5);
  std::vector<ts::TimeSeries> windows;
  for (int w = 0; w < 6; ++w) {
    std::vector<double> v{0, 0, 0, 0, 0, 0, 5e6, 8e6};  // heavy evening
    for (auto& x : v) x *= rng.LogNormal(0.0, 0.05);
    windows.emplace_back(w * ts::kMinutesPerDay, 180, std::move(v));
  }
  for (int w = 0; w < 6; ++w) {
    std::vector<double> v{0, 0, 0, 0, 0, 0, 5e3, 8e3};  // light evening
    for (auto& x : v) x *= rng.LogNormal(0.0, 0.05);
    windows.emplace_back((w + 6) * ts::kMinutesPerDay, 180, std::move(v));
  }
  const auto encoder = SaxEncoder::Make(4, 8).value();
  const auto motifs = DiscoverSaxMotifs(windows, encoder).value();
  // SAX cannot tell the two apart: one motif with all 12 windows.
  ASSERT_EQ(motifs.size(), 1u);
  EXPECT_EQ(motifs[0].support(), 12u);
}

}  // namespace
}  // namespace homets::sax
