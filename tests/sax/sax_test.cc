#include "sax/sax.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/random.h"

namespace homets::sax {
namespace {

TEST(PaaTest, ExactDivision) {
  const auto paa = Paa({1, 2, 3, 4, 5, 6}, 3).value();
  ASSERT_EQ(paa.size(), 3u);
  EXPECT_DOUBLE_EQ(paa[0], 1.5);
  EXPECT_DOUBLE_EQ(paa[1], 3.5);
  EXPECT_DOUBLE_EQ(paa[2], 5.5);
}

TEST(PaaTest, SegmentsEqualLengthIsIdentity) {
  const std::vector<double> xs{3, 1, 4, 1, 5};
  const auto paa = Paa(xs, 5).value();
  for (size_t i = 0; i < xs.size(); ++i) EXPECT_DOUBLE_EQ(paa[i], xs[i]);
}

TEST(PaaTest, OneSegmentIsMean) {
  const auto paa = Paa({2, 4, 6, 8}, 1).value();
  ASSERT_EQ(paa.size(), 1u);
  EXPECT_DOUBLE_EQ(paa[0], 5.0);
}

TEST(PaaTest, FractionalWeightingPreservesMean) {
  // n = 5, segments = 2: segment means must average back to the global mean.
  const std::vector<double> xs{1, 2, 3, 4, 5};
  const auto paa = Paa(xs, 2).value();
  EXPECT_NEAR((paa[0] + paa[1]) / 2.0, 3.0, 1e-12);
}

TEST(PaaTest, Errors) {
  EXPECT_FALSE(Paa({}, 1).ok());
  EXPECT_FALSE(Paa({1.0}, 0).ok());
  EXPECT_FALSE(Paa({1.0}, 2).ok());
  EXPECT_FALSE(Paa({std::nan("")}, 1).ok());
}

TEST(SaxEncoderTest, BreakpointsAreGaussianQuantiles) {
  const auto enc = SaxEncoder::Make(4, 8).value();
  ASSERT_EQ(enc.breakpoints().size(), 3u);
  EXPECT_NEAR(enc.breakpoints()[0], -0.6745, 1e-3);
  EXPECT_NEAR(enc.breakpoints()[1], 0.0, 1e-9);
  EXPECT_NEAR(enc.breakpoints()[2], 0.6745, 1e-3);
}

TEST(SaxEncoderTest, EncodesMonotoneRampInOrder) {
  const auto enc = SaxEncoder::Make(4, 4).value();
  std::vector<double> ramp(64);
  for (size_t i = 0; i < ramp.size(); ++i) ramp[i] = static_cast<double>(i);
  const auto word = enc.Encode(ramp).value();
  ASSERT_EQ(word.size(), 4u);
  // Symbols must be non-decreasing for a ramp.
  for (size_t i = 1; i < word.size(); ++i) EXPECT_LE(word[i - 1], word[i]);
  EXPECT_EQ(word.front(), 'a');
  EXPECT_EQ(word.back(), 'd');
}

TEST(SaxEncoderTest, GaussianDataUsesAlphabetUniformly) {
  // Identity PAA (16 points, 16 segments) isolates the breakpoint logic: a
  // z-normalized normal sample uses the alphabet nearly uniformly.
  homets::Rng rng(1);
  const auto enc = SaxEncoder::Make(4, 16).value();
  std::vector<std::string> words;
  for (int w = 0; w < 400; ++w) {
    std::vector<double> xs(16);
    for (auto& x : xs) x = rng.Normal();
    words.push_back(enc.Encode(xs).value());
  }
  // Near-normal data: top-symbol excess over uniform stays small.
  EXPECT_LT(enc.SymbolDistributionSkew(words), 0.12);
}

TEST(SaxEncoderTest, ZipfianTrafficBreaksNormalityAssumption) {
  // The paper's criticism (Section 2): z-normalization does not make Zipfian
  // traffic normal, so SAX symbols are not uniformly used.
  homets::Rng rng(2);
  const auto enc = SaxEncoder::Make(4, 16).value();
  std::vector<std::string> words;
  for (int w = 0; w < 400; ++w) {
    std::vector<double> xs(16);
    for (auto& x : xs) {
      x = rng.Bernoulli(0.05) ? rng.LogNormal(std::log(1e6), 0.5)
                              : rng.LogNormal(std::log(200.0), 0.8);
    }
    words.push_back(enc.Encode(xs).value());
  }
  EXPECT_GT(enc.SymbolDistributionSkew(words), 0.25);
}

TEST(SaxEncoderTest, MinDistZeroForAdjacentSymbols) {
  const auto enc = SaxEncoder::Make(4, 4).value();
  EXPECT_DOUBLE_EQ(enc.MinDist("aabb", "bbaa", 16).value(), 0.0);
  EXPECT_DOUBLE_EQ(enc.MinDist("abcd", "abcd", 16).value(), 0.0);
}

TEST(SaxEncoderTest, MinDistPositiveForDistantSymbols) {
  const auto enc = SaxEncoder::Make(4, 4).value();
  const double d = enc.MinDist("aaaa", "dddd", 16).value();
  EXPECT_GT(d, 0.0);
  // MINDIST scales with sqrt(n/segments).
  const double d2 = enc.MinDist("aaaa", "dddd", 64).value();
  EXPECT_NEAR(d2, 2.0 * d, 1e-9);
}

TEST(SaxEncoderTest, MinDistLowerBoundsEuclideanOnZNormalizedData) {
  homets::Rng rng(3);
  const auto enc = SaxEncoder::Make(6, 8).value();
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> a(64), b(64);
    for (size_t i = 0; i < 64; ++i) {
      a[i] = rng.Normal();
      b[i] = rng.Normal();
    }
    // z-normalize both (SAX's own pre-step) then compare.
    auto znorm = [](std::vector<double> v) {
      double mean = 0.0;
      for (double x : v) mean += x;
      mean /= static_cast<double>(v.size());
      double ss = 0.0;
      for (double x : v) ss += (x - mean) * (x - mean);
      const double sd = std::sqrt(ss / static_cast<double>(v.size() - 1));
      for (auto& x : v) x = (x - mean) / sd;
      return v;
    };
    const auto az = znorm(a);
    const auto bz = znorm(b);
    double euclid = 0.0;
    for (size_t i = 0; i < 64; ++i) {
      euclid += (az[i] - bz[i]) * (az[i] - bz[i]);
    }
    euclid = std::sqrt(euclid);
    const auto wa = enc.Encode(a).value();
    const auto wb = enc.Encode(b).value();
    EXPECT_LE(enc.MinDist(wa, wb, 64).value(), euclid + 1e-9);
  }
}

TEST(SaxEncoderTest, InvalidConfigurations) {
  EXPECT_FALSE(SaxEncoder::Make(1, 4).ok());
  EXPECT_FALSE(SaxEncoder::Make(21, 4).ok());
  EXPECT_FALSE(SaxEncoder::Make(4, 0).ok());
}

TEST(SaxEncoderTest, EncodeErrors) {
  const auto enc = SaxEncoder::Make(4, 8).value();
  EXPECT_FALSE(enc.Encode({1.0, 2.0}).ok());  // shorter than segments
  std::vector<double> with_nan(16, 1.0);
  with_nan[3] = std::nan("");
  EXPECT_FALSE(enc.Encode(with_nan).ok());
}

TEST(SaxEncoderTest, MinDistErrors) {
  const auto enc = SaxEncoder::Make(4, 4).value();
  EXPECT_FALSE(enc.MinDist("aa", "aaaa", 16).ok());
  EXPECT_FALSE(enc.MinDist("aaaa", "aaaa", 2).ok());
}

TEST(SaxEncoderTest, ConstantSeriesEncodesToMiddleSymbols) {
  const auto enc = SaxEncoder::Make(4, 4).value();
  const auto word = enc.Encode({5, 5, 5, 5, 5, 5, 5, 5}).value();
  // z-normalized zeros fall in a middle band, not the extremes.
  for (char c : word) {
    EXPECT_TRUE(c == 'b' || c == 'c') << word;
  }
}

}  // namespace
}  // namespace homets::sax
