// Unit tests for the homets columnar format (DESIGN.md §11): writer/reader
// round trips stay bit-exact across both chunk encodings, the footer index
// serves time-range slices without decoding unrelated chunks (asserted via
// the homets.storage.chunks_read/chunks_skipped counters), and every
// corruption mode — bad magic, torn trailer, flipped payload byte — surfaces
// as a clean Status, never a crash.
#include "storage/homets_format.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "simgen/fleet.h"
#include "simgen/types.h"
#include "ts/time_series.h"

namespace homets::storage {
namespace {

bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

uint64_t CounterValue(std::string_view name) {
  return obs::MetricsRegistry::Global().GetCounter(name)->Value();
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

/// Two series must agree on grid and on every bit, Missing included.
void ExpectSeriesIdentical(const ts::TimeSeries& got,
                           const ts::TimeSeries& want) {
  ASSERT_EQ(got.start_minute(), want.start_minute());
  ASSERT_EQ(got.step_minutes(), want.step_minutes());
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    if (ts::TimeSeries::IsMissing(want[i])) {
      EXPECT_TRUE(ts::TimeSeries::IsMissing(got[i])) << "bin " << i;
    } else {
      EXPECT_TRUE(SameBits(got[i], want[i]))
          << "bin " << i << ": " << got[i] << " vs " << want[i];
    }
  }
}

/// A small hand-built gateway: two devices, staggered spans, Missing holes.
simgen::GatewayTrace HandBuiltGateway() {
  const double miss = ts::TimeSeries::Missing();
  simgen::GatewayTrace gw;
  gw.id = 42;
  gw.surveyed_residents = 3;
  gw.regular_home = true;
  simgen::DeviceTrace laptop;
  laptop.name = "gw042-laptop";
  laptop.true_type = simgen::DeviceType::kPortable;
  laptop.reported_type = simgen::DeviceType::kUnlabeled;
  laptop.incoming = ts::TimeSeries(10, 1, {1.5, miss, 3.25, 0.0, 512.125});
  laptop.outgoing = ts::TimeSeries(10, 1, {0.5, miss, 1.0, miss, 64.0});
  simgen::DeviceTrace console;
  console.name = "gw042-console";
  console.true_type = simgen::DeviceType::kGameConsole;
  console.reported_type = simgen::DeviceType::kGameConsole;
  console.incoming = ts::TimeSeries(13, 1, {9.75, 10.5});
  console.outgoing = ts::TimeSeries(13, 1, {miss, 2.25});
  gw.devices = {laptop, console};
  return gw;
}

TEST(HometsFormatTest, WriterRoundTripsHandBuiltGateway) {
  const std::string path = TempPath("roundtrip.homets");
  const simgen::GatewayTrace original = HandBuiltGateway();
  ASSERT_TRUE(WriteGatewayHomets(path, original).ok());

  auto reader = HometsReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  ASSERT_EQ(reader->gateway_count(), 1u);

  // The columnar format keeps the simulator metadata CSV drops.
  const GatewayMeta& meta = reader->gateway_meta(0);
  EXPECT_EQ(meta.id, 42);
  ASSERT_TRUE(meta.surveyed_residents.has_value());
  EXPECT_EQ(*meta.surveyed_residents, 3);
  EXPECT_TRUE(meta.regular_home);

  const auto want = NormalizeToObservedSpan(original);
  ASSERT_TRUE(want.ok());
  const auto got = reader->ReadGateway(0);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_EQ(got->devices.size(), want->devices.size());
  for (size_t d = 0; d < want->devices.size(); ++d) {
    EXPECT_EQ(got->devices[d].name, want->devices[d].name);
    EXPECT_EQ(got->devices[d].true_type, want->devices[d].true_type);
    EXPECT_EQ(got->devices[d].reported_type, want->devices[d].reported_type);
    ExpectSeriesIdentical(got->devices[d].incoming, want->devices[d].incoming);
    ExpectSeriesIdentical(got->devices[d].outgoing, want->devices[d].outgoing);
  }
  // Devices come back name-sorted — the CSV round-trip order.
  EXPECT_EQ(got->devices[0].name, "gw042-console");
  EXPECT_EQ(got->devices[1].name, "gw042-laptop");
  std::remove(path.c_str());
}

// Values that %.3f can represent take the delta+varint milli-unit encoding;
// anything else (pi, thirds) must fall back to raw IEEE bits. Either way the
// decode is bit-identical — the encoding choice is invisible to readers.
TEST(HometsFormatTest, MixedEncodingsStayBitExact) {
  const double miss = ts::TimeSeries::Missing();
  simgen::GatewayTrace gw;
  simgen::DeviceTrace dev;
  dev.name = "dev";
  dev.incoming =
      ts::TimeSeries(0, 1, {0.001, 123456.789, miss, 0.0, 99999.999});
  dev.outgoing = ts::TimeSeries(
      0, 1, {M_PI, 1.0 / 3.0, miss, 2.0 / 3.0, 1e-12});
  gw.devices = {dev};

  const std::string path = TempPath("encodings.homets");
  ASSERT_TRUE(WriteGatewayHomets(path, gw).ok());
  auto reader = HometsReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  const auto got = reader->ReadGateway(0);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_EQ(got->devices.size(), 1u);
  ExpectSeriesIdentical(got->devices[0].incoming, dev.incoming);
  ExpectSeriesIdentical(got->devices[0].outgoing, dev.outgoing);
  std::remove(path.c_str());
}

TEST(HometsFormatTest, AllMissingGatewayRejectedLikeCsv) {
  simgen::GatewayTrace gw;
  simgen::DeviceTrace dev;
  dev.name = "ghost";
  const double miss = ts::TimeSeries::Missing();
  dev.incoming = ts::TimeSeries(0, 1, {miss, miss});
  dev.outgoing = ts::TimeSeries(0, 1, {miss, miss});
  gw.devices = {dev};
  EXPECT_EQ(NormalizeToObservedSpan(gw).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(WriteGatewayHomets(TempPath("empty.homets"), gw).code(),
            StatusCode::kInvalidArgument);
}

TEST(HometsFormatTest, AppendAfterFinishFails) {
  const std::string path = TempPath("finished.homets");
  auto writer = HometsWriter::Create(path);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  ASSERT_TRUE(writer->Append(HandBuiltGateway()).ok());
  ASSERT_TRUE(writer->Finish().ok());
  EXPECT_EQ(writer->Append(HandBuiltGateway()).code(),
            StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

// The out-of-core fleet path: every generated gateway either lands in the
// file or is counted as skipped (no observed minute at all — the same set
// the CSV exporter turns into header-only files the reader rejects).
TEST(HometsFormatTest, FleetWriterAccountsForEveryGateway) {
  simgen::SimConfig config;
  config.n_gateways = 3;
  config.weeks = 2;
  config.seed = 7;
  config.surveyed_gateways = 1;
  const simgen::FleetGenerator fleet(config);

  const std::string path = TempPath("fleet.homets");
  const auto stats = WriteFleetHomets(fleet, path);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->gateways + stats->gateways_skipped, 3u);
  EXPECT_GT(stats->gateways, 0u);
  EXPECT_GT(stats->chunks, 0u);

  auto reader = HometsReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(reader->gateway_count(), stats->gateways);
  EXPECT_EQ(reader->chunk_count(), stats->chunks);
  EXPECT_TRUE(reader->mmap_backed());
  for (size_t g = 0; g < reader->gateway_count(); ++g) {
    const auto gw = reader->ReadGateway(g);
    ASSERT_TRUE(gw.ok()) << gw.status().ToString();
    EXPECT_FALSE(gw->devices.empty());
  }
  std::remove(path.c_str());
}

// The acceptance-criterion test: a (device, time-range) slice decodes only
// the chunks it overlaps. A 3-chunk series read in the middle must bump
// chunks_read by exactly 1 and account for the other 2 as skipped.
TEST(HometsFormatTest, ReadSeriesDecodesOnlyOverlappingChunks) {
  const size_t n = 2 * kChunkValues + 100;  // 3 chunks per direction
  std::vector<double> values(n);
  for (size_t i = 0; i < n; ++i) values[i] = 0.25 * static_cast<double>(i);
  simgen::GatewayTrace gw;
  simgen::DeviceTrace dev;
  dev.name = "big";
  dev.incoming = ts::TimeSeries(0, 1, values);
  dev.outgoing = ts::TimeSeries(0, 1, values);
  gw.devices = {dev};

  const std::string path = TempPath("chunked.homets");
  ASSERT_TRUE(WriteGatewayHomets(path, gw).ok());
  auto reader = HometsReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  ASSERT_EQ(reader->chunk_count(), 6u);

  // A 50-minute window inside the second chunk of the incoming column.
  const int64_t begin = static_cast<int64_t>(kChunkValues) + 200;
  const uint64_t read_before = CounterValue(obs::kStorageChunksRead);
  const uint64_t skipped_before = CounterValue(obs::kStorageChunksSkipped);
  const auto slice = reader->ReadSeries(0, 0, 0, begin, begin + 50);
  ASSERT_TRUE(slice.ok()) << slice.status().ToString();
  EXPECT_EQ(CounterValue(obs::kStorageChunksRead) - read_before, 1u);
  // skipped counts against the whole file: 6 chunks on disk, 1 decoded.
  EXPECT_EQ(CounterValue(obs::kStorageChunksSkipped) - skipped_before, 5u);
  ASSERT_EQ(slice->size(), 50u);
  EXPECT_EQ(slice->start_minute(), begin);
  for (size_t i = 0; i < slice->size(); ++i) {
    EXPECT_TRUE(SameBits((*slice)[i], values[begin + static_cast<int64_t>(i)]))
        << "minute " << begin + static_cast<int64_t>(i);
  }

  // A window past the coverage is empty — not an error — and decodes nothing.
  const uint64_t read_mid = CounterValue(obs::kStorageChunksRead);
  const auto beyond = reader->ReadSeries(0, 0, 0, 10'000'000, 10'000'050);
  ASSERT_TRUE(beyond.ok()) << beyond.status().ToString();
  EXPECT_EQ(beyond->size(), 0u);
  EXPECT_EQ(CounterValue(obs::kStorageChunksRead), read_mid);

  // Degenerate and unknown requests are clean Statuses.
  EXPECT_EQ(reader->ReadSeries(0, 0, 0, 100, 100).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(reader->ReadSeries(0, 9, 0, 0, 100).status().code(),
            StatusCode::kNotFound);
  std::remove(path.c_str());
}

TEST(HometsFormatTest, ReadSeriesFullRangeMatchesReadGateway) {
  simgen::SimConfig config;
  config.n_gateways = 1;
  config.weeks = 1;
  config.seed = 11;
  config.surveyed_gateways = 1;
  const simgen::GatewayTrace gw = simgen::FleetGenerator(config).Generate(0);

  const std::string path = TempPath("fullrange.homets");
  ASSERT_TRUE(WriteGatewayHomets(path, gw).ok());
  auto reader = HometsReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  const auto full = reader->ReadGateway(0);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  for (size_t d = 0; d < full->devices.size(); ++d) {
    const ts::TimeSeries& want = full->devices[d].incoming;
    const auto got = reader->ReadSeries(0, d, 0, want.start_minute(),
                                        want.EndMinute());
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ExpectSeriesIdentical(*got, want);
  }
  std::remove(path.c_str());
}

class HometsCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TempPath("corrupt_me.homets");
    ASSERT_TRUE(WriteGatewayHomets(path_, HandBuiltGateway()).ok());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string ReadAll() {
    std::ifstream in(path_, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    return bytes;
  }
  void WriteAll(const std::string& bytes) {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  std::string path_;
};

TEST_F(HometsCorruptionTest, BadMagicIsInvalidArgument) {
  std::string bytes = ReadAll();
  bytes[0] ^= 0x01;
  WriteAll(bytes);
  const auto reader = HometsReader::Open(path_);
  EXPECT_EQ(reader.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(reader.status().message().find("magic"), std::string::npos);
}

TEST_F(HometsCorruptionTest, TornTrailerIsIoError) {
  std::string bytes = ReadAll();
  bytes.resize(bytes.size() - 8);  // rips through the 16-byte trailer
  WriteAll(bytes);
  const auto reader = HometsReader::Open(path_);
  EXPECT_EQ(reader.status().code(), StatusCode::kIoError);
  EXPECT_NE(reader.status().message().find("torn"), std::string::npos);
}

TEST_F(HometsCorruptionTest, FlippedPayloadByteFailsCrcOnRead) {
  std::string bytes = ReadAll();
  bytes[8] ^= 0xFF;  // first chunk payload starts right after the magic
  WriteAll(bytes);
  // The footer is intact, so Open succeeds; the damage surfaces on decode.
  auto reader = HometsReader::Open(path_);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  const uint64_t failures_before = CounterValue(obs::kStorageCrcFailures);
  const auto gw = reader->ReadGateway(0);
  EXPECT_EQ(gw.status().code(), StatusCode::kIoError);
  EXPECT_NE(gw.status().message().find("crc mismatch"), std::string::npos);
  EXPECT_GT(CounterValue(obs::kStorageCrcFailures), failures_before);
}

}  // namespace
}  // namespace homets::storage
