// Property-style fidelity tests for the columnar store: whatever the CSV
// edge can produce — clean simgen fleets, repair-policy output with explicit
// Missing markers, duplicate/out-of-order rows — must survive
// CSV → homets → CSV without changing a byte. These are the tests behind the
// PR's "pipeline outputs are byte-identical across --input-format" claim.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/status.h"
#include "io/csv.h"
#include "simgen/fleet.h"
#include "simgen/types.h"
#include "storage/homets_format.h"
#include "ts/time_series.h"

namespace homets::storage {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string Fixture(const std::string& name) {
  return std::string(HOMETS_IO_FIXTURES_DIR) + "/" + name;
}

std::string FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

void ExpectSeriesIdentical(const ts::TimeSeries& got,
                           const ts::TimeSeries& want) {
  ASSERT_EQ(got.start_minute(), want.start_minute());
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    if (ts::TimeSeries::IsMissing(want[i])) {
      EXPECT_TRUE(ts::TimeSeries::IsMissing(got[i])) << "bin " << i;
    } else {
      EXPECT_TRUE(SameBits(got[i], want[i])) << "bin " << i;
    }
  }
}

void ExpectGatewaysIdentical(const simgen::GatewayTrace& got,
                             const simgen::GatewayTrace& want) {
  ASSERT_EQ(got.devices.size(), want.devices.size());
  for (size_t d = 0; d < want.devices.size(); ++d) {
    EXPECT_EQ(got.devices[d].name, want.devices[d].name);
    EXPECT_EQ(got.devices[d].true_type, want.devices[d].true_type);
    EXPECT_EQ(got.devices[d].reported_type, want.devices[d].reported_type);
    ExpectSeriesIdentical(got.devices[d].incoming, want.devices[d].incoming);
    ExpectSeriesIdentical(got.devices[d].outgoing, want.devices[d].outgoing);
  }
}

/// The storage-level round trip: write `gateway` as homets, read it back,
/// and demand the result equal the normalized form bit for bit.
void ExpectHometsRoundTripExact(const simgen::GatewayTrace& gateway,
                                const std::string& tag) {
  const auto want = NormalizeToObservedSpan(gateway);
  const std::string path = TempPath(tag + ".homets");
  if (!want.ok()) {
    // A gateway the CSV reader would reject must be rejected here too.
    EXPECT_EQ(WriteGatewayHomets(path, gateway).code(),
              StatusCode::kInvalidArgument)
        << tag;
    return;
  }
  ASSERT_TRUE(WriteGatewayHomets(path, gateway).ok()) << tag;
  auto reader = HometsReader::Open(path);
  ASSERT_TRUE(reader.ok()) << tag << ": " << reader.status().ToString();
  const auto got = reader->ReadGateway(0);
  ASSERT_TRUE(got.ok()) << tag << ": " << got.status().ToString();
  ExpectGatewaysIdentical(*got, *want);
  std::remove(path.c_str());
}

// Every gateway of a few small fleets (different seeds — different outage
// and label-noise draws) survives the columnar round trip bit-exactly.
TEST(RoundTripTest, SimgenFleetsRoundTripLosslessly) {
  for (const uint64_t seed : {1u, 9u, 20140317u}) {
    simgen::SimConfig config;
    config.n_gateways = 4;
    config.weeks = 2;
    config.seed = seed;
    config.surveyed_gateways = 2;
    const simgen::FleetGenerator fleet(config);
    for (int g = 0; g < config.n_gateways; ++g) {
      ExpectHometsRoundTripExact(
          fleet.Generate(g),
          "fleet_s" + std::to_string(seed) + "_g" + std::to_string(g));
    }
  }
}

// The full-fidelity chain: gateway → CSV → (read) → homets → (read) → CSV.
// The two CSV files must be byte-identical — the columnar hop is invisible.
TEST(RoundTripTest, CsvHometsCsvIsByteIdentical) {
  simgen::SimConfig config;
  config.n_gateways = 2;
  config.weeks = 2;
  config.seed = 5;
  config.surveyed_gateways = 1;
  const simgen::FleetGenerator fleet(config);
  for (int g = 0; g < config.n_gateways; ++g) {
    const std::string csv1 = TempPath("rt1_" + std::to_string(g) + ".csv");
    const std::string homets = TempPath("rt_" + std::to_string(g) + ".homets");
    const std::string csv2 = TempPath("rt2_" + std::to_string(g) + ".csv");
    ASSERT_TRUE(io::WriteGatewayCsv(csv1, fleet.Generate(g)).ok());

    const auto from_csv = io::ReadGatewayCsv(csv1);
    if (!from_csv.ok()) continue;  // all-missing gateway: header-only file
    ASSERT_TRUE(WriteGatewayHomets(homets, *from_csv).ok());
    auto reader = HometsReader::Open(homets);
    ASSERT_TRUE(reader.ok()) << reader.status().ToString();
    const auto from_homets = reader->ReadGateway(0);
    ASSERT_TRUE(from_homets.ok()) << from_homets.status().ToString();
    ASSERT_TRUE(io::WriteGatewayCsv(csv2, *from_homets).ok());

    EXPECT_EQ(FileBytes(csv1), FileBytes(csv2)) << "gateway " << g;
    std::remove(csv1.c_str());
    std::remove(homets.c_str());
    std::remove(csv2.c_str());
  }
}

// PR-5 resilience output feeds straight into the columnar store: the repair
// policy's explicit Missing markers and duplicate-row resolutions round-trip
// unchanged through homets.
TEST(RoundTripTest, RepairedFixtureOutputRoundTrips) {
  for (const auto policy :
       {io::ErrorPolicy::kSkipAndReport, io::ErrorPolicy::kRepair}) {
    io::ReadOptions options;
    options.policy = policy;
    const auto gw = io::ReadGatewayCsv(Fixture("gateway_dup.csv"), options);
    ASSERT_TRUE(gw.ok()) << gw.status().ToString();
    ExpectHometsRoundTripExact(
        *gw, policy == io::ErrorPolicy::kRepair ? "dup_repair" : "dup_skip");

    const auto bad =
        io::ReadGatewayCsv(Fixture("gateway_badtype.csv"), options);
    ASSERT_TRUE(bad.ok()) << bad.status().ToString();
    ExpectHometsRoundTripExact(
        *bad, policy == io::ErrorPolicy::kRepair ? "bad_repair" : "bad_skip");
  }
}

// Normalization is exactly the CSV write→read reshaping: both paths started
// from the same raw trace must agree on grid, order and values (CSV's %.3f
// cells parse back to the same doubles the normalizer kept).
TEST(RoundTripTest, NormalizeMatchesCsvWriteReadReshaping) {
  simgen::SimConfig config;
  config.n_gateways = 1;
  config.weeks = 1;
  config.seed = 3;
  config.surveyed_gateways = 1;
  const simgen::GatewayTrace raw = simgen::FleetGenerator(config).Generate(0);

  const std::string csv = TempPath("normalize.csv");
  ASSERT_TRUE(io::WriteGatewayCsv(csv, raw).ok());
  const auto via_csv = io::ReadGatewayCsv(csv);
  ASSERT_TRUE(via_csv.ok()) << via_csv.status().ToString();
  const auto normalized = NormalizeToObservedSpan(raw);
  ASSERT_TRUE(normalized.ok()) << normalized.status().ToString();

  ASSERT_EQ(via_csv->devices.size(), normalized->devices.size());
  for (size_t d = 0; d < normalized->devices.size(); ++d) {
    EXPECT_EQ(via_csv->devices[d].name, normalized->devices[d].name);
    const ts::TimeSeries& a = via_csv->devices[d].incoming;
    const ts::TimeSeries& b = normalized->devices[d].incoming;
    ASSERT_EQ(a.start_minute(), b.start_minute());
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < b.size(); ++i) {
      EXPECT_EQ(ts::TimeSeries::IsMissing(a[i]), ts::TimeSeries::IsMissing(b[i]))
          << "device " << d << " bin " << i;
    }
  }
  std::remove(csv.c_str());
}

}  // namespace
}  // namespace homets::storage
