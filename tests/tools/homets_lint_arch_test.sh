#!/bin/sh
# Tests the architectural lint passes (layer-dag, include-cycle, header
# hygiene, determinism) against the fixture trees in lint_fixtures/, plus the
# --format dot golden, the JSON report shape, and the --baseline freeze ->
# check -> inject round-trip. Each fixture is a miniature repo root that must
# produce exactly its expected `file:line: rule-id:` diagnostics. Registered
# as the `lint_arch_fixtures` ctest under the `lint-arch` label.
#
# Usage: homets_lint_arch_test.sh /path/to/homets_lint /path/to/lint_fixtures
set -u

lint="${1:?usage: homets_lint_arch_test.sh homets_lint_binary fixtures_dir}"
fixtures="${2:?usage: homets_lint_arch_test.sh homets_lint_binary fixtures_dir}"
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT
fail=0

check() {
    desc="$1"
    shift
    if "$@"; then
        echo "ok: $desc"
    else
        echo "FAIL: $desc" >&2
        fail=1
    fi
}

# Runs the linter on a fixture root, captures stdout and the exit code.
run_case() {
    root="$1"
    shift
    rc=0
    "$lint" --root "$fixtures/$root" "$@" >"$workdir/out" 2>"$workdir/err" || rc=$?
}

# Number of reported violations for a given rule id.
hits() {
    grep -c ": $1: " "$workdir/out"
}

# --- layer-dag ------------------------------------------------------------
run_case layer_violation
check "layer_violation exits 1" test "$rc" -eq 1
check "layer_violation: 1 layer-dag hit" test "$(hits layer-dag)" -eq 1
check "layer_violation flags the upward include line" \
    grep -q 'src/common/bad.cc:2: layer-dag: upward include chain common -> core' \
    "$workdir/out"
check "layer_violation names the resolved header" \
    grep -q "resolves to src/core/engine.h" "$workdir/out"
check "layer_violation: waived edge is silent" \
    sh -c "! grep -q waived.cc '$workdir/out'"

# --- include-cycle --------------------------------------------------------
run_case include_cycle
check "include_cycle exits 1" test "$rc" -eq 1
check "include_cycle: 1 hit" test "$(hits include-cycle)" -eq 1
check "include_cycle reports one canonical cycle" \
    grep -q 'src/a/x.h:5: include-cycle: include cycle src/a/x.h -> src/a/y.h -> src/a/x.h' \
    "$workdir/out"
check "include_cycle: the mirror edge is not double-reported" \
    sh -c "! grep -q 'y.h:[0-9]*: include-cycle' '$workdir/out'"

# --- unused-include -------------------------------------------------------
run_case unused_include
check "unused_include exits 1" test "$rc" -eq 1
check "unused_include: 1 hit" test "$(hits unused-include)" -eq 1
check "unused_include flags the dead include" \
    grep -q "src/core/bad.cc:3: unused-include: no symbol from 'core/unused.h'" \
    "$workdir/out"
check "unused_include: the used header is fine" \
    sh -c "! grep -q \"'core/used.h'\" '$workdir/out'"
check "unused_include: suppressed variant is silent" \
    sh -c "! grep -q suppressed.cc '$workdir/out'"

# --- transitive-include ---------------------------------------------------
run_case transitive_include
check "transitive_include exits 1" test "$rc" -eq 1
check "transitive_include: 1 hit" test "$(hits transitive-include)" -eq 1
check "transitive_include names the hidden dependency and the symbol" \
    grep -q 'src/core/bad.cc:2: transitive-include: relies on src/core/deep.h only transitively for DeepExtra' \
    "$workdir/out"
check "transitive_include suggests the include to add" \
    grep -q '#include "deep.h" directly' "$workdir/out"
check "transitive_include: a .cc is covered by its own header closure" \
    sh -c "! grep -q good.cc '$workdir/out'"

# --- unordered-iteration --------------------------------------------------
run_case unordered_iteration
check "unordered_iteration exits 1" test "$rc" -eq 1
check "unordered_iteration: 2 hits" test "$(hits unordered-iteration)" -eq 2
check "unordered_iteration flags the range-for" \
    grep -q "src/core/bad.cc:7: unordered-iteration: iteration over unordered container 'counts'" \
    "$workdir/out"
check "unordered_iteration flags .begin()" \
    grep -q 'src/core/bad.cc:14: unordered-iteration' "$workdir/out"
check "unordered_iteration: find/end lookups are fine" \
    sh -c "! grep -q ok.cc '$workdir/out'"
check "unordered_iteration: suppressed variant is silent" \
    sh -c "! grep -q suppressed.cc '$workdir/out'"

# --- bad-suppression ------------------------------------------------------
run_case bad_suppression
check "bad_suppression exits 1" test "$rc" -eq 1
check "bad_suppression: 1 hit" test "$(hits bad-suppression)" -eq 1
check "bad_suppression names the typoed rule id" \
    grep -q "src/core/bad.cc:4: bad-suppression: suppression names unknown rule id 'no-raw-randomness'" \
    "$workdir/out"

# --- header hygiene on the metrics fixture --------------------------------
run_case metrics --rules self-include-first,include-guard
check "metrics hygiene exits 0" test "$rc" -eq 0

# --- --format dot golden --------------------------------------------------
run_case dot_layers --format dot
check "dot format exits 0" test "$rc" -eq 0
check "dot output matches the golden byte-for-byte" \
    cmp -s "$fixtures/dot_layers/expected.dot" "$workdir/out"

# --- --format json --------------------------------------------------------
run_case layer_violation --format json
check "json format exits 1 on violations" test "$rc" -eq 1
check "json reports the rule" grep -q '"rule": "layer-dag"' "$workdir/out"
check "json reports the file and line" \
    grep -q '"file": "src/common/bad.cc", "line": 2' "$workdir/out"
check "json carries files_scanned" grep -q '"files_scanned": 3' "$workdir/out"

# --- baseline freeze -> check -> inject -----------------------------------
rm -rf "$workdir/blroot"
cp -r "$fixtures/layer_violation" "$workdir/blroot"
rc=0
"$lint" --root "$workdir/blroot" --baseline "$workdir/bl.json" \
    >"$workdir/out" 2>"$workdir/err" || rc=$?
check "baseline freeze exits 0" test "$rc" -eq 0
check "baseline freeze reports the count" \
    grep -q 'baseline: froze 1 violation(s)' "$workdir/out"
check "baseline file records the keyed entry" \
    grep -q '"file": "src/common/bad.cc", "rule": "layer-dag", "count": 1' \
    "$workdir/bl.json"
rc=0
"$lint" --root "$workdir/blroot" --baseline-check "$workdir/bl.json" \
    >"$workdir/out" 2>"$workdir/err" || rc=$?
check "baseline check exits 0 with no new violations" test "$rc" -eq 0
cat >"$workdir/blroot/src/common/bad2.cc" <<'EOF'
// Injected: second upward edge, absent from the frozen baseline.
#include "core/engine.h"

namespace fixture {
int More() {
  CoreEngine e;
  return e.ticks;
}
}  // namespace fixture
EOF
rc=0
"$lint" --root "$workdir/blroot" --baseline-check "$workdir/bl.json" \
    >"$workdir/out" 2>"$workdir/err" || rc=$?
check "baseline check exits 1 on an injected violation" test "$rc" -eq 1
check "only the injected violation surfaces" \
    sh -c "grep -q bad2.cc '$workdir/out' && ! grep -q 'bad\\.cc' '$workdir/out'"

# --- usage and config errors ----------------------------------------------
rc=0
"$lint" --root "$fixtures/layer_violation" --baseline "$workdir/x.json" \
    --baseline-check "$workdir/bl.json" >"$workdir/out" 2>"$workdir/err" || rc=$?
check "--baseline with --baseline-check exits 2" test "$rc" -eq 2

rc=0
"$lint" --root "$fixtures/layer_violation" --format yaml \
    >"$workdir/out" 2>"$workdir/err" || rc=$?
check "unknown --format exits 2" test "$rc" -eq 2

mkdir -p "$workdir/cyclic/tools/lint" "$workdir/cyclic/src/common"
cat >"$workdir/cyclic/tools/lint/layers.json" <<'EOF'
{
  "layers": {
    "common": ["core"],
    "core": ["common"]
  }
}
EOF
printf 'namespace fixture { inline int One() { return 1; } }\n' \
    >"$workdir/cyclic/src/common/one.cc"
rc=0
"$lint" --root "$workdir/cyclic" >"$workdir/out" 2>"$workdir/err" || rc=$?
check "cyclic declared layer graph exits 2" test "$rc" -eq 2
check "cyclic graph error names the cycle" \
    grep -q 'declared layer graph is cyclic' "$workdir/err"

exit "$fail"
