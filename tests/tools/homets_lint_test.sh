#!/bin/sh
# Tests homets_lint against the deliberately-violating fixture trees in
# lint_fixtures/: each case is a miniature repo root holding a bad file (every
# line a known violation), a suppressed variant (same code, allow() comments,
# zero findings expected), and for path-scoped rules a file proving the scope
# (bench/ may write to stdout). Registered as the `homets_lint_fixtures`
# ctest under the `lint` label.
#
# Usage: homets_lint_test.sh /path/to/homets_lint /path/to/lint_fixtures
set -u

lint="${1:?usage: homets_lint_test.sh homets_lint_binary fixtures_dir}"
fixtures="${2:?usage: homets_lint_test.sh homets_lint_binary fixtures_dir}"
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT
fail=0

check() {
    desc="$1"
    shift
    if "$@"; then
        echo "ok: $desc"
    else
        echo "FAIL: $desc" >&2
        fail=1
    fi
}

# Runs the linter on a fixture root, captures stdout and the exit code.
run_case() {
    rc=0
    "$lint" --root "$fixtures/$1" >"$workdir/out" 2>"$workdir/err" || rc=$?
}

# Number of reported violations for a given rule id.
hits() {
    grep -c ": $1: " "$workdir/out"
}

# --- no-raw-random --------------------------------------------------------
run_case raw_random
check "raw_random exits 1" test "$rc" -eq 1
check "raw_random: 4 no-raw-random hits" test "$(hits no-raw-random)" -eq 4
check "raw_random flags srand line" grep -q 'bad.cc:7: no-raw-random' "$workdir/out"
check "raw_random flags the wall clock" grep -q "time(nullptr)" "$workdir/out"
check "raw_random: suppressed variant is silent" \
    sh -c "! grep -q suppressed.cc '$workdir/out'"

# --- float-equality -------------------------------------------------------
run_case float_equality
check "float_equality exits 1" test "$rc" -eq 1
check "float_equality: 3 hits" test "$(hits float-equality)" -eq 3
check "float_equality: zero guard allowed" \
    sh -c "! grep -q 'bad.cc:6:' '$workdir/out'"
check "float_equality: suppressed variant is silent" \
    sh -c "! grep -q suppressed.cc '$workdir/out'"

# --- no-stdout-in-lib -----------------------------------------------------
run_case stdout_in_lib
check "stdout_in_lib exits 1" test "$rc" -eq 1
check "stdout_in_lib: 3 hits" test "$(hits no-stdout-in-lib)" -eq 3
check "stdout_in_lib: bench/ is out of scope" \
    sh -c "! grep -q 'bench/ok.cc' '$workdir/out'"
check "stdout_in_lib: suppressed variant is silent" \
    sh -c "! grep -q suppressed.cc '$workdir/out'"

# --- no-raw-stderr-in-lib -------------------------------------------------
run_case raw_stderr
check "raw_stderr exits 1" test "$rc" -eq 1
check "raw_stderr: 2 no-raw-stderr-in-lib hits" \
    test "$(hits no-raw-stderr-in-lib)" -eq 2
check "raw_stderr flags the cerr line" \
    grep -q 'src/bad.cc:6: no-raw-stderr-in-lib' "$workdir/out"
check "raw_stderr: identifiers containing stderr do not match" \
    sh -c "! grep -q 'bad.cc:8:' '$workdir/out'"
check "raw_stderr: tools/ is out of scope" \
    sh -c "! grep -q 'tools/ok.cc' '$workdir/out'"
check "raw_stderr: suppressed variant is silent" \
    sh -c "! grep -q suppressed.cc '$workdir/out'"

# --- no-cc-include --------------------------------------------------------
run_case cc_include
check "cc_include exits 1" test "$rc" -eq 1
check "cc_include: 1 hit" test "$(hits no-cc-include)" -eq 1
check "cc_include: header include allowed" \
    sh -c "! grep -q 'bad.cc:3:' '$workdir/out'"
check "cc_include: suppressed variant is silent" \
    sh -c "! grep -q suppressed.cc '$workdir/out'"

# --- csv-include ----------------------------------------------------------
run_case csv_include
check "csv_include exits 1" test "$rc" -eq 1
check "csv_include: 1 hit" test "$(hits csv-include)" -eq 1
check "csv_include flags src/core" \
    grep -q 'src/core/bad.cc:2: csv-include' "$workdir/out"
check "csv_include: src/io is in scope for the CSV edge" \
    sh -c "! grep -q 'src/io/ok.cc' '$workdir/out'"
check "csv_include: tests/ may use the edge directly" \
    sh -c "! grep -q 'tests/ok.cc' '$workdir/out'"
check "csv_include: suppressed variant is silent" \
    sh -c "! grep -q suppressed.cc '$workdir/out'"

# --- unsafe-call ----------------------------------------------------------
run_case unsafe_call
check "unsafe_call exits 1" test "$rc" -eq 1
check "unsafe_call: 2 hits" test "$(hits unsafe-call)" -eq 2
check "unsafe_call flags sprintf" grep -q "banned call 'sprintf('" "$workdir/out"
check "unsafe_call flags strtok" grep -q "banned call 'strtok('" "$workdir/out"
check "unsafe_call: suppressed variant is silent" \
    sh -c "! grep -q suppressed.cc '$workdir/out'"

# --- metric catalog rules (absorbed from check_metrics_names.sh) ----------
run_case metrics
check "metrics exits 1" test "$rc" -eq 1
check "metrics: 2 metric-name-format hits" \
    test "$(hits metric-name-format)" -eq 2
check "metrics: 1 metric-name-duplicate hit" \
    test "$(hits metric-name-duplicate)" -eq 1
check "metrics: 1 metric-raw-literal hit" \
    test "$(hits metric-raw-literal)" -eq 1
check "metrics: 1 metric-dead-constant hit" \
    test "$(hits metric-dead-constant)" -eq 1
check "metrics: dead constant named" grep -q kFixtureDead "$workdir/out"

# --- discarded-status -----------------------------------------------------
run_case discarded_status
check "discarded_status exits 1" test "$rc" -eq 1
check "discarded_status: 3 hits" test "$(hits discarded-status)" -eq 3
check "discarded_status flags the member call" \
    grep -q "bad.cc:8: discarded-status: result of 'Flush'" "$workdir/out"
check "discarded_status: assigned and inspected calls are fine" \
    sh -c "! grep -qE 'bad.cc:(10|12):' '$workdir/out'"
check "discarded_status: suppressed variant is silent" \
    sh -c "! grep -q suppressed.cc '$workdir/out'"

# --- clock-discipline -----------------------------------------------------
run_case clock_discipline
check "clock_discipline exits 1" test "$rc" -eq 1
check "clock_discipline: 2 hits" test "$(hits clock-discipline)" -eq 2
check "clock_discipline flags system_clock" \
    grep -q 'src/core/bad.cc:7: clock-discipline' "$workdir/out"
check "clock_discipline flags clock_gettime" \
    grep -q 'src/core/bad.cc:9: clock-discipline' "$workdir/out"
check "clock_discipline: steady_clock durations are fine" \
    sh -c "! grep -q 'bad.cc:10:' '$workdir/out'"
check "clock_discipline: src/obs owns the wall clock" \
    sh -c "! grep -q 'src/obs/ok.cc' '$workdir/out'"
check "clock_discipline: src/common hosts the timing substrate" \
    sh -c "! grep -q 'src/common/ok.cc' '$workdir/out'"
check "clock_discipline: suppressed variant is silent" \
    sh -c "! grep -q suppressed.cc '$workdir/out'"

# --- clean tree and rule filtering ----------------------------------------
run_case clean
check "clean tree exits 0" test "$rc" -eq 0
check "clean tree prints OK" grep -q '^OK:' "$workdir/out"

rc=0
"$lint" --root "$fixtures/raw_random" --rules float-equality \
    >"$workdir/out" 2>"$workdir/err" || rc=$?
check "--rules filter: raw_random clean under float-equality only" \
    test "$rc" -eq 0

rc=0
"$lint" --root "$fixtures/does_not_exist" >"$workdir/out" 2>"$workdir/err" || rc=$?
check "missing root exits 2" test "$rc" -eq 2

rc=0
"$lint" --rules not-a-rule --root "$fixtures/clean" \
    >"$workdir/out" 2>"$workdir/err" || rc=$?
check "unknown rule id exits 2" test "$rc" -eq 2

check "--list-rules names every rule" \
    test "$("$lint" --list-rules | wc -l)" -eq 21

# --- comment-only suppressions reach past blank lines ---------------------
run_case suppression_gap
check "suppression_gap exits 0" test "$rc" -eq 0
check "suppression_gap prints OK" grep -q '^OK:' "$workdir/out"

exit "$fail"
