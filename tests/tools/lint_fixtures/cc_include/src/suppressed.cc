// Fixture: suppressed .cc include — zero findings expected.
#include "helper.cc"  // homets-lint: allow(no-cc-include)

int UseHelperAllowed() { return 1; }
