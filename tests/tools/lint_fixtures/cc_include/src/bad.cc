// Fixture: including an implementation file.
#include "helper.cc"  // hit
#include "helper.h"   // headers are fine

int UseHelper() { return 1; }
