// Fixture: a file with nothing to report; the tool must exit 0 on this tree.
#include <cstdio>

double Blend(double a, double b) {
  if (a == 0.0) return b;  // exact-zero guard is allowed
  std::fprintf(stderr, "blending\n");  // homets-lint: allow(no-raw-stderr-in-lib)
  return 0.5 * (a + b);
}
