// Fixture: src/common hosts the low-level timing substrate (prof hooks),
// so direct clock reads are in scope here.
#include <ctime>

long CommonTicks() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return ts.tv_nsec;
}
