// Fixture: src/obs owns the wall clock (Logger timestamps, trace epochs).
#include <chrono>

int64_t ObsNowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}
