// Fixture: wall-clock reads in the engine layers break determinism and
// bypass the obs layer's timestamp discipline.
#include <chrono>
#include <ctime>

int64_t WallClockNow() {
  const auto now = std::chrono::system_clock::now();  // hit
  timespec ts;
  clock_gettime(CLOCK_REALTIME, &ts);  // hit
  const auto mono = std::chrono::steady_clock::now();  // durations are fine
  (void)mono;
  return static_cast<int64_t>(ts.tv_sec) +
         std::chrono::duration_cast<std::chrono::seconds>(
             now.time_since_epoch())
             .count();
}
