// Fixture: the same violations, each silenced with the suppression comment —
// this file must produce zero findings.
#include <chrono>
#include <ctime>

int64_t WallClockNowAllowed() {
  // homets-lint: allow(clock-discipline)
  const auto now = std::chrono::system_clock::now();
  timespec ts;
  clock_gettime(CLOCK_REALTIME, &ts);  // homets-lint: allow(clock-discipline)
  return static_cast<int64_t>(ts.tv_sec) +
         std::chrono::duration_cast<std::chrono::seconds>(
             now.time_since_epoch())
             .count();
}
