// Fixture: every statement here must trip no-raw-random.
#include <cstdlib>
#include <ctime>
#include <random>

int NoisySeed() {
  std::srand(static_cast<unsigned>(time(nullptr)));  // two hits: srand + time
  std::random_device entropy;                        // one hit
  return rand() + static_cast<int>(entropy());       // one hit (rand)
}
