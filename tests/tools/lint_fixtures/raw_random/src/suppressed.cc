// Fixture: the same violations, each silenced with the suppression comment —
// this file must produce zero findings.
#include <cstdlib>
#include <ctime>
#include <random>

int NoisySeedAllowed() {
  // homets-lint: allow(no-raw-random)
  std::srand(static_cast<unsigned>(time(nullptr)));
  std::random_device entropy;  // homets-lint: allow(no-raw-random)
  return rand() + static_cast<int>(entropy());  // homets-lint: allow(no-raw-random)
}
