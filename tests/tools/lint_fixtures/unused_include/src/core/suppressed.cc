// Fixture: the same dead include, suppressed with a rationale.
#include "core/used.h"
#include "core/unused.h"  // homets-lint: allow(unused-include)

namespace fixture {
int SuppressedUse() {
  UsedThing thing;
  return thing.value + 1;
}
}  // namespace fixture
