// Fixture: one include is referenced, the other is dead weight.
#include "core/used.h"
#include "core/unused.h"

namespace fixture {
int Use() {
  UsedThing thing;
  return thing.value;
}
}  // namespace fixture
