// Fixture: a header nothing in the includer refers to.
#ifndef FIXTURE_UNUSED_H_
#define FIXTURE_UNUSED_H_

namespace fixture {
struct UnusedThing {
  int value = 0;
};
}  // namespace fixture

#endif  // FIXTURE_UNUSED_H_
