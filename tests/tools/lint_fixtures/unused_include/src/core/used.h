// Fixture: a header whose symbol the includer really uses.
#ifndef FIXTURE_USED_H_
#define FIXTURE_USED_H_

namespace fixture {
struct UsedThing {
  int value = 0;
};
}  // namespace fixture

#endif  // FIXTURE_USED_H_
