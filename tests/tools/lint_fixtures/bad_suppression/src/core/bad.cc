// Fixture: a suppression naming a rule id the registry does not know.
namespace fixture {
inline int Answer() {
  return 42;  // homets-lint: allow(no-raw-randomness)
}
}  // namespace fixture
