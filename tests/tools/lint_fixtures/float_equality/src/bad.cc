// Fixture: naked floating-point equality against nonzero literals.
bool Classify(double similarity, double pvalue) {
  if (similarity == 0.95) return true;   // hit
  if (pvalue != 1e-9) return false;      // hit
  if (0.5 == similarity) return true;    // hit (literal on the left)
  if (similarity == 0.0) return false;   // exact-zero guard: allowed
  int exact = 3;
  return exact == 3;                     // integer compare: allowed
}
