// Fixture: the same comparisons, suppressed — zero findings expected.
bool ClassifyAllowed(double similarity, double pvalue) {
  if (similarity == 0.95) return true;  // homets-lint: allow(float-equality)
  // homets-lint: allow(float-equality)
  if (pvalue != 1e-9) return false;
  return similarity == 0.0;
}
