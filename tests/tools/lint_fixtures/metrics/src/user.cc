// Fixture: references every catalog constant except kFixtureDead, and one
// raw-literal registration (metric-raw-literal hit).
#include "obs/metric_names.h"

struct FakeRegistry {
  int* GetCounter(std::string_view) { return nullptr; }
};

int RegisterAll() {
  FakeRegistry registry;
  auto* raw = registry.GetCounter("homets.engine.raw_literal");  // hit
  auto* good = registry.GetCounter(kFixtureGood);
  auto* bad = registry.GetCounter(kFixtureBadCase);
  auto* two = registry.GetCounter(kFixtureTwoSegments);
  auto* dupe = registry.GetCounter(kFixtureDupe);
  return (raw != nullptr) + (good != nullptr) + (bad != nullptr) +
         (two != nullptr) + (dupe != nullptr);
}
