// Fixture catalog: one conforming name, one malformed name, one duplicate,
// one dead constant. (This is a fixture file, not the real catalog.)
#ifndef FIXTURE_METRIC_NAMES_H_
#define FIXTURE_METRIC_NAMES_H_

#include <string_view>

inline constexpr std::string_view kFixtureGood = "homets.engine.pairs";
inline constexpr std::string_view kFixtureBadCase =
    "homets.Engine.PairsDone";  // metric-name-format hit
inline constexpr std::string_view kFixtureTwoSegments =
    "homets.only_one_segment";  // metric-name-format hit
inline constexpr std::string_view kFixtureDupe =
    "homets.engine.pairs";  // metric-name-duplicate hit
inline constexpr std::string_view kFixtureDead =
    "homets.engine.never_registered";  // metric-dead-constant hit

#endif  // FIXTURE_METRIC_NAMES_H_
