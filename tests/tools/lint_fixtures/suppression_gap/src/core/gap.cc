// Fixture: a comment-only suppression separated from its target line by a
// blank line must still cover it (the lexer carries it past blanks).
#include <cstdlib>

namespace fixture {
inline int Draw() {
  // homets-lint: allow(no-raw-random)

  return rand();
}
}  // namespace fixture
