// Fixture: src/io owns the CSV reader, so the include is in scope here.
#include "io/csv.h"

int IoLayer() { return 1; }
