// Fixture: suppressed direct CSV include — zero findings expected.
#include "io/csv.h"  // homets-lint: allow(csv-include)

int UseCsvAllowed() { return 1; }
