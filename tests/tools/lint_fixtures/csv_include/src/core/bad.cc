// Fixture: the CSV reader is the io layer's private ingest edge.
#include "io/csv.h"      // hit: outside src/io, src/storage, tests/
#include "io/dataset.h"  // the sanctioned door

int UseCsv() { return 1; }
