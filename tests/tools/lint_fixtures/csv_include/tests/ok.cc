// Fixture: tests exercise the CSV edge directly, so the include is allowed.
#include "io/csv.h"

int TestUsesCsv() { return 1; }
