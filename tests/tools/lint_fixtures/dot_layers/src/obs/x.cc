// Fixture: disallowed upward edge obs -> core (renders red in DOT).
#include "core/b.h"

namespace fixture {
int RedUse() {
  Bb b;
  return b.inner.value;
}
}  // namespace fixture
