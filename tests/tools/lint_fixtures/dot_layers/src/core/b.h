#ifndef FIXTURE_B_H_
#define FIXTURE_B_H_

#include "common/a.h"

namespace fixture {
struct Bb {
  Aa inner;
};
}  // namespace fixture

#endif  // FIXTURE_B_H_
