#ifndef FIXTURE_A_H_
#define FIXTURE_A_H_

namespace fixture {
struct Aa {
  int value = 0;
};
}  // namespace fixture

#endif  // FIXTURE_A_H_
