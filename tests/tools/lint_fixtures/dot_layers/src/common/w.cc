// Fixture: waived upward edge common -> core (renders dashed in DOT).
#include "core/b.h"

namespace fixture {
int WaivedUse() {
  Bb b;
  return b.inner.value;
}
}  // namespace fixture
