// Fixture: the other half of the include cycle.
#ifndef FIXTURE_Y_H_
#define FIXTURE_Y_H_

#include "a/x.h"

namespace fixture {
struct Yy {
  Xx* peer = nullptr;
};
}  // namespace fixture

#endif  // FIXTURE_Y_H_
