// Fixture: half of an include cycle.
#ifndef FIXTURE_X_H_
#define FIXTURE_X_H_

#include "a/y.h"

namespace fixture {
struct Xx {
  Yy* peer = nullptr;
};
}  // namespace fixture

#endif  // FIXTURE_X_H_
