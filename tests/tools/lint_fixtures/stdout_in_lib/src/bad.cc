// Fixture: stdout writes inside src/ library code.
#include <cstdio>
#include <iostream>

void Chatty(int value) {
  std::cout << "value=" << value << "\n";  // hit
  printf("value=%d\n", value);             // hit
  puts("done");                            // hit
  std::fprintf(stderr, "diagnostics are fine: %d\n", value);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%d", value);  // snprintf is fine
}
