// Fixture: stdout writes inside src/ library code.
#include <cstdio>
#include <iostream>

void Chatty(int value) {
  std::cout << "value=" << value << "\n";  // hit
  printf("value=%d\n", value);             // hit
  puts("done");                            // hit
  std::fprintf(stderr, "ok for no-stdout: %d\n", value);  // homets-lint: allow(no-raw-stderr-in-lib)
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%d", value);  // snprintf is fine
}
