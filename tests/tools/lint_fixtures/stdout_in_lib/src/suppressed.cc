// Fixture: suppressed stdout writes — zero findings expected.
#include <cstdio>
#include <iostream>

void ChattyAllowed(int value) {
  std::cout << value;       // homets-lint: allow(no-stdout-in-lib)
  printf("%d\n", value);    // homets-lint: allow(no-stdout-in-lib)
  puts("done");             // homets-lint: allow(no-stdout-in-lib)
}
