// Fixture: stdout is allowed outside src/ — bench binaries own their output.
#include <cstdio>

void Emit(int value) { printf("bench result %d\n", value); }
