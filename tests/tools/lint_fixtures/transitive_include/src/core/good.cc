// Fixture: the self header's closure covers DeepExtra — no violation.
#include "core/good.h"

namespace fixture {
int Facade() {
  GoodFacade facade;
  DeepExtra extra;
  return facade.inner.depth + extra.bonus;
}
}  // namespace fixture
