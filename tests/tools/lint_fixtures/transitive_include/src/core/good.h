// Fixture: good.cc's own header; its closure legitimately supplies deep.h.
#ifndef FIXTURE_GOOD_H_
#define FIXTURE_GOOD_H_

#include "core/deep.h"

namespace fixture {
struct GoodFacade {
  DeepThing inner;
};
}  // namespace fixture

#endif  // FIXTURE_GOOD_H_
