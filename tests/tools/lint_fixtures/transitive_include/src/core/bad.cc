// Fixture: DeepExtra arrives only through mid.h (transitive-include hit).
#include "core/mid.h"

namespace fixture {
int Probe() {
  MidThing mid;
  DeepExtra extra;
  return mid.inner.depth + extra.bonus;
}
}  // namespace fixture
