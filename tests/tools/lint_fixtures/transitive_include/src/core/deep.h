// Fixture: the deepest header; DeepExtra is the symbol mid.h never names.
#ifndef FIXTURE_DEEP_H_
#define FIXTURE_DEEP_H_

namespace fixture {
struct DeepThing {
  int depth = 0;
};
struct DeepExtra {
  int bonus = 0;
};
}  // namespace fixture

#endif  // FIXTURE_DEEP_H_
