// Fixture: the middle header; pulls deep.h in but only names DeepThing.
#ifndef FIXTURE_MID_H_
#define FIXTURE_MID_H_

#include "core/deep.h"

namespace fixture {
struct MidThing {
  DeepThing inner;
};
}  // namespace fixture

#endif  // FIXTURE_MID_H_
