// Fixture: the same writes with allow() comments; zero findings expected.
#include <cstdio>
#include <iostream>

void Grumble(int value) {
  // homets-lint: allow(no-raw-stderr-in-lib)
  std::cerr << "value=" << value << "\n";
  std::fprintf(stderr, "v=%d\n", value);  // homets-lint: allow(no-raw-stderr-in-lib)
}
