// Fixture: raw stderr writes inside src/ library code.
#include <cstdio>
#include <iostream>

void Grumble(int value) {
  std::cerr << "value=" << value << "\n";             // hit
  std::fprintf(stderr, "value=%d\n", value);          // hit
  int stderr_level_ = value;                          // identifier, no hit
  (void)stderr_level_;
}
