// Fixture: tools/ own their stderr — the rule is scoped to src/ only.
#include <iostream>

void Narrate() { std::cerr << "tools may narrate\n"; }
