// Fixture: suppressed discarded-status sites — zero findings expected.
#include "api.h"

void CallerAllowed() {
  SaveState(1);  // homets-lint: allow(discarded-status)
  LoadState();   // homets-lint: allow(discarded-status)
  Writer w;
  // homets-lint: allow(discarded-status)
  w.Flush();
}
