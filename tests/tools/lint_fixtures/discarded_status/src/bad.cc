// Fixture: discarded Status/Result values — each marked line is a hit.
#include "api.h"

void Caller() {
  SaveState(1);  // hit: Status dropped at statement start
  LoadState();   // hit: Result dropped
  Writer w;
  w.Flush();     // hit: Status dropped through a member call
  Log(2);        // void return: fine
  const Status kept = SaveState(3);  // assigned: fine
  (void)kept;
  if (SaveState(4).ok()) Log(4);  // inspected: fine
}
