// Fixture: the Status/Result-returning surface discarded-status matches
// call sites against. Local stand-ins, not the real homets types.
#ifndef FIXTURE_API_H_
#define FIXTURE_API_H_

struct Status {
  bool ok() const { return true; }
};
template <typename T>
struct Result {
  bool ok() const { return true; }
};

Status SaveState(int v);
Result<int> LoadState();
void Log(int v);

struct Writer {
  Status Flush();
};

#endif  // FIXTURE_API_H_
