// Fixture core-layer header.
#ifndef FIXTURE_ENGINE_H_
#define FIXTURE_ENGINE_H_

namespace fixture {
struct CoreEngine {
  int ticks = 0;
};
}  // namespace fixture

#endif  // FIXTURE_ENGINE_H_
