// Fixture: a common-layer file reaching up into core (layer-dag hit).
#include "core/engine.h"

namespace fixture {
int Ticks() {
  CoreEngine engine;
  return engine.ticks;
}
}  // namespace fixture
