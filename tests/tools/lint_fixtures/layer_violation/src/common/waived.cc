// Fixture: the same upward edge, absorbed by a file-level waiver.
#include "core/engine.h"

namespace fixture {
int WaivedTicks() {
  CoreEngine engine;
  return engine.ticks + 1;
}
}  // namespace fixture
