// Fixture: suppressed unsafe calls — zero findings expected.
#include <cstdio>
#include <cstring>

void DangerousAllowed(char* out, char* input, int value) {
  sprintf(out, "%d", value);         // homets-lint: allow(unsafe-call)
  char* token = strtok(input, ",");  // homets-lint: allow(unsafe-call)
  (void)token;
}
