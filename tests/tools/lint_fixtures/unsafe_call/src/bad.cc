// Fixture: banned unsafe calls.
#include <cstdio>
#include <cstring>

void Dangerous(char* out, char* input, int value) {
  sprintf(out, "%d", value);        // hit
  char* token = strtok(input, ","); // hit
  (void)token;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%d", value);  // bounded: fine
}
