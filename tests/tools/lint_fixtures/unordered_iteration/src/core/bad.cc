// Fixture: hash-order iteration leaks into results (unordered-iteration).
#include <unordered_map>

namespace fixture {
int Sum(const std::unordered_map<int, int>& counts) {
  int total = 0;
  for (const auto& entry : counts) {
    total += entry.second;
  }
  return total;
}

int First(const std::unordered_map<int, int>& counts) {
  const auto it = counts.begin();
  return it == counts.end() ? 0 : it->second;
}
}  // namespace fixture
