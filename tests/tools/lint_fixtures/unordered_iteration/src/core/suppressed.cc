// Fixture: the same loop, suppressed (order provably never escapes here).
#include <unordered_map>

namespace fixture {
int SuppressedSum(const std::unordered_map<int, int>& counts) {
  int total = 0;
  // homets-lint: allow(unordered-iteration)
  for (const auto& entry : counts) {
    total += entry.second;
  }
  return total;
}
}  // namespace fixture
