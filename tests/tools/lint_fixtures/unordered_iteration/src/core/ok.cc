// Fixture: lookups are order-independent and stay legal.
#include <unordered_map>

namespace fixture {
int Lookup(const std::unordered_map<int, int>& counts, int key) {
  const auto it = counts.find(key);
  return it == counts.end() ? 0 : it->second;
}
}  // namespace fixture
