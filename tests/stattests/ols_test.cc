#include "stattests/ols.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/random.h"

namespace homets::stattests {
namespace {

TEST(OlsTest, RecoversExactLinearModel) {
  // y = 2 + 3x, no noise.
  const size_t n = 20;
  std::vector<double> design;
  std::vector<double> y;
  for (size_t i = 0; i < n; ++i) {
    design.push_back(1.0);
    design.push_back(static_cast<double>(i));
    y.push_back(2.0 + 3.0 * static_cast<double>(i));
  }
  const auto fit = FitOls(design, n, 2, y).value();
  EXPECT_NEAR(fit.coefficients[0], 2.0, 1e-9);
  EXPECT_NEAR(fit.coefficients[1], 3.0, 1e-9);
  EXPECT_NEAR(fit.rss, 0.0, 1e-9);
}

TEST(OlsTest, RecoversNoisyModelWithinError) {
  homets::Rng rng(1);
  const size_t n = 2000;
  std::vector<double> design;
  std::vector<double> y;
  for (size_t i = 0; i < n; ++i) {
    const double x1 = rng.Normal();
    const double x2 = rng.Normal();
    design.push_back(1.0);
    design.push_back(x1);
    design.push_back(x2);
    y.push_back(1.5 - 2.0 * x1 + 0.5 * x2 + 0.3 * rng.Normal());
  }
  const auto fit = FitOls(design, n, 3, y).value();
  EXPECT_NEAR(fit.coefficients[0], 1.5, 0.05);
  EXPECT_NEAR(fit.coefficients[1], -2.0, 0.05);
  EXPECT_NEAR(fit.coefficients[2], 0.5, 0.05);
  EXPECT_NEAR(std::sqrt(fit.sigma2), 0.3, 0.02);
}

TEST(OlsTest, TStatLargeForRealEffectSmallForNull) {
  homets::Rng rng(2);
  const size_t n = 500;
  std::vector<double> design;
  std::vector<double> y;
  for (size_t i = 0; i < n; ++i) {
    const double x1 = rng.Normal();
    const double x2 = rng.Normal();  // no effect
    design.push_back(1.0);
    design.push_back(x1);
    design.push_back(x2);
    y.push_back(2.0 * x1 + rng.Normal());
  }
  const auto fit = FitOls(design, n, 3, y).value();
  EXPECT_GT(std::fabs(fit.TStat(1)), 10.0);
  EXPECT_LT(std::fabs(fit.TStat(2)), 4.0);
}

TEST(OlsTest, StandardErrorsMatchKnownFormulaSimpleRegression) {
  // For y on {1, x}: se(b1) = s / sqrt(Σ(x−x̄)²).
  homets::Rng rng(3);
  const size_t n = 300;
  std::vector<double> design, y, xs;
  for (size_t i = 0; i < n; ++i) {
    const double x = rng.Normal();
    xs.push_back(x);
    design.push_back(1.0);
    design.push_back(x);
    y.push_back(1.0 + 0.5 * x + rng.Normal());
  }
  const auto fit = FitOls(design, n, 2, y).value();
  double mean_x = 0.0;
  for (double x : xs) mean_x += x;
  mean_x /= static_cast<double>(n);
  double sxx = 0.0;
  for (double x : xs) sxx += (x - mean_x) * (x - mean_x);
  const double expected_se = std::sqrt(fit.sigma2 / sxx);
  EXPECT_NEAR(fit.standard_errors[1], expected_se, 1e-9);
}

TEST(OlsTest, SingularDesignRejected) {
  // Second column duplicates the first.
  std::vector<double> design;
  std::vector<double> y;
  for (size_t i = 0; i < 10; ++i) {
    design.push_back(1.0);
    design.push_back(1.0);
    y.push_back(static_cast<double>(i));
  }
  EXPECT_FALSE(FitOls(design, 10, 2, y).ok());
}

TEST(OlsTest, ShapeValidation) {
  EXPECT_FALSE(FitOls({1.0, 2.0}, 2, 1, {1.0}).ok());        // y wrong size
  EXPECT_FALSE(FitOls({1.0, 2.0}, 2, 2, {1.0, 2.0}).ok());   // n_rows <= cols
  EXPECT_FALSE(FitOls({}, 0, 0, {}).ok());
}

}  // namespace
}  // namespace homets::stattests
