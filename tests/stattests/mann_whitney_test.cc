#include "stattests/mann_whitney.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace homets::stattests {
namespace {

std::vector<double> NormalSample(double mean, size_t n, uint64_t seed) {
  homets::Rng rng(seed);
  std::vector<double> xs(n);
  for (auto& x : xs) x = rng.Normal(mean, 1.0);
  return xs;
}

TEST(MannWhitneyTest, SameDistributionNotRejected) {
  const auto test =
      MannWhitneyU(NormalSample(0.0, 400, 1), NormalSample(0.0, 400, 2))
          .value();
  EXPECT_FALSE(test.Rejected());
  EXPECT_LT(std::fabs(test.z), 2.5);
}

TEST(MannWhitneyTest, ShiftRejected) {
  const auto test =
      MannWhitneyU(NormalSample(0.0, 400, 3), NormalSample(0.8, 400, 4))
          .value();
  EXPECT_TRUE(test.Rejected());
  EXPECT_LT(test.p_value, 1e-6);
}

TEST(MannWhitneyTest, DirectionOfShiftInZ) {
  const auto low_first =
      MannWhitneyU(NormalSample(0.0, 300, 5), NormalSample(1.0, 300, 6))
          .value();
  EXPECT_LT(low_first.z, 0.0);  // first sample ranks lower
  const auto high_first =
      MannWhitneyU(NormalSample(1.0, 300, 7), NormalSample(0.0, 300, 8))
          .value();
  EXPECT_GT(high_first.z, 0.0);
}

TEST(MannWhitneyTest, KnownSmallSampleU) {
  // a = {1, 2}, b = {3, 4}: every b beats every a → U₁ = 0.
  const auto test = MannWhitneyU({1.0, 2.0}, {3.0, 4.0}).value();
  EXPECT_DOUBLE_EQ(test.u_statistic, 0.0);
}

TEST(MannWhitneyTest, TiesHandled) {
  const auto test =
      MannWhitneyU({1.0, 2.0, 2.0, 3.0}, {2.0, 2.0, 3.0, 4.0}).value();
  EXPECT_GE(test.p_value, 0.0);
  EXPECT_LE(test.p_value, 1.0);
}

TEST(MannWhitneyTest, AllTiedErrors) {
  EXPECT_FALSE(MannWhitneyU({5.0, 5.0, 5.0}, {5.0, 5.0}).ok());
}

TEST(MannWhitneyTest, NansDroppedTooFewErrors) {
  const std::vector<double> a{1.0, std::nan("")};
  EXPECT_FALSE(MannWhitneyU(a, {1.0, 2.0}).ok());
}

TEST(MannWhitneyTest, RobustToOutliersUnlikeTTests) {
  // Location shift detected even with a gigantic outlier in one sample —
  // why a rank test suits heavy-tailed traffic values.
  auto a = NormalSample(0.0, 200, 9);
  auto b = NormalSample(0.7, 200, 10);
  a.push_back(1e9);
  const auto test = MannWhitneyU(a, b).value();
  EXPECT_TRUE(test.Rejected());
}

TEST(MannWhitneyTest, ScaleChangeAloneBarelyDetected) {
  // Pure variance change keeps the medians equal: the rank-sum test reacts
  // weakly (unlike KS) — it targets location.
  const size_t n = 400;
  homets::Rng rng(11);
  std::vector<double> narrow(n), wide(n);
  for (auto& x : narrow) x = rng.Normal(0.0, 1.0);
  for (auto& x : wide) x = rng.Normal(0.0, 4.0);
  const auto test = MannWhitneyU(narrow, wide).value();
  EXPECT_LT(std::fabs(test.z), 3.0);
}

}  // namespace
}  // namespace homets::stattests
