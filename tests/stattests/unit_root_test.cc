#include "stattests/unit_root.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/random.h"

namespace homets::stattests {
namespace {

std::vector<double> StationaryAr1(double phi, size_t n, uint64_t seed) {
  homets::Rng rng(seed);
  std::vector<double> x(n);
  x[0] = rng.Normal();
  for (size_t t = 1; t < n; ++t) x[t] = phi * x[t - 1] + rng.Normal();
  return x;
}

std::vector<double> RandomWalk(size_t n, uint64_t seed) {
  homets::Rng rng(seed);
  std::vector<double> x(n);
  x[0] = 0.0;
  for (size_t t = 1; t < n; ++t) x[t] = x[t - 1] + rng.Normal();
  return x;
}

TEST(AdfTest, StationarySeriesRejectsUnitRoot) {
  const auto test = AugmentedDickeyFuller(StationaryAr1(0.3, 600, 1)).value();
  EXPECT_TRUE(test.StationaryAt5pct());
  EXPECT_LT(test.statistic, test.crit_5pct);
}

TEST(AdfTest, RandomWalkKeepsUnitRoot) {
  const auto test = AugmentedDickeyFuller(RandomWalk(600, 2)).value();
  EXPECT_FALSE(test.StationaryAt5pct());
}

TEST(AdfTest, CriticalValuesOrdered) {
  const auto test = AugmentedDickeyFuller(StationaryAr1(0.5, 300, 3)).value();
  EXPECT_LT(test.crit_1pct, test.crit_5pct);
  EXPECT_LT(test.crit_5pct, test.crit_10pct);
  // Near the asymptotic constants for a decent sample.
  EXPECT_NEAR(test.crit_5pct, -2.87, 0.05);
}

TEST(AdfTest, ExplicitLagOrderUsed) {
  const auto test =
      AugmentedDickeyFuller(StationaryAr1(0.4, 400, 4), 3).value();
  EXPECT_EQ(test.lags, 3u);
}

TEST(AdfTest, SchwertRuleDefaultLags) {
  const auto test = AugmentedDickeyFuller(StationaryAr1(0.4, 400, 5)).value();
  // ⌊12 (400/100)^{1/4}⌋ = ⌊16.97⌋ = 16
  EXPECT_EQ(test.lags, 16u);
}

TEST(AdfTest, TooShortSeriesErrors) {
  EXPECT_FALSE(AugmentedDickeyFuller({1, 2, 3, 4, 5}).ok());
}

TEST(AdfTest, NansImputed) {
  auto x = StationaryAr1(0.3, 500, 6);
  x[10] = std::nan("");
  x[200] = std::nan("");
  EXPECT_TRUE(AugmentedDickeyFuller(x).ok());
}

TEST(KpssTest, StationarySeriesNotRejected) {
  const auto test = Kpss(StationaryAr1(0.2, 800, 7)).value();
  EXPECT_FALSE(test.RejectedAt5pct());
  EXPECT_LT(test.statistic, test.crit_5pct);
}

TEST(KpssTest, RandomWalkRejected) {
  const auto test = Kpss(RandomWalk(800, 8)).value();
  EXPECT_TRUE(test.RejectedAt5pct());
  EXPECT_GT(test.statistic, test.crit_1pct);
}

TEST(KpssTest, CriticalValuesAreKpss1992Table) {
  const KpssTest test;
  EXPECT_DOUBLE_EQ(test.crit_10pct, 0.347);
  EXPECT_DOUBLE_EQ(test.crit_5pct, 0.463);
  EXPECT_DOUBLE_EQ(test.crit_2_5pct, 0.574);
  EXPECT_DOUBLE_EQ(test.crit_1pct, 0.739);
}

TEST(KpssTest, BandwidthRule) {
  const auto test = Kpss(StationaryAr1(0.2, 400, 9)).value();
  // ⌊4 (400/100)^{1/4}⌋ = ⌊5.65⌋ = 5
  EXPECT_EQ(test.bandwidth, 5u);
}

TEST(KpssTest, ExplicitBandwidth) {
  const auto test = Kpss(StationaryAr1(0.2, 400, 10), 12).value();
  EXPECT_EQ(test.bandwidth, 12u);
}

TEST(KpssTest, TooShortErrors) { EXPECT_FALSE(Kpss({1, 2, 3}).ok()); }

TEST(AdfKpssAgreement, OppositeNullsAgreeOnClearCases) {
  // Stationary: ADF rejects unit root, KPSS keeps stationarity.
  const auto stationary = StationaryAr1(0.3, 1000, 11);
  EXPECT_TRUE(AugmentedDickeyFuller(stationary)->StationaryAt5pct());
  EXPECT_FALSE(Kpss(stationary)->RejectedAt5pct());
  // Unit root: ADF keeps, KPSS rejects.
  const auto walk = RandomWalk(1000, 12);
  EXPECT_FALSE(AugmentedDickeyFuller(walk)->StationaryAt5pct());
  EXPECT_TRUE(Kpss(walk)->RejectedAt5pct());
}

TEST(LjungBoxTest, WhiteNoiseNotRejected) {
  homets::Rng rng(13);
  std::vector<double> x(2000);
  for (auto& v : x) v = rng.Normal();
  const auto test = LjungBox(x, 10).value();
  EXPECT_FALSE(test.Rejected());
  EXPECT_EQ(test.lags, 10u);
}

TEST(LjungBoxTest, AutocorrelatedSeriesRejected) {
  const auto test = LjungBox(StationaryAr1(0.6, 2000, 14), 10).value();
  EXPECT_TRUE(test.Rejected());
  EXPECT_LT(test.p_value, 1e-6);
}

TEST(LjungBoxTest, InvalidInputs) {
  EXPECT_FALSE(LjungBox({1, 2, 3}, 0).ok());
  EXPECT_FALSE(LjungBox({1, 2, 3}, 5).ok());
}

}  // namespace
}  // namespace homets::stattests
