#include "stattests/ks_test.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/random.h"

namespace homets::stattests {
namespace {

std::vector<double> NormalSample(double mean, double sd, size_t n,
                                 uint64_t seed) {
  homets::Rng rng(seed);
  std::vector<double> xs(n);
  for (auto& x : xs) x = rng.Normal(mean, sd);
  return xs;
}

TEST(KsTest, SameDistributionNotRejected) {
  const auto a = NormalSample(0.0, 1.0, 500, 1);
  const auto b = NormalSample(0.0, 1.0, 500, 2);
  const auto test = KolmogorovSmirnov(a, b).value();
  EXPECT_FALSE(test.Rejected());
  EXPECT_LT(test.statistic, 0.1);
}

TEST(KsTest, ShiftedDistributionRejected) {
  const auto a = NormalSample(0.0, 1.0, 500, 3);
  const auto b = NormalSample(1.0, 1.0, 500, 4);
  const auto test = KolmogorovSmirnov(a, b).value();
  EXPECT_TRUE(test.Rejected());
  EXPECT_GT(test.statistic, 0.3);
  EXPECT_LT(test.p_value, 1e-6);
}

TEST(KsTest, DifferentScaleRejected) {
  const auto a = NormalSample(0.0, 1.0, 800, 5);
  const auto b = NormalSample(0.0, 3.0, 800, 6);
  EXPECT_TRUE(KolmogorovSmirnov(a, b)->Rejected());
}

TEST(KsTest, IdenticalSamplesStatZero) {
  const std::vector<double> a{1, 2, 3, 4, 5};
  const auto test = KolmogorovSmirnov(a, a).value();
  EXPECT_DOUBLE_EQ(test.statistic, 0.0);
  EXPECT_NEAR(test.p_value, 1.0, 1e-9);
}

TEST(KsTest, DisjointSupportsStatOne) {
  const std::vector<double> a{1, 2, 3, 4, 5, 6, 7, 8};
  const std::vector<double> b{100, 101, 102, 103, 104, 105, 106, 107};
  const auto test = KolmogorovSmirnov(a, b).value();
  EXPECT_DOUBLE_EQ(test.statistic, 1.0);
  EXPECT_TRUE(test.Rejected());
}

TEST(KsTest, KnownSmallSampleStatistic) {
  // a = {1,2,3}, b = {1.5, 2.5, 3.5}: max ECDF gap is 1/3.
  const auto test = KolmogorovSmirnov({1, 2, 3}, {1.5, 2.5, 3.5}).value();
  EXPECT_NEAR(test.statistic, 1.0 / 3.0, 1e-12);
}

TEST(KsTest, TiesAcrossSamplesHandled) {
  const auto test =
      KolmogorovSmirnov({1, 1, 2, 2, 3}, {1, 2, 2, 3, 3}).value();
  EXPECT_GE(test.statistic, 0.0);
  EXPECT_LE(test.statistic, 1.0);
  EXPECT_FALSE(test.Rejected());
}

TEST(KsTest, NansDropped) {
  std::vector<double> a{1, 2, 3, std::nan(""), 4};
  std::vector<double> b{1.1, 2.1, 2.9, 4.2};
  const auto test = KolmogorovSmirnov(a, b).value();
  EXPECT_EQ(test.n1, 4u);
  EXPECT_EQ(test.n2, 4u);
}

TEST(KsTest, TooFewObservationsError) {
  EXPECT_FALSE(KolmogorovSmirnov({1.0}, {1.0, 2.0}).ok());
  const std::vector<double> all_nan{std::nan(""), std::nan("")};
  EXPECT_FALSE(KolmogorovSmirnov(all_nan, {1.0, 2.0}).ok());
}

TEST(KsTest, UnbalancedSampleSizes) {
  const auto a = NormalSample(0.0, 1.0, 2000, 7);
  const auto b = NormalSample(0.0, 1.0, 50, 8);
  EXPECT_FALSE(KolmogorovSmirnov(a, b)->Rejected());
}

TEST(KsTest, PowerGrowsWithSampleSize) {
  // A small shift: undetectable at n = 30, detected at n = 3000.
  const auto small_a = NormalSample(0.0, 1.0, 30, 9);
  const auto small_b = NormalSample(0.2, 1.0, 30, 10);
  const auto big_a = NormalSample(0.0, 1.0, 3000, 11);
  const auto big_b = NormalSample(0.2, 1.0, 3000, 12);
  EXPECT_GT(KolmogorovSmirnov(small_a, small_b)->p_value,
            KolmogorovSmirnov(big_a, big_b)->p_value);
  EXPECT_TRUE(KolmogorovSmirnov(big_a, big_b)->Rejected());
}

}  // namespace
}  // namespace homets::stattests
