// Extension (the paper's concluding future work): motif analysis in a
// streaming setting. Replays the synthetic fleet minute by minute through
// WindowAssembler → StreamingMotifMiner and verifies the stream recovers
// the same motif structure as the batch miner, reporting throughput.
#include <chrono>
#include <iostream>

#include "bench_util.h"
#include "core/motif.h"
#include "core/streaming.h"
#include "io/table.h"

namespace {

using namespace homets;  // NOLINT: bench binary

void Run() {
  bench::FleetCache fleet(bench::SmallConfig(30, 4));
  const int days = bench::ClampDays(fleet.config(), 28);

  // Batch reference.
  const auto set = bench::DailyMotifWindows(&fleet, days);
  const auto batch = core::MotifDiscovery().Discover(set.windows);
  std::cout << "batch: " << (batch.ok() ? batch->size() : 0) << " motifs from "
            << set.windows.size() << " windows\n";

  // Stream replay: per-minute active traffic through the assembler.
  auto assembler =
      core::WindowAssembler::Make(ts::kMinutesPerDay, 180, 0).value();
  core::StreamingMotifMiner miner(core::MotifOptions{}, 10000);
  size_t minutes_processed = 0;
  size_t windows_streamed = 0;
  const auto start = std::chrono::steady_clock::now();
  for (int id = 0; id < fleet.config().n_gateways; ++id) {
    const auto& gw = fleet.Get(id);
    if (!gw.HasObservationEveryDay(0, days)) {
      fleet.Evict(id);
      continue;
    }
    const auto active = core::ActiveAggregate(gw);
    fleet.Evict(id);
    const int64_t end =
        std::min<int64_t>(active.EndMinute(), days * ts::kMinutesPerDay);
    for (int64_t m = active.start_minute(); m < end; ++m) {
      const size_t idx = static_cast<size_t>(m - active.start_minute());
      const auto completed = assembler.Ingest(id, m, active[idx]);
      if (!completed.ok()) continue;
      ++minutes_processed;
      for (const auto& window : completed.value()) {
        if (miner.AddWindow(id, window).ok()) ++windows_streamed;
      }
    }
    // Close the final day of this gateway.
    const auto closed =
        assembler.Ingest(id, end, ts::TimeSeries::Missing());
    if (closed.ok()) {
      for (const auto& window : *closed) {
        if (miner.AddWindow(id, window).ok()) ++windows_streamed;
      }
    }
  }
  for (auto& [id, window] : assembler.Flush()) {
    if (miner.AddWindow(id, window).ok()) ++windows_streamed;
  }
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();

  const auto streamed = miner.CurrentMotifs();
  io::PrintSection(std::cout, "Streaming vs batch motif structure");
  io::TextTable table({"metric", "batch", "stream"});
  table.AddRow({"windows", bench::FmtInt(set.windows.size()),
                bench::FmtInt(windows_streamed)});
  table.AddRow({"motifs (support >= 2)",
                batch.ok() ? bench::FmtInt(batch->size()) : "n/a",
                bench::FmtInt(streamed.size())});
  table.AddRow(
      {"largest support",
       batch.ok() && !batch->empty() ? bench::FmtInt(batch->front().support())
                                     : "0",
       streamed.empty() ? "0" : bench::FmtInt(streamed.front().support())});
  table.Print(std::cout);

  io::PrintSection(std::cout, "Streaming throughput");
  std::cout << "  " << minutes_processed << " gateway-minutes in " << elapsed
            << " ms";
  if (elapsed > 0) {
    std::cout << " = "
              << bench::Fmt(static_cast<double>(minutes_processed) /
                                static_cast<double>(elapsed),
                            0)
              << "k observations/second";
  }
  std::cout << "\n  (the per-window assignment touches only candidate motifs "
               "within the retention horizon, so a production stream "
               "processor can run this per gateway shard)\n";
}

}  // namespace

int main() {
  Run();
  return 0;
}
