// Figures 9 and 10 (+ Section 7.2): weekly and daily motif mining — motif
// counts, support distributions, and the number of distinct motifs each
// gateway participates in. Paper: 101 weekly motifs from 882 weeks (14 with
// support >= 10, avg 2.76 motifs/gateway), 112 daily motifs (48 with support
// > 10, avg 12.5 motifs/gateway).
#include <iostream>
#include <map>

#include "bench_util.h"
#include "core/motif.h"
#include "io/table.h"

namespace {

using namespace homets;  // NOLINT: bench binary

void Report(const std::string& label, const bench::WindowSet& set,
            const std::vector<core::Motif>& motifs, size_t support_bar,
            const std::string& paper_counts) {
  io::PrintSection(std::cout, label + ": headline numbers");
  size_t high_support = 0;
  for (const auto& m : motifs) {
    if (m.support() >= support_bar) ++high_support;
  }
  io::TextTable head({"metric", "measured", "paper"});
  head.AddRow({"gateways", bench::FmtInt(set.gateways.size()), "-"});
  head.AddRow({"windows mined", bench::FmtInt(set.windows.size()), "-"});
  head.AddRow({"motifs", bench::FmtInt(motifs.size()), paper_counts});
  head.AddRow({StrFormat("motifs with support >= %zu", support_bar),
               bench::FmtInt(high_support), label[0] == 'W' ? "14" : "48"});
  const auto per_gateway = core::MotifsPerGateway(motifs, set.provenance);
  double avg = 0.0;
  for (const auto& [gw, count] : per_gateway) {
    avg += static_cast<double>(count);
  }
  if (!per_gateway.empty()) avg /= static_cast<double>(per_gateway.size());
  head.AddRow({"avg distinct motifs per gateway", bench::Fmt(avg, 2),
               label[0] == 'W' ? "2.76" : "12.5"});
  head.Print(std::cout);

  io::PrintSection(std::cout, label + ": support distribution (Figure 9)");
  io::TextTable hist({"support", "motifs", "sketch"});
  const auto support_hist = core::SupportHistogram(motifs);
  size_t max_count = 1;
  for (const auto& [s, c] : support_hist) max_count = std::max(max_count, c);
  for (const auto& [s, c] : support_hist) {
    hist.AddRow({bench::FmtInt(s), bench::FmtInt(c),
                 io::AsciiBar(static_cast<double>(c),
                              static_cast<double>(max_count), 25)});
  }
  hist.Print(std::cout);

  io::PrintSection(std::cout,
                   label + ": motifs per gateway (Figure 10)");
  std::map<size_t, size_t> gw_hist;
  for (const auto& [gw, count] : per_gateway) ++gw_hist[count];
  io::TextTable gw_table({"#motifs", "#gateways", "sketch"});
  size_t max_gw = 1;
  for (const auto& [k, c] : gw_hist) max_gw = std::max(max_gw, c);
  for (const auto& [k, c] : gw_hist) {
    gw_table.AddRow({bench::FmtInt(k), bench::FmtInt(c),
                     io::AsciiBar(static_cast<double>(c),
                                  static_cast<double>(max_gw), 25)});
  }
  gw_table.Print(std::cout);
}

void Run() {
  // Weekly motifs: 6 weeks (paper: 147 gateways → 882 weeks, 101 motifs).
  {
    bench::FleetCache fleet(bench::PaperConfig());
    const auto set = bench::WeeklyMotifWindows(&fleet, 6);
    const auto motifs = core::MotifDiscovery().Discover(set.windows);
    if (motifs.ok()) {
      Report("Weekly motifs", set, *motifs, 10, "101 (from 882 weeks)");
    } else {
      std::cout << "weekly motif mining failed: "
                << motifs.status().ToString() << "\n";
    }
  }
  // Daily motifs: 4 weeks of days (paper: 100 gateways, 112 motifs).
  {
    bench::FleetCache fleet(bench::PaperConfig());
    const auto set = bench::DailyMotifWindows(&fleet, 28);
    const auto motifs = core::MotifDiscovery().Discover(set.windows);
    if (motifs.ok()) {
      Report("Daily motifs", set, *motifs, 11, "112");
    } else {
      std::cout << "daily motif mining failed: "
                << motifs.status().ToString() << "\n";
    }
  }
}

}  // namespace

int main() {
  Run();
  return 0;
}
