// Figure 6 (+ Section 7.1.1): average week-over-week correlation per
// aggregation granularity, anchored at midnight and at 2am; the paper's
// winner is 8 hours from 2am.
#include <iostream>

#include "bench_util.h"
#include "core/aggregation.h"
#include "core/background.h"
#include "io/table.h"

namespace {

using namespace homets;  // NOLINT: bench binary

void Run() {
  bench::FleetCache fleet(bench::PaperConfig());
  const int weeks = 4;
  const auto eligible = bench::WeeklyEligible(fleet.generator(), weeks);

  // Background-removed aggregates, trimmed to the four analysis weeks.
  std::vector<ts::TimeSeries> active;
  for (int id : eligible) {
    auto series = core::ActiveAggregate(fleet.Get(id));
    auto sliced = series.Slice(0, weeks * ts::kMinutesPerWeek);
    active.push_back(sliced.ok() ? std::move(sliced).value()
                                 : std::move(series));
    fleet.Evict(id);
  }
  std::cout << "gateways analyzed: " << active.size() << " (paper: 153)\n";

  const std::vector<int64_t> midnight_grans{60,  120, 180,  240,
                                            360, 480, 720, 1440};
  core::AggregationSweepOptions midnight;
  midnight.period = core::PatternPeriod::kWeekly;
  midnight.anchor_offset_minutes = 0;
  const auto sweep_midnight =
      core::SweepAggregations(active, midnight_grans, midnight).value();

  io::PrintSection(std::cout,
                   "Figure 6a: weekly aggregation curve (from midnight)");
  io::TextTable t1({"granularity_h", "avg_cor_all", "n_all",
                    "avg_cor_stationary", "n_stationary"});
  for (const auto& p : sweep_midnight) {
    t1.AddRow({bench::Fmt(static_cast<double>(p.granularity_minutes) / 60.0, 0),
               bench::Fmt(p.mean_correlation_all),
               bench::FmtInt(p.gateways_all),
               p.gateways_stationary > 0
                   ? bench::Fmt(p.mean_correlation_stationary)
                   : "n/a",
               bench::FmtInt(p.gateways_stationary)});
  }
  t1.Print(std::cout);

  const std::vector<int64_t> twoam_grans{180, 240, 360, 480, 720, 1440};
  core::AggregationSweepOptions twoam = midnight;
  twoam.anchor_offset_minutes = 120;
  const auto sweep_twoam =
      core::SweepAggregations(active, twoam_grans, twoam).value();

  io::PrintSection(std::cout,
                   "Figure 6b: weekly aggregation curve (from 2am)");
  io::TextTable t2({"granularity_h", "avg_cor_all", "avg_cor_stationary",
                    "n_stationary"});
  for (const auto& p : sweep_twoam) {
    t2.AddRow({bench::Fmt(static_cast<double>(p.granularity_minutes) / 60.0, 0),
               bench::Fmt(p.mean_correlation_all),
               p.gateways_stationary > 0
                   ? bench::Fmt(p.mean_correlation_stationary)
                   : "n/a",
               bench::FmtInt(p.gateways_stationary)});
  }
  t2.Print(std::cout);

  const auto best_midnight = core::BestGranularity(sweep_midnight, false);
  const auto best_twoam = core::BestGranularity(sweep_twoam, false);
  io::PrintSection(std::cout, "Best aggregation (Definition 3)");
  if (best_midnight.ok()) {
    std::cout << "  from midnight: " << *best_midnight / 60 << " h\n";
  }
  if (best_twoam.ok()) {
    std::cout << "  from 2am:      " << *best_twoam / 60
              << " h   (paper: 8 h from 2am is the absolute winner — "
                 "morning 2-10, work 10-18, evening 18-2)\n";
  }
}

}  // namespace

int main() {
  Run();
  return 0;
}
