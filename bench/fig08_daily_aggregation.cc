// Figure 8 (+ Section 7.1.2): average same-weekday correlation per daily
// aggregation granularity, for all gateways and for strongly stationary
// ones; the paper's winner is 3 hours (180 minutes).
#include <iostream>

#include "bench_util.h"
#include "core/aggregation.h"
#include "core/background.h"
#include "io/table.h"

namespace {

using namespace homets;  // NOLINT: bench binary

void Run() {
  bench::FleetCache fleet(bench::PaperConfig());
  const int days = 28;
  const auto eligible = bench::DailyEligible(fleet.generator(), days);

  std::vector<ts::TimeSeries> active;
  for (int id : eligible) {
    auto series = core::ActiveAggregate(fleet.Get(id));
    auto sliced = series.Slice(0, days * ts::kMinutesPerDay);
    active.push_back(sliced.ok() ? std::move(sliced).value()
                                 : std::move(series));
    fleet.Evict(id);
  }
  std::cout << "gateways analyzed: " << active.size() << " (paper: 100)\n";

  const std::vector<int64_t> granularities{5, 30, 60, 90, 120, 180};
  core::AggregationSweepOptions options;
  options.period = core::PatternPeriod::kDaily;
  options.anchor_offset_minutes = 0;
  const auto sweep =
      core::SweepAggregations(active, granularities, options).value();

  io::PrintSection(std::cout, "Figure 8: daily aggregation curves");
  io::TextTable table({"granularity_min", "avg_cor_all",
                       "avg_cor_stationary", "n_stationary", "sketch_all"});
  for (const auto& p : sweep) {
    table.AddRow(
        {bench::FmtInt(static_cast<size_t>(p.granularity_minutes)),
         bench::Fmt(p.mean_correlation_all),
         p.gateways_stationary > 0 ? bench::Fmt(p.mean_correlation_stationary)
                                   : "n/a",
         bench::FmtInt(p.gateways_stationary),
         io::AsciiBar(p.mean_correlation_all, 1.0, 25)});
  }
  table.Print(std::cout);

  const auto best = core::BestGranularity(sweep, false);
  if (best.ok()) {
    std::cout << "  best granularity (all gateways): " << *best
              << " min  (paper: grows to ~1 h then stabilizes; 180 min is "
                 "the working choice, also maximal for stationary "
                 "gateways)\n";
  }
  const auto best_stationary = core::BestGranularity(sweep, true);
  if (best_stationary.ok()) {
    std::cout << "  best granularity (stationary):   " << *best_stationary
              << " min (paper: 180)\n";
  }
}

}  // namespace

int main() {
  Run();
  return 0;
}
