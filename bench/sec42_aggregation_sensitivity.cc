// Section 4.2(d): sensitivity of distribution similarity and cross-gateway
// correlation to the time-aggregation granularity — small bins make the
// within-week distributions differ (KS rejected) and the cross-gateway
// correlations low; coarse bins make both grow.
#include <iostream>

#include "bench_util.h"
#include "core/similarity.h"
#include "io/table.h"
#include "stattests/ks_test.h"
#include "ts/time_series.h"

namespace {

using namespace homets;  // NOLINT: bench binary

void Run() {
  bench::FleetCache fleet(bench::SmallConfig(16, 1));

  std::vector<ts::TimeSeries> raw;
  for (int id = 0; id < fleet.config().n_gateways; ++id) {
    raw.push_back(fleet.Get(id).AggregateTraffic());
    fleet.Evict(id);
  }

  io::PrintSection(std::cout,
                   "Sec 4.2d: effect of aggregation granularity");
  io::TextTable table({"granularity_min", "ks_rejected_day_pairs_%",
                       "mean_cross_gateway_cor", "significant_pairs_%"});
  for (const int64_t g : {1LL, 10LL, 60LL, 180LL, 360LL, 720LL}) {
    // Distribution similarity across days within each gateway.
    size_t ks_pairs = 0, ks_rejected = 0;
    for (const auto& series : raw) {
      auto agg = ts::Aggregate(series, g, 0, ts::AggKind::kSum);
      if (!agg.ok()) continue;
      const auto days = ts::SliceWindows(*agg, ts::kMinutesPerDay, 0);
      for (size_t i = 0; i < days.size(); ++i) {
        for (size_t j = i + 1; j < days.size(); ++j) {
          const auto ks = stattests::KolmogorovSmirnov(days[i].values(),
                                                       days[j].values());
          if (!ks.ok()) continue;
          ++ks_pairs;
          if (ks->Rejected()) ++ks_rejected;
        }
      }
    }
    // Cross-gateway correlation at this granularity.
    double cor_sum = 0.0;
    size_t cor_pairs = 0, cor_significant = 0;
    for (size_t a = 0; a < raw.size(); ++a) {
      auto agg_a = ts::Aggregate(raw[a], g, 0, ts::AggKind::kSum);
      if (!agg_a.ok()) continue;
      for (size_t b = a + 1; b < raw.size(); ++b) {
        auto agg_b = ts::Aggregate(raw[b], g, 0, ts::AggKind::kSum);
        if (!agg_b.ok()) continue;
        const auto sim = core::CorrelationSimilarity(*agg_a, *agg_b);
        ++cor_pairs;
        cor_sum += sim.value;
        if (sim.significant) ++cor_significant;
      }
    }
    table.AddRow(
        {bench::FmtInt(static_cast<size_t>(g)),
         ks_pairs > 0
             ? bench::Fmt(100.0 * ks_rejected / static_cast<double>(ks_pairs), 1)
             : "n/a",
         cor_pairs > 0 ? bench::Fmt(cor_sum / static_cast<double>(cor_pairs))
                       : "n/a",
         cor_pairs > 0
             ? bench::Fmt(
                   100.0 * cor_significant / static_cast<double>(cor_pairs), 1)
             : "n/a"});
  }
  table.Print(std::cout);
  std::cout << "  (paper: smaller aggregation → more rejected KS tests and "
               "lower correlations; larger aggregation → distributions "
               "similar and correlations grow or vanish)\n";
}

}  // namespace

int main() {
  Run();
  return 0;
}
