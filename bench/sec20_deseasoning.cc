// Section 2's de-seasoning argument (via Jo et al.): daily/weekly
// periodicity does not explain the inhomogeneity of home traffic — after
// removing the seasonal mean the series stays bursty, and seasonal-naive
// forecasting barely beats trivial baselines at minute granularity.
#include <iostream>

#include "bench_util.h"
#include "io/table.h"
#include "model/baselines.h"
#include "ts/seasonal.h"

namespace {

using namespace homets;  // NOLINT: bench binary

void Run() {
  bench::FleetCache fleet(bench::SmallConfig(12, 4));

  io::PrintSection(std::cout,
                   "Sec 2: burstiness before/after de-seasoning (daily "
                   "profile removed)");
  io::TextTable table({"gateway", "seasonal_strength", "burstiness_raw",
                       "burstiness_deseasoned"});
  double strengths = 0.0;
  size_t counted = 0;
  for (int id = 0; id < fleet.config().n_gateways; ++id) {
    const auto traffic = fleet.Get(id).AggregateTraffic();
    fleet.Evict(id);
    const auto profile =
        ts::EstimateSeasonalProfile(traffic, ts::kMinutesPerDay);
    if (!profile.ok()) continue;
    const auto strength = ts::SeasonalStrength(traffic, *profile);
    const auto residual = ts::Deseasonalize(traffic, *profile);
    if (!strength.ok() || !residual.ok()) continue;
    // Events: minutes far above typical traffic.
    const auto raw_burst = ts::Burstiness(traffic, 1e6);
    const auto res_burst = ts::Burstiness(*residual, 1e6);
    if (!raw_burst.ok() || !res_burst.ok()) continue;
    table.AddRow({bench::FmtInt(static_cast<size_t>(id)),
                  bench::Fmt(*strength, 2), bench::Fmt(*raw_burst, 2),
                  bench::Fmt(*res_burst, 2)});
    strengths += *strength;
    ++counted;
  }
  table.Print(std::cout);
  if (counted > 0) {
    std::cout << "  mean seasonal strength: "
              << bench::Fmt(strengths / static_cast<double>(counted), 2)
              << "  (low: the daily mean explains little of the variance)\n";
  }
  std::cout << "  (positive burstiness persists after de-seasoning — the "
               "inhomogeneity comes from human task execution, not from "
               "daily rhythm; hence the paper removes background instead of "
               "de-seasoning)\n";

  io::PrintSection(std::cout,
                   "Forecast baselines at 1-minute granularity (period = 1 "
                   "day)");
  io::TextTable forecast({"gateway", "rmse_seasonal_naive", "rmse_last_value",
                          "rmse_mean"});
  for (int id = 0; id < 6; ++id) {
    const auto traffic = fleet.Get(id).AggregateTraffic();
    fleet.Evict(id);
    const auto cmp = model::CompareBaselines(
        traffic, static_cast<size_t>(ts::kMinutesPerDay));
    if (!cmp.ok()) continue;
    forecast.AddRow({bench::FmtInt(static_cast<size_t>(id)),
                     StrFormat("%.3e", cmp->rmse_seasonal_naive),
                     StrFormat("%.3e", cmp->rmse_last_value),
                     StrFormat("%.3e", cmp->rmse_mean)});
  }
  forecast.Print(std::cout);
  std::cout << "  (seasonal-naive does not clearly beat the trivial "
               "baselines — no strong daily determinism at the minute "
               "scale)\n";
}

}  // namespace

int main() {
  Run();
  return 0;
}
