// Figure 7 (+ Section 7.1.2): number of strongly stationary gateways per
// daily aggregation granularity, stacked by how many weekdays are
// stationary (1..5+ in the paper's plot).
#include <iostream>
#include <map>

#include "bench_util.h"
#include "core/aggregation.h"
#include "core/background.h"
#include "io/table.h"

namespace {

using namespace homets;  // NOLINT: bench binary

void Run() {
  bench::FleetCache fleet(bench::PaperConfig());
  const int days = 28;
  const auto eligible = bench::DailyEligible(fleet.generator(), days);

  std::vector<ts::TimeSeries> active;
  for (int id : eligible) {
    auto series = core::ActiveAggregate(fleet.Get(id));
    auto sliced = series.Slice(0, days * ts::kMinutesPerDay);
    active.push_back(sliced.ok() ? std::move(sliced).value()
                                 : std::move(series));
    fleet.Evict(id);
  }
  std::cout << "gateways analyzed: " << active.size() << " (paper: 100)\n";

  const std::vector<int64_t> granularities{10, 30, 60, 90, 120, 180};
  io::PrintSection(
      std::cout,
      "Figure 7: stationary gateways per aggregation granularity");
  io::TextTable table({"granularity_min", "stationary_gateways", "1_day",
                       "2_days", "3_days", "4_days", "5+_days", "sketch"});
  for (const int64_t g : granularities) {
    std::map<size_t, size_t> by_days;  // #stationary weekdays → gateways
    size_t stationary_gateways = 0;
    for (const auto& series : active) {
      const auto count = core::StationaryWeekdayCount(series, g);
      if (!count.ok() || *count == 0) continue;
      ++stationary_gateways;
      ++by_days[std::min<size_t>(*count, 5)];
    }
    table.AddRow({bench::FmtInt(static_cast<size_t>(g)),
                  bench::FmtInt(stationary_gateways),
                  bench::FmtInt(by_days[1]), bench::FmtInt(by_days[2]),
                  bench::FmtInt(by_days[3]), bench::FmtInt(by_days[4]),
                  bench::FmtInt(by_days[5]),
                  io::AsciiBar(static_cast<double>(stationary_gateways),
                               static_cast<double>(active.size()), 25)});
  }
  table.Print(std::cout);
  std::cout << "  (paper: the count grows with granularity and more weekdays "
               "become stationary within the same gateways; no gateway is "
               "stationary at 1-5 minute bins)\n";
}

}  // namespace

int main() {
  Run();
  return 0;
}
