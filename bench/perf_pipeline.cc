// Full-pipeline performance harness: exercises every engine stage end to
// end — CSV ingest, csv→homets compaction, columnar ingest, series
// preparation, pairwise correlation, the strong-stationarity funnel,
// best-aggregation search, φ-dominance, background thresholding, motif
// mining and the streaming path — on deterministic simgen workloads at
// several fleet sizes, and writes the schema-versioned BENCH_pipeline.json
// trajectory artifact.
//
// Each entry couples a stage's wall time with the delta of the process
// metrics registry across the stage (pairs computed, KS rejections, values
// zeroed, …) so the artifact carries *per-unit* costs (ns/pair,
// windows/sec), not just seconds. tools/bench_compare diffs two such
// artifacts and gates regressions.
//
// Flags:
//   --pipeline_json=PATH   output path (default BENCH_pipeline.json)
//   --sizes=a,b,c          subset of small,medium,large (default all)
//   --progress             narrate live stage progress + heartbeats on
//                          stderr (default off; the timed stages only touch
//                          the tracker when one is installed, so the flag
//                          costs nothing when absent)
//   --prof                 enable the execution profiler: stage metric
//                          deltas gain homets.prof.* lock-wait and pool
//                          busy/idle/queue-wait counters (default off; the
//                          per-stage rusage accounting below is always on)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "core/aggregation.h"
#include "core/background.h"
#include "core/dominance.h"
#include "core/motif.h"
#include "core/similarity_engine.h"
#include "core/stationarity.h"
#include "core/streaming.h"
#include "fleet/orchestrator.h"
#include "io/dataset.h"
#include "obs/metrics.h"
#include "obs/prof.h"
#include "obs/progress.h"
#include "simgen/fleet.h"
#include "storage/homets_format.h"
#include "ts/time_series.h"

namespace {

using namespace homets;  // NOLINT: bench binary

/// The artifact's wire format version. Bump when entry fields change
/// incompatibly; tools/bench_compare refuses to diff across versions.
/// v2: added convert/col_ingest stages and the threads_used field.
/// v3: added per-entry cpu_seconds, peak_rss_bytes and (when the stage ran
/// long enough for rusage ticks to resolve) parallel_efficiency.
constexpr int kSchemaVersion = 3;

struct SizeSpec {
  const char* name;
  int gateways;
  int weeks;
};

constexpr SizeSpec kSizes[] = {
    {"small", 8, 2},
    {"medium", 24, 4},
    {"large", 48, 6},
};

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Process CPU time (user+sys) consumed so far. getrusage advances in
/// scheduler ticks (1–4 ms), so deltas over sub-tick regions can read zero —
/// Emit only derives parallel_efficiency when the stage's wall time clears
/// the same floor the run-manifest writer uses.
double CpuSecondsNow() {
  const obs::ResourceUsage usage = obs::CaptureRusage();
  return usage.user_seconds + usage.sys_seconds;
}

constexpr double kEfficiencyWallFloorSeconds = 0.01;

/// What a StageAccumulated callback hands back: its own fine-grained wall +
/// CPU timing (both summed over the timed regions only) and the unit count.
struct AccumulatedTiming {
  double seconds = 0.0;
  double cpu_seconds = 0.0;
  size_t units = 0;
};

/// Counter/histogram-count deltas across a stage, as an inline JSON object.
/// Gauges are instantaneous (queue depth) and meaningless as deltas, so only
/// monotonic values are recorded.
std::string MetricsDeltaJson(const obs::MetricsSnapshot& before,
                             const obs::MetricsSnapshot& after) {
  bench::JsonWriter delta;
  for (const auto& [name, value] : after.counters) {
    const auto it = before.counters.find(name);
    const uint64_t prior = it == before.counters.end() ? 0 : it->second;
    if (value > prior) delta.Set(name, static_cast<size_t>(value - prior));
  }
  for (const auto& [name, h] : after.histograms) {
    const auto it = before.histograms.find(name);
    const uint64_t prior =
        it == before.histograms.end() ? 0 : it->second.count;
    if (h.count > prior) {
      delta.Set(name + ".count", static_cast<size_t>(h.count - prior));
    }
  }
  return delta.Inline();
}

/// Collects one timed stage entry: `fn` returns the unit count (windows,
/// pairs, rows, …) it processed.
class PipelineBench {
 public:
  PipelineBench(const std::string& size, int threads_used)
      : size_(size), threads_used_(threads_used) {}

  /// Times `fn` as one contiguous region.
  template <typename Fn>
  void Stage(const std::string& stage, const std::string& unit, Fn&& fn) {
    const obs::MetricsSnapshot before = SnapshotWithProf();
    // Registering up front makes the stage visible as "active" in any
    // heartbeat that fires while fn() runs; without --progress the accessor
    // returns nullptr and the stage path costs one relaxed load.
    obs::ProgressTracker::Stage* progress =
        obs::ProgressStage(size_ + "/" + stage);
    const double cpu_start = CpuSecondsNow();
    const auto start = Clock::now();
    const size_t units = fn();
    const double seconds = SecondsSince(start);
    const double cpu_seconds = CpuSecondsNow() - cpu_start;
    if (progress != nullptr) {
      progress->AddTotal(units);
      progress->Finish();  // homets-lint: allow(discarded-status)
    }
    Emit(stage, unit, seconds, cpu_seconds, units, before);
  }

  /// For stages interleaved with untimed setup (trace regeneration): `fn`
  /// does its own fine-grained wall + CPU timing and returns an
  /// AccumulatedTiming. The metrics delta still brackets the whole pass —
  /// setup (simgen, CSV writes) moves no counters, so the delta is the
  /// stage's alone.
  template <typename Fn>
  void StageAccumulated(const std::string& stage, const std::string& unit,
                        Fn&& fn) {
    const obs::MetricsSnapshot before = SnapshotWithProf();
    obs::ProgressTracker::Stage* progress =
        obs::ProgressStage(size_ + "/" + stage);
    const AccumulatedTiming result = fn();
    if (progress != nullptr) {
      progress->AddTotal(result.units);
      progress->Finish();  // homets-lint: allow(discarded-status)
    }
    Emit(stage, unit, result.seconds, result.cpu_seconds, result.units,
         before);
  }

  const std::vector<std::string>& entries() const { return entries_; }

 private:
  /// Registry snapshot with the profiler's lock/alloc accumulators flushed
  /// first, so per-stage counter deltas attribute homets.prof.* movement to
  /// the stage that caused it (a no-op while the profiler is off).
  static obs::MetricsSnapshot SnapshotWithProf() {
    if (obs::ProfilerEnabled()) obs::PublishProfMetrics();
    return obs::MetricsRegistry::Global().Snapshot();
  }

  void Emit(const std::string& stage, const std::string& unit,
            double seconds, double cpu_seconds, size_t units,
            const obs::MetricsSnapshot& before) {
    const obs::MetricsSnapshot after = SnapshotWithProf();
    bench::JsonWriter entry;
    entry.Set("stage", stage).Set("size", size_).Set("seconds", seconds);
    entry.Set("unit", unit).Set("units", units);
    if (units > 0 && seconds > 0.0) {
      entry.Set("ns_per_unit", seconds * 1e9 / static_cast<double>(units));
      entry.Set("units_per_sec", static_cast<double>(units) / seconds);
    }
    entry.Set("cpu_seconds", cpu_seconds < 0.0 ? 0.0 : cpu_seconds);
    entry.Set("peak_rss_bytes",
              static_cast<size_t>(obs::CaptureRusage().max_rss_bytes));
    // Only meaningful once the wall time clears the rusage tick floor;
    // bench_compare treats the field as optional (informational when absent).
    if (threads_used_ > 0 && seconds >= kEfficiencyWallFloorSeconds &&
        cpu_seconds > 0.0) {
      entry.Set("parallel_efficiency",
                cpu_seconds / (seconds * threads_used_));
    }
    entry.SetRaw("metrics", MetricsDeltaJson(before, after));
    entries_.push_back(entry.Inline());
    std::cout << "  " << size_ << "/" << stage << ": "
              << bench::Fmt(seconds) << " s, " << units << " " << unit
              << "\n";
  }

  std::string size_;
  int threads_used_;
  std::vector<std::string> entries_;
};

/// Weekly windows at 3-hour bins for one active aggregate — the Figure 3 /
/// stationarity workload shape (56 bins per window).
std::vector<ts::TimeSeries> WeeklyWindows(const ts::TimeSeries& active) {
  const auto aggregated = ts::Aggregate(active, 180, 0, ts::AggKind::kSum);
  if (!aggregated.ok()) return {};
  return ts::SliceWindows(*aggregated, ts::kMinutesPerWeek, 0);
}

/// Daily windows at 3-hour bins — the Section 7.2.2 motif workload shape.
std::vector<ts::TimeSeries> DailyWindows(const ts::TimeSeries& active) {
  const auto aggregated = ts::Aggregate(active, 180, 0, ts::AggKind::kSum);
  if (!aggregated.ok()) return {};
  return ts::SliceWindows(*aggregated, ts::kMinutesPerDay, 0);
}

void RunSize(const SizeSpec& spec, int threads_used,
             std::vector<std::string>* entries) {
  simgen::SimConfig config = bench::PaperConfig();
  config.n_gateways = spec.gateways;
  config.weeks = spec.weeks;
  bench::ApplySmokeClamps(&config);
  simgen::FleetGenerator generator(config);
  PipelineBench bench(spec.name, threads_used);
  std::cout << spec.name << ": " << config.n_gateways << " gateways x "
            << config.weeks << " weeks\n";

  // Setup pass (untimed): write the fleet's CSVs for the ingest stage. Raw
  // traces are regenerated per stage rather than held — a full fleet of
  // them would be GBs (see FleetGenerator's contract).
  char tmpl[] = "/tmp/homets_pipeline_XXXXXX";
  const char* tmpdir = mkdtemp(tmpl);
  std::vector<std::string> csv_paths;
  for (int id = 0; id < config.n_gateways; ++id) {
    if (tmpdir == nullptr) break;
    const std::string path = StrFormat("%s/gateway_%03d.csv", tmpdir, id);
    if (io::WriteGatewayCsv(path, generator.Generate(id)).ok()) {
      csv_paths.push_back(path);
    }
  }

  // Both ingest stages count the same unit — observed incoming
  // device-minutes on the decoded grid — so their units_per_sec are
  // directly comparable (the columnar hot path's speedup over CSV).
  const auto ingest_rows = [](io::DatasetReader* reader) {
    size_t rows = 0;
    for (size_t g = 0; g < reader->gateway_count(); ++g) {
      const auto gw = reader->ReadGateway(g);
      if (!gw.ok()) continue;
      for (const auto& device : gw->devices) {
        rows += device.incoming.CountObserved();
      }
    }
    return rows;
  };

  bench.Stage("csv_ingest", "rows", [&] {
    size_t rows = 0;
    for (const auto& path : csv_paths) {
      auto reader = io::DatasetReader::Open(path);
      if (!reader.ok()) continue;
      rows += ingest_rows(&*reader);
    }
    return rows;
  });

  // csv→homets compaction: the one-time cost of moving a fleet off the CSV
  // edge onto the columnar hot path.
  std::vector<std::string> homets_paths;
  bench.Stage("convert", "rows", [&] {
    size_t rows = 0;
    for (const auto& path : csv_paths) {
      const std::string out = path.substr(0, path.size() - 4) + ".homets";
      const auto stats = io::CompactCsvToHomets(path, out);
      if (!stats.ok()) continue;
      rows += stats->rows;
      homets_paths.push_back(out);
    }
    return rows;
  });

  bench.Stage("col_ingest", "rows", [&] {
    size_t rows = 0;
    for (const auto& path : homets_paths) {
      auto reader = io::DatasetReader::Open(path);
      if (!reader.ok()) continue;
      rows += ingest_rows(&*reader);
    }
    return rows;
  });

  for (const auto& path : csv_paths) std::remove(path.c_str());
  for (const auto& path : homets_paths) std::remove(path.c_str());
  if (tmpdir != nullptr) rmdir(tmpdir);

  // Background thresholding (Section 6.1): τ estimation + zeroing per
  // device, summed into the gateway's active aggregate — the series every
  // later stage consumes.
  std::vector<ts::TimeSeries> actives;
  bench.StageAccumulated("background", "trace_minutes", [&] {
    AccumulatedTiming timing;
    for (int id = 0; id < config.n_gateways; ++id) {
      const simgen::GatewayTrace gw = generator.Generate(id);
      const double cpu_start = CpuSecondsNow();
      const auto start = Clock::now();
      ts::TimeSeries active = core::ActiveAggregate(gw);
      timing.seconds += SecondsSince(start);
      timing.cpu_seconds += CpuSecondsNow() - cpu_start;
      timing.units += active.size();
      actives.push_back(std::move(active));
    }
    return timing;
  });

  // φ-dominance (Definition 4) over the raw per-minute traces.
  bench.StageAccumulated("dominance", "devices", [&] {
    AccumulatedTiming timing;
    for (int id = 0; id < config.n_gateways; ++id) {
      const simgen::GatewayTrace gw = generator.Generate(id);
      const double cpu_start = CpuSecondsNow();
      const auto start = Clock::now();
      const auto dominant = core::FindDominantDevices(gw);
      timing.seconds += SecondsSince(start);
      timing.cpu_seconds += CpuSecondsNow() - cpu_start;
      timing.units += gw.devices.size();
      (void)dominant;
    }
    return timing;
  });

  std::vector<ts::TimeSeries> weekly;
  std::map<int, std::pair<size_t, size_t>> weekly_by_gateway;  // id -> range
  for (size_t g = 0; g < actives.size(); ++g) {
    auto windows = WeeklyWindows(actives[g]);
    weekly_by_gateway[static_cast<int>(g)] = {weekly.size(),
                                              weekly.size() + windows.size()};
    for (auto& w : windows) weekly.push_back(std::move(w));
  }

  core::SimilarityEngine engine;
  std::vector<correlation::PreparedSeries> prepared;
  bench.Stage("prepare", "windows", [&] {
    prepared = core::SimilarityEngine::PrepareWindows(weekly);
    return prepared.size();
  });

  bench.Stage("pairwise", "pairs", [&] {
    const core::SimilarityMatrix matrix = engine.Pairwise(prepared);
    return matrix.pair_count();
  });

  bench.Stage("stationarity", "window_pairs", [&] {
    size_t pairs = 0;
    for (const auto& [id, range] : weekly_by_gateway) {
      const std::vector<ts::TimeSeries> windows(
          weekly.begin() + static_cast<long>(range.first),
          weekly.begin() + static_cast<long>(range.second));
      if (windows.size() < 2) continue;
      const auto result = core::CheckStrongStationarity(windows);
      if (result.ok()) pairs += result->window_pairs;
    }
    return pairs;
  });

  bench.Stage("aggregation_search", "sweep_points", [&] {
    const std::vector<int64_t> granularities = {60, 180, 480, 720};
    core::AggregationSweepOptions options;
    options.period = core::PatternPeriod::kWeekly;
    const auto sweep =
        core::SweepAggregations(actives, granularities, options);
    if (!sweep.ok()) return size_t{0};
    const auto best = core::BestGranularity(*sweep, /*use_stationary=*/false);
    (void)best;
    size_t points = 0;
    for (const auto& point : *sweep) points += point.gateways_all;
    return points;
  });

  std::vector<ts::TimeSeries> daily;
  for (const auto& active : actives) {
    for (auto& w : DailyWindows(active)) daily.push_back(std::move(w));
  }
  bench.Stage("motif_mining", "windows", [&] {
    const auto motifs = core::MotifDiscovery().Discover(daily);
    (void)motifs;
    return daily.size();
  });

  // Sharded fleet execution (DESIGN.md §15): the whole per-gateway pipeline
  // again, but through the shard orchestrator over one out-of-core .homets
  // fleet — units are shards, so units_per_sec is the shards/sec figure the
  // scaling story quotes (bench_fleet sweeps the shard count).
  {
    char fleet_tmpl[] = "/tmp/homets_pipeline_fleet_XXXXXX";
    const char* fleet_tmpdir = mkdtemp(fleet_tmpl);
    if (fleet_tmpdir != nullptr) {
      const std::string fleet_path =
          std::string(fleet_tmpdir) + "/fleet.homets";
      if (storage::WriteFleetHomets(generator, fleet_path).ok()) {
        bench.Stage("fleet_analyze", "shards", [&] {
          fleet::FleetOptions options;
          options.n_shards = std::min(8, config.n_gateways);
          fleet::FleetOrchestrator orchestrator({fleet_path}, options);
          const auto report = orchestrator.Analyze();
          return report.ok() ? static_cast<size_t>(report->n_shards)
                             : size_t{0};
        });
      }
      std::remove(fleet_path.c_str());
      rmdir(fleet_tmpdir);
    }
  }

  bench.Stage("streaming", "observations", [&] {
    auto assembler =
        core::WindowAssembler::Make(ts::kMinutesPerDay, 180, 0).value();
    core::StreamingMotifMiner miner(core::MotifOptions{}, 10000);
    size_t observations = 0;
    for (size_t g = 0; g < actives.size(); ++g) {
      const auto& active = actives[g];
      const int id = static_cast<int>(g);
      for (int64_t m = active.start_minute(); m < active.EndMinute(); ++m) {
        const auto completed = assembler.Ingest(
            id, m, active[static_cast<size_t>(m - active.start_minute())]);
        ++observations;
        if (!completed.ok()) continue;
        for (const auto& w : *completed) (void)miner.AddWindow(id, w);
      }
    }
    for (auto& [id, w] : assembler.Flush()) (void)miner.AddWindow(id, w);
    return observations;
  });

  for (const auto& entry : bench.entries()) entries->push_back(entry);
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_pipeline.json";
  std::string sizes_csv = "small,medium,large";
  bool progress = false;
  bool prof = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--pipeline_json=", 0) == 0) {
      json_path = arg.substr(std::string("--pipeline_json=").size());
    } else if (arg.rfind("--sizes=", 0) == 0) {
      sizes_csv = arg.substr(std::string("--sizes=").size());
    } else if (arg == "--progress") {
      progress = true;
    } else if (arg == "--prof") {
      prof = true;
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      return 2;
    }
  }

  if (prof) obs::EnableProfiler(true);

  obs::ProgressTracker tracker;
  if (progress) {
    obs::InstallGlobalProgressTracker(&tracker);
    tracker.StartHeartbeat(2.0);
  }

  // hardware_threads is what the machine offers; threads_used is what the
  // similarity engine actually runs with (its default of 0 resolves to
  // hardware concurrency) — perf_microbench records both the same way.
  const core::SimilarityEngineOptions engine_options;
  const int threads_used = engine_options.threads > 0
                               ? engine_options.threads
                               : bench::HardwareThreads();

  const std::vector<std::string> wanted = StrSplit(sizes_csv, ',');
  std::vector<std::string> entries;
  std::vector<std::string> size_names;
  const auto start = Clock::now();
  for (const SizeSpec& spec : kSizes) {
    bool selected = false;
    for (const auto& w : wanted) selected = selected || w == spec.name;
    if (!selected) continue;
    size_names.push_back(StrFormat("\"%s\"", spec.name));
    RunSize(spec, threads_used, &entries);
  }
  if (progress) {
    tracker.StopHeartbeat();
    obs::InstallGlobalProgressTracker(nullptr);
  }
  if (entries.empty()) {
    std::cerr << "no sizes selected from --sizes=" << sizes_csv << "\n";
    return 2;
  }

  bench::JsonWriter json;
  json.Set("schema", "homets.bench_pipeline")
      .Set("schema_version", kSchemaVersion)
      .Set("scenario", "full_pipeline")
      .Set("hardware_threads", bench::HardwareThreads())
      .Set("threads_used", threads_used)
      .SetRaw("sizes", bench::JsonWriter::Array(size_names))
      .Set("total_seconds", SecondsSince(start))
      .SetRaw("entries", bench::JsonWriter::Array(entries));

  std::ofstream out(json_path);
  out << json.Dump();
  if (!out) {
    std::cerr << "write failed: " << json_path << "\n";
    return 1;
  }
  std::cout << entries.size() << " pipeline entries -> " << json_path
            << "\n";
  return 0;
}
