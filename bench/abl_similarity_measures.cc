// Ablation (Section 5's design argument): how well different similarity
// measures recover planted behavior families from time-aligned windows.
// Compares Definition 1's correlation similarity against Pearson-only,
// Spearman-only, Euclidean and DTW pairings — including the scale-invariance
// and time-alignment properties the paper demands.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "bench_util.h"
#include "core/similarity.h"
#include "correlation/coefficients.h"
#include "distance/distance.h"
#include "io/table.h"

namespace {

using namespace homets;  // NOLINT: bench binary

struct Planted {
  std::vector<ts::TimeSeries> windows;
  std::vector<int> family;
};

// Families differ in *when* they are active; members differ in scale (×50)
// and noise — exactly the home-traffic setting: same habit, different
// volume.
Planted MakePlanted(Rng* rng) {
  Planted out;
  const size_t bins = 24;
  for (int family = 0; family < 4; ++family) {
    for (int member = 0; member < 8; ++member) {
      std::vector<double> v(bins, 0.0);
      const size_t active_start = static_cast<size_t>(4 + family * 5);
      const double scale = (member % 2 == 0) ? 1.0 : 50.0;
      for (size_t b = active_start; b < active_start + 4; ++b) {
        v[b] = scale * 1e5 * rng->LogNormal(0.0, 0.25);
      }
      out.windows.emplace_back(
          static_cast<int64_t>(out.windows.size()) * ts::kMinutesPerDay, 60,
          std::move(v));
      out.family.push_back(family);
    }
  }
  return out;
}

// Pair-level evaluation: a measure declares pairs "similar"; precision and
// recall against same-family ground truth.
struct PairScore {
  double precision = 0.0;
  double recall = 0.0;
};

template <typename SimilarFn>
PairScore ScorePairs(const Planted& planted, SimilarFn&& similar) {
  size_t true_positive = 0, declared = 0, actual = 0;
  for (size_t i = 0; i < planted.windows.size(); ++i) {
    for (size_t j = i + 1; j < planted.windows.size(); ++j) {
      const bool same = planted.family[i] == planted.family[j];
      if (same) ++actual;
      if (similar(planted.windows[i], planted.windows[j])) {
        ++declared;
        if (same) ++true_positive;
      }
    }
  }
  PairScore score;
  score.precision = declared > 0 ? static_cast<double>(true_positive) /
                                       static_cast<double>(declared)
                                 : 0.0;
  score.recall = actual > 0 ? static_cast<double>(true_positive) /
                                  static_cast<double>(actual)
                            : 0.0;
  return score;
}

void Run() {
  Rng rng(20140317);
  const Planted planted = MakePlanted(&rng);

  // Calibrate each distance threshold as the 25th percentile of all pairwise
  // distances (same budget for every measure).
  auto calibrate = [&](auto&& dist_fn) {
    std::vector<double> all;
    for (size_t i = 0; i < planted.windows.size(); ++i) {
      for (size_t j = i + 1; j < planted.windows.size(); ++j) {
        all.push_back(dist_fn(planted.windows[i], planted.windows[j]));
      }
    }
    std::sort(all.begin(), all.end());
    return all[all.size() / 4];
  };
  const double euclid_cut = calibrate([](const ts::TimeSeries& a,
                                         const ts::TimeSeries& b) {
    return distance::Euclidean(a.values(), b.values()).ValueOr(1e18);
  });
  const double dtw_cut = calibrate([](const ts::TimeSeries& a,
                                      const ts::TimeSeries& b) {
    return distance::DynamicTimeWarping(a.values(), b.values()).ValueOr(1e18);
  });

  io::PrintSection(std::cout,
                   "Ablation: similarity measures on planted families "
                   "(scale-varied members)");
  io::TextTable table({"measure", "precision", "recall"});
  auto add = [&](const std::string& name, const PairScore& s) {
    table.AddRow({name, bench::Fmt(s.precision, 2), bench::Fmt(s.recall, 2)});
  };
  add("cor(.,.) Definition 1 (>= 0.6)",
      ScorePairs(planted, [](const ts::TimeSeries& a, const ts::TimeSeries& b) {
        return core::CorrelationSimilarity(a.values(), b.values()).value >=
               0.6;
      }));
  add("Pearson only (>= 0.6, significant)",
      ScorePairs(planted, [](const ts::TimeSeries& a, const ts::TimeSeries& b) {
        const auto r = correlation::Pearson(a.values(), b.values());
        return r.ok() && r->Significant() && r->coefficient >= 0.6;
      }));
  add("Spearman only (>= 0.6, significant)",
      ScorePairs(planted, [](const ts::TimeSeries& a, const ts::TimeSeries& b) {
        const auto r = correlation::Spearman(a.values(), b.values());
        return r.ok() && r->Significant() && r->coefficient >= 0.6;
      }));
  add("Euclidean (25th pct threshold)",
      ScorePairs(planted, [&](const ts::TimeSeries& a, const ts::TimeSeries& b) {
        return distance::Euclidean(a.values(), b.values()).ValueOr(1e18) <=
               euclid_cut;
      }));
  add("DTW (25th pct threshold)",
      ScorePairs(planted, [&](const ts::TimeSeries& a, const ts::TimeSeries& b) {
        return distance::DynamicTimeWarping(a.values(), b.values())
                   .ValueOr(1e18) <= dtw_cut;
      }));
  table.Print(std::cout);
  std::cout << "  (correlation similarity is scale-invariant, so families "
               "survive the 50x member scale split; Euclidean pairs by "
               "volume instead)\n";

  // Time-alignment requirement: shifted activity must NOT look similar.
  io::PrintSection(std::cout, "Time-alignment check (paper Sec 5)");
  std::vector<double> early(24, 0.0), late(24, 0.0);
  for (size_t b = 4; b < 8; ++b) early[b] = 1e5;
  for (size_t b = 14; b < 18; ++b) late[b] = 1e5;
  io::TextTable shift({"measure", "early-vs-late verdict"});
  shift.AddRow({"cor(.,.)",
                core::CorrelationSimilarity(early, late).value >= 0.6
                    ? "similar (BAD)"
                    : "dissimilar (GOOD)"});
  const double dtw = distance::DynamicTimeWarping(early, late).ValueOr(1e18);
  shift.AddRow({"DTW", dtw <= dtw_cut ? "similar (BAD: warps over the shift)"
                                      : "dissimilar"});
  shift.Print(std::cout);
}

}  // namespace

int main() {
  Run();
  return 0;
}
