// Section 6.2 "Using Other Distance Metrics": agreement between
// correlation-based dominance and the Euclidean / traffic-volume baselines
// (paper: 88% and 73% of 206 dominant devices ranked the same), the
// correlation-only detections, and the φ = 0.8 robustness probe (67% of
// gateways keep >= 1 dominant device).
#include <iostream>

#include "bench_util.h"
#include "core/dominance.h"
#include "io/table.h"

namespace {

using namespace homets;  // NOLINT: bench binary

void Run() {
  bench::FleetCache fleet(bench::PaperConfig());
  const auto eligible = bench::WeeklyEligible(fleet.generator(), 4);

  size_t total_dominants = 0, euclid_agree = 0, volume_agree = 0;
  size_t phi08_gateways = 0, phi08_fixed = 0, phi08_total = 0;
  size_t low_volume_dominants = 0;
  for (int id : eligible) {
    const auto& gw = fleet.Get(id);
    const auto dominants = core::FindDominantDevices(gw);
    total_dominants += dominants.size();
    const auto by_euclid = core::RankDevicesByEuclidean(gw);
    const auto by_volume = core::RankDevicesByVolume(gw);
    euclid_agree += core::CountRankAgreement(dominants, by_euclid);
    volume_agree += core::CountRankAgreement(dominants, by_volume);

    // Correlation-dominant devices sitting in the lower half of the volume
    // ranking: the detections volume-based dominance would miss.
    for (const auto& d : dominants) {
      for (size_t pos = 0; pos < by_volume.size(); ++pos) {
        if (by_volume[pos] == d.device_index && pos >= by_volume.size() / 2) {
          ++low_volume_dominants;
        }
      }
    }

    core::DominanceOptions strict;
    strict.phi = 0.8;
    const auto strict_dominants = core::FindDominantDevices(gw, strict);
    if (!strict_dominants.empty()) ++phi08_gateways;
    for (const auto& d : strict_dominants) {
      ++phi08_total;
      if (d.reported_type == simgen::DeviceType::kFixed) ++phi08_fixed;
    }
    fleet.Evict(id);
  }

  io::PrintSection(std::cout, "Sec 6.2: dominance-ranking agreement");
  io::TextTable table({"comparison", "measured", "paper"});
  table.AddRow({"dominant devices (phi=0.6)", bench::FmtInt(total_dominants),
                "206"});
  table.AddRow(
      {"ranked same as Euclidean",
       total_dominants > 0
           ? StrFormat("%zu (%.0f%%)", euclid_agree,
                       100.0 * euclid_agree /
                           static_cast<double>(total_dominants))
           : "n/a",
       "182 (88%)"});
  table.AddRow(
      {"ranked same as traffic volume",
       total_dominants > 0
           ? StrFormat("%zu (%.0f%%)", volume_agree,
                       100.0 * volume_agree /
                           static_cast<double>(total_dominants))
           : "n/a",
       "151 (73%)"});
  table.AddRow({"dominants in lower half of volume ranking",
                bench::FmtInt(low_volume_dominants), "~15% low-traffic"});
  table.Print(std::cout);

  io::PrintSection(std::cout, "Sec 6.2: strict threshold phi = 0.8");
  io::TextTable strict_table({"metric", "measured", "paper"});
  strict_table.AddRow(
      {"gateways with >= 1 dominant",
       StrFormat("%zu/%zu (%.0f%%)", phi08_gateways, eligible.size(),
                 eligible.empty() ? 0.0
                                  : 100.0 * phi08_gateways /
                                        static_cast<double>(eligible.size())),
       "67%"});
  strict_table.AddRow(
      {"fixed share among dominants",
       phi08_total > 0
           ? StrFormat("%.0f%%", 100.0 * phi08_fixed /
                                     static_cast<double>(phi08_total))
           : "n/a",
       "even larger than at 0.6"});
  strict_table.Print(std::cout);
  std::cout << "  (paper: correlation dominance finds low-volume devices that "
               "track the gateway's shape, which Euclidean/volume rankings "
               "miss)\n";
}

}  // namespace

int main() {
  Run();
  return 0;
}
