// Figure 5 (+ Section 6.2): dominant devices per gateway at φ = 0.6 —
// counts per gateway (paper: 99×1, 43×2, 7×3, 4×0 of 153), device-type mix
// (74 fixed / 67 portable / 53 unlabeled / 9 net-eq / 3 consoles) and the
// type distribution by dominance rank.
#include <iostream>
#include <map>

#include "bench_util.h"
#include "core/dominance.h"
#include "io/table.h"

namespace {

using namespace homets;  // NOLINT: bench binary

void Run() {
  bench::FleetCache fleet(bench::PaperConfig());
  const auto eligible = bench::WeeklyEligible(fleet.generator(), 4);

  std::map<size_t, size_t> count_histogram;  // #dominant → #gateways
  std::map<simgen::DeviceType, size_t> type_totals;
  std::map<size_t, std::map<simgen::DeviceType, size_t>> type_by_rank;
  size_t total_dominants = 0;

  for (int id : eligible) {
    const auto dominants = core::FindDominantDevices(fleet.Get(id));
    ++count_histogram[dominants.size()];
    for (size_t rank = 0; rank < dominants.size(); ++rank) {
      ++type_totals[dominants[rank].reported_type];
      ++type_by_rank[rank][dominants[rank].reported_type];
      ++total_dominants;
    }
    fleet.Evict(id);
  }

  io::PrintSection(std::cout,
                   "Sec 6.2: dominant devices per gateway (phi = 0.6)");
  io::TextTable counts({"#dominant_devices", "gateways_measured",
                        "gateways_paper"});
  const std::map<size_t, std::string> paper{{0, "4"}, {1, "99"}, {2, "43"},
                                            {3, "7"}};
  for (size_t k = 0; k <= 3; ++k) {
    const auto it = paper.find(k);
    counts.AddRow({bench::FmtInt(k), bench::FmtInt(count_histogram[k]),
                   it == paper.end() ? "-" : it->second});
  }
  counts.Print(std::cout);
  std::cout << "  eligible gateways: " << eligible.size()
            << " (paper: 153)\n";

  io::PrintSection(std::cout, "Sec 6.2: dominant device types");
  io::TextTable types({"type", "measured", "paper"});
  types.AddRow({"fixed",
                bench::FmtInt(type_totals[simgen::DeviceType::kFixed]), "74"});
  types.AddRow(
      {"portable",
       bench::FmtInt(type_totals[simgen::DeviceType::kPortable]), "67"});
  types.AddRow(
      {"unlabeled",
       bench::FmtInt(type_totals[simgen::DeviceType::kUnlabeled]), "53"});
  types.AddRow(
      {"network_equipment",
       bench::FmtInt(type_totals[simgen::DeviceType::kNetworkEquipment]),
       "9"});
  types.AddRow(
      {"game_console",
       bench::FmtInt(type_totals[simgen::DeviceType::kGameConsole]), "3"});
  types.AddRow({"total", bench::FmtInt(total_dominants), "206"});
  types.Print(std::cout);

  io::PrintSection(std::cout, "Figure 5: device types by dominance rank");
  io::TextTable ranks({"rank", "portable", "fixed", "unlabeled", "net_eq",
                       "console"});
  for (size_t rank = 0; rank < 3; ++rank) {
    auto& row = type_by_rank[rank];
    ranks.AddRow({StrFormat("%zu (first=0)", rank),
                  bench::FmtInt(row[simgen::DeviceType::kPortable]),
                  bench::FmtInt(row[simgen::DeviceType::kFixed]),
                  bench::FmtInt(row[simgen::DeviceType::kUnlabeled]),
                  bench::FmtInt(row[simgen::DeviceType::kNetworkEquipment]),
                  bench::FmtInt(row[simgen::DeviceType::kGameConsole])});
  }
  ranks.Print(std::cout);
  std::cout << "  (paper: fixed devices lead across ranks, portables are a "
               "strong second)\n";
}

}  // namespace

int main() {
  Run();
  return 0;
}
