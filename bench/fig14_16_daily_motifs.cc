// Figures 14–16 (+ Section 7.2.2): daily motifs — representative consensus
// shapes (afternoon / late-evening / morning+evening / all-day in the
// paper), dominant devices per motif, overlap with overall dominants,
// device-type mix and the workday/weekend split.
#include <iostream>
#include <map>

#include "bench_util.h"
#include "core/dominance.h"
#include "core/motif.h"
#include "core/motif_analysis.h"
#include "io/table.h"

namespace {

using namespace homets;  // NOLINT: bench binary

std::string LabelShape(const std::vector<double>& shape) {
  const auto classified = core::ClassifyDailyShape(shape);
  return classified.ok() ? core::DailyShapeName(*classified) : "unknown";
}

void Run() {
  bench::FleetCache fleet(bench::PaperConfig());
  const auto set = bench::DailyMotifWindows(&fleet, 28);
  const auto motifs_or = core::MotifDiscovery().Discover(set.windows);
  if (!motifs_or.ok()) {
    std::cout << "motif mining failed: " << motifs_or.status().ToString()
              << "\n";
    return;
  }
  const auto& motifs = *motifs_or;
  std::cout << "daily motifs discovered: " << motifs.size() << " from "
            << set.windows.size() << " gateway-days\n";

  std::map<int, std::vector<core::DominantDevice>> overall;
  auto provider = [&fleet](int id) -> const simgen::GatewayTrace* {
    return &fleet.Get(id);
  };
  core::MotifAnalysisOptions options;
  options.granularity_minutes = 180;
  options.anchor_offset_minutes = 0;
  options.window_minutes = ts::kMinutesPerDay;

  const size_t n_report = std::min<size_t>(4, motifs.size());
  static const char* kMotifNames[] = {"motifA", "motifB", "motifC", "motifD"};
  for (size_t m = 0; m < n_report; ++m) {
    const auto& motif = motifs[m];
    for (size_t member : motif.members) {
      const int gw = set.provenance[member].gateway_id;
      if (!overall.count(gw)) {
        overall[gw] = core::FindDominantDevices(fleet.Get(gw));
      }
    }
    const auto shape = core::MotifShape(set.windows, motif);
    io::PrintSection(std::cout,
                     StrFormat("Figure 14: daily %s", kMotifNames[m]));
    std::cout << "  support = " << motif.support() << " gateway-days, "
              << bench::Fmt(100.0 * core::WithinGatewayFraction(
                                        motif, set.provenance),
                            0)
              << "% within the same gateways";
    if (shape.ok()) {
      std::cout << ", shape: " << LabelShape(*shape) << "\n";
      io::TextTable bins({"slot", "z_mean", "sketch"});
      double max_abs = 1e-9;
      for (double v : *shape) max_abs = std::max(max_abs, std::fabs(v));
      for (size_t b = 0; b < shape->size(); ++b) {
        bins.AddRow({StrFormat("%02zu:00-%02zu:00", 3 * b, 3 * b + 3),
                     bench::Fmt((*shape)[b], 2),
                     io::AsciiBar(std::max((*shape)[b], 0.0), max_abs, 20)});
      }
      bins.Print(std::cout);
    } else {
      std::cout << "\n";
    }

    const auto character = core::CharacterizeMotif(
        motif, set.provenance, provider, overall, options);
    if (!character.ok()) continue;

    io::PrintSection(
        std::cout,
        StrFormat("Figure 15: dominant devices of %s", kMotifNames[m]));
    io::TextTable dom({"#dominant_in_window", "member_windows"});
    for (size_t k = 0; k < character->dominant_count_histogram.size(); ++k) {
      if (character->dominant_count_histogram[k] == 0) continue;
      dom.AddRow({bench::FmtInt(k),
                  bench::FmtInt(character->dominant_count_histogram[k])});
    }
    dom.Print(std::cout);
    io::TextTable overlap({"overlap_with_overall", "member_windows"});
    for (size_t k = 0; k < character->overlap_count_histogram.size(); ++k) {
      if (character->overlap_count_histogram[k] == 0) continue;
      overlap.AddRow({bench::FmtInt(k),
                      bench::FmtInt(character->overlap_count_histogram[k])});
    }
    overlap.Print(std::cout);

    io::PrintSection(
        std::cout,
        StrFormat("Figure 16: types and day mix of %s", kMotifNames[m]));
    io::TextTable types({"type", "dominant_devices"});
    for (const auto& [type, count] : character->dominant_type_counts) {
      types.AddRow({simgen::DeviceTypeName(type), bench::FmtInt(count)});
    }
    types.Print(std::cout);
    io::TextTable days({"day_kind", "member_windows"});
    days.AddRow({"workday", bench::FmtInt(character->workday_members)});
    days.AddRow({"weekend", bench::FmtInt(character->weekend_members)});
    days.Print(std::cout);
  }
  std::cout << "\n(paper: morning/evening motifs are portable-dominated, the "
               "all-day motif leans fixed and contains more working days; "
               "daily motifs reuse gateways heavily — 95-98% within-gateway "
               "support for the top motifs)\n";
}

}  // namespace

int main() {
  Run();
  return 0;
}
