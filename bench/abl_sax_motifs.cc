// Ablation (Section 2's related-work argument): SAX-word motif mining
// (the GrammarViz/VizTree substrate) versus Definition 5 on the same daily
// windows. Shows the symbol-distribution skew under Zipfian traffic and how
// SAX's normality assumption changes the motif structure.
#include <iostream>

#include "bench_util.h"
#include "cluster/rand_index.h"
#include "core/motif.h"
#include "io/table.h"
#include "sax/sax_motif.h"

namespace {

using namespace homets;  // NOLINT: bench binary

void Run() {
  bench::FleetCache fleet(bench::SmallConfig(60, 4));
  const auto set = bench::DailyMotifWindows(&fleet, 28);
  std::cout << "windows mined: " << set.windows.size() << " gateway-days\n";

  // Correlation motifs (Definition 5).
  const auto cor_motifs = core::MotifDiscovery().Discover(set.windows);

  // SAX motifs at several alphabet sizes.
  io::PrintSection(std::cout, "SAX-word motifs vs correlation motifs");
  io::TextTable table({"miner", "motifs", "largest_support",
                       "windows_in_motifs", "symbol_skew"});
  if (cor_motifs.ok()) {
    size_t in_motifs = 0;
    for (const auto& m : *cor_motifs) in_motifs += m.support();
    table.AddRow({"correlation (Definition 5)",
                  bench::FmtInt(cor_motifs->size()),
                  cor_motifs->empty()
                      ? "0"
                      : bench::FmtInt(cor_motifs->front().support()),
                  bench::FmtInt(in_motifs), "-"});
  }
  for (const size_t alphabet : {3u, 4u, 6u, 8u}) {
    const auto encoder = sax::SaxEncoder::Make(alphabet, 8).value();
    const auto sax_motifs = sax::DiscoverSaxMotifs(set.windows, encoder);
    if (!sax_motifs.ok()) continue;
    size_t in_motifs = 0;
    std::vector<std::string> words;
    for (const auto& m : *sax_motifs) {
      in_motifs += m.support();
      for (size_t k = 0; k < m.support(); ++k) words.push_back(m.word);
    }
    table.AddRow({StrFormat("SAX words (alphabet %zu)", alphabet),
                  bench::FmtInt(sax_motifs->size()),
                  sax_motifs->empty()
                      ? "0"
                      : bench::FmtInt(sax_motifs->front().support()),
                  bench::FmtInt(in_motifs),
                  bench::Fmt(encoder.SymbolDistributionSkew(words), 2)});
  }
  table.Print(std::cout);
  std::cout
      << "  (paper Sec 2: SAX assumes z-normalized values are normal; on "
         "Zipfian traffic the near-zero region hogs several symbols, so SAX "
         "words either collapse distinct behaviors into giant motifs or "
         "fragment on noise, and there is no ground truth to tune the "
         "alphabet)\n";

  // Partition agreement between the two miners (Adjusted Rand Index over
  // windows; unassigned windows are singletons).
  if (cor_motifs.ok()) {
    io::PrintSection(std::cout,
                     "Partition agreement (ARI, correlation vs SAX)");
    auto labels_of = [&](const auto& motifs) {
      std::vector<size_t> labels(set.windows.size());
      // Unique singleton ids first, then motif ids on top.
      for (size_t w = 0; w < labels.size(); ++w) labels[w] = w;
      size_t next = labels.size();
      for (const auto& motif : motifs) {
        for (size_t member : motif.members) labels[member] = next;
        ++next;
      }
      return labels;
    };
    const auto cor_labels = labels_of(*cor_motifs);
    io::TextTable ari_table({"alphabet", "ARI_vs_correlation_motifs"});
    for (const size_t alphabet : {3u, 4u, 6u, 8u}) {
      const auto encoder = sax::SaxEncoder::Make(alphabet, 8).value();
      const auto sax_motifs = sax::DiscoverSaxMotifs(set.windows, encoder);
      if (!sax_motifs.ok()) continue;
      const auto ari =
          cluster::AdjustedRandIndex(cor_labels, labels_of(*sax_motifs));
      if (ari.ok()) {
        ari_table.AddRow({bench::FmtInt(alphabet), bench::Fmt(*ari, 2)});
      }
    }
    ari_table.Print(std::cout);
    std::cout << "  (low agreement: the two similarity notions group "
                 "gateway-days differently)\n";
  }

  // Magnitude blindness: are SAX's biggest motifs mixing very different
  // traffic volumes?
  io::PrintSection(std::cout, "Volume mix inside the largest SAX motif");
  const auto encoder = sax::SaxEncoder::Make(4, 8).value();
  const auto sax_motifs = sax::DiscoverSaxMotifs(set.windows, encoder);
  if (sax_motifs.ok() && !sax_motifs->empty()) {
    const auto& top = sax_motifs->front();
    double min_sum = 1e300, max_sum = 0.0;
    for (size_t member : top.members) {
      const double sum = set.windows[member].Sum();
      if (sum <= 0.0) continue;
      min_sum = std::min(min_sum, sum);
      max_sum = std::max(max_sum, sum);
    }
    io::TextTable mix({"metric", "value"});
    mix.AddRow({"support", bench::FmtInt(top.support())});
    mix.AddRow({"word", top.word});
    if (max_sum > 0.0 && min_sum < 1e300) {
      mix.AddRow({"min member volume (bytes)", bench::Fmt(min_sum, 0)});
      mix.AddRow({"max member volume (bytes)", bench::Fmt(max_sum, 0)});
      mix.AddRow({"volume spread (x)", bench::Fmt(max_sum / min_sum, 1)});
    }
    mix.Print(std::cout);
  }
}

}  // namespace

int main() {
  Run();
  return 0;
}
