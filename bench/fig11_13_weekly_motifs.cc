// Figures 11–13 (+ Section 7.2.1): weekly motifs of interest — consensus
// shapes (heavy-weekend / everyday / workday usage in the paper), support
// and within-gateway recurrence, dominant devices per motif, overlap with
// the gateways' overall dominant devices, and device-type mix.
#include <iostream>
#include <map>

#include "bench_util.h"
#include "core/dominance.h"
#include "core/motif.h"
#include "core/motif_analysis.h"
#include "io/table.h"

namespace {

using namespace homets;  // NOLINT: bench binary

void Run() {
  bench::FleetCache fleet(bench::PaperConfig());
  const auto set = bench::WeeklyMotifWindows(&fleet, 6);
  const auto motifs_or = core::MotifDiscovery().Discover(set.windows);
  if (!motifs_or.ok()) {
    std::cout << "motif mining failed: " << motifs_or.status().ToString()
              << "\n";
    return;
  }
  const auto& motifs = *motifs_or;
  std::cout << "weekly motifs discovered: " << motifs.size() << " from "
            << set.windows.size() << " gateway-weeks\n";

  // Overall dominants per contributing gateway (4-week dominance as in the
  // paper's Section 6.2 baseline).
  std::map<int, std::vector<core::DominantDevice>> overall;
  auto provider = [&fleet](int id) -> const simgen::GatewayTrace* {
    return &fleet.Get(id);
  };
  core::MotifAnalysisOptions options;
  options.granularity_minutes = 480;
  options.anchor_offset_minutes = 120;
  options.window_minutes = ts::kMinutesPerWeek;

  const size_t n_report = std::min<size_t>(3, motifs.size());
  for (size_t m = 0; m < n_report; ++m) {
    const auto& motif = motifs[m];
    for (size_t member : motif.members) {
      const int gw = set.provenance[member].gateway_id;
      if (!overall.count(gw)) {
        overall[gw] = core::FindDominantDevices(fleet.Get(gw));
      }
    }
    io::PrintSection(std::cout, StrFormat("Figure 11: weekly motif%zu", m + 1));
    std::cout << "  support = " << motif.support() << " gateway-weeks, "
              << bench::Fmt(100.0 * core::WithinGatewayFraction(
                                        motif, set.provenance),
                            0)
              << "% of members recur within the same gateways";
    if (const auto consensus = core::MotifShape(set.windows, motif);
        consensus.ok()) {
      if (const auto family = core::ClassifyWeeklyShape(*consensus);
          family.ok()) {
        std::cout << ", family: " << core::WeeklyShapeName(*family);
      }
    }
    std::cout << "\n";

    // Consensus shape: 21 bins of 8 h; print per-day morning/work/evening.
    const auto shape = core::MotifShape(set.windows, motif);
    if (shape.ok() && shape->size() == 21) {
      io::TextTable days({"day", "morning(2-10)", "work(10-18)",
                          "evening(18-2)"});
      static const char* kDays[] = {"Mon", "Tue", "Wed", "Thu",
                                    "Fri", "Sat", "Sun"};
      double max_abs = 1e-9;
      for (double v : *shape) max_abs = std::max(max_abs, std::fabs(v));
      for (int d = 0; d < 7; ++d) {
        auto cell = [&](int slot) {
          const double v = (*shape)[static_cast<size_t>(3 * d + slot)];
          return StrFormat("%+5.2f %s", v,
                           io::AsciiBar(std::max(v, 0.0), max_abs, 8).c_str());
        };
        days.AddRow({kDays[d], cell(0), cell(1), cell(2)});
      }
      days.Print(std::cout);
    }

    const auto character =
        core::CharacterizeMotif(motif, set.provenance, provider, overall,
                                options);
    if (!character.ok()) continue;
    io::PrintSection(std::cout,
                     StrFormat("Figure 12: dominant devices of motif%zu", m + 1));
    io::TextTable dom({"#dominant_in_window", "member_windows"});
    for (size_t k = 0; k < character->dominant_count_histogram.size(); ++k) {
      if (character->dominant_count_histogram[k] == 0) continue;
      dom.AddRow({bench::FmtInt(k),
                  bench::FmtInt(character->dominant_count_histogram[k])});
    }
    dom.Print(std::cout);
    io::TextTable overlap({"overlap_with_overall_dominants", "member_windows"});
    for (size_t k = 0; k < character->overlap_count_histogram.size(); ++k) {
      if (character->overlap_count_histogram[k] == 0) continue;
      overlap.AddRow({bench::FmtInt(k),
                      bench::FmtInt(character->overlap_count_histogram[k])});
    }
    overlap.Print(std::cout);

    io::PrintSection(std::cout,
                     StrFormat("Figure 13: device types of motif%zu", m + 1));
    io::TextTable types({"type", "dominant_devices"});
    for (const auto& [type, count] : character->dominant_type_counts) {
      types.AddRow({simgen::DeviceTypeName(type), bench::FmtInt(count)});
    }
    types.Print(std::cout);
  }
  std::cout << "\n(paper: motif1/motif3 lean portable — evening and weekend "
               "usage — while motif2's everyday users lean fixed; window "
               "dominants mostly coincide with the overall dominants)\n";
}

}  // namespace

int main() {
  Run();
  return 0;
}
