// Extension (the introduction's troubleshooting use case): per-gateway
// profiling plus pattern-deviation detection. Mines daily motifs, injects a
// synthetic fault into one home (a day of silence followed by an all-night
// blast) and shows the anomaly detector surfacing exactly that day, with
// the gateway's profile as the diagnosis context a support technician would
// see.
#include <iostream>

#include "bench_util.h"
#include "core/anomaly.h"
#include "core/motif.h"
#include "core/profiling.h"
#include "io/table.h"

namespace {

using namespace homets;  // NOLINT: bench binary

void Run() {
  bench::FleetCache fleet(bench::SmallConfig(40, 4));
  auto set = bench::DailyMotifWindows(&fleet, 28);
  std::cout << "windows: " << set.windows.size() << " gateway-days from "
            << set.gateways.size() << " gateways\n";
  if (set.gateways.empty()) return;

  // Inject a fault into the first eligible gateway's 10th day: wipe the real
  // traffic and place a night-time blast (e.g. a compromised device).
  const int victim = set.gateways.front();
  size_t injected = SIZE_MAX;
  for (size_t w = 0; w < set.windows.size(); ++w) {
    if (set.provenance[w].gateway_id == victim &&
        set.provenance[w].start_minute == 9 * ts::kMinutesPerDay) {
      for (auto& v : set.windows[w].mutable_values()) v = 0.0;
      set.windows[w][0] = 2.5e8;
      set.windows[w][1] = 2.5e8;
      injected = w;
      break;
    }
  }

  const auto motifs = core::MotifDiscovery().Discover(set.windows);
  if (!motifs.ok()) return;
  const auto anomalies =
      core::FindPatternAnomalies(set.windows, set.provenance, *motifs);
  if (!anomalies.ok()) return;

  io::PrintSection(std::cout, "Pattern-deviation report");
  io::TextTable table({"gateway", "day", "best_pattern_cor", "volume_MB",
                       "injected_fault"});
  for (size_t i = 0; i < anomalies->size() && i < 10; ++i) {
    const auto& a = (*anomalies)[i];
    table.AddRow({bench::FmtInt(static_cast<size_t>(a.gateway_id)),
                  bench::FmtInt(static_cast<size_t>(a.start_minute /
                                                    ts::kMinutesPerDay)),
                  bench::Fmt(a.best_pattern_similarity, 2),
                  bench::Fmt(a.window_volume / 1e6, 0),
                  a.window_index == injected ? "<-- yes" : ""});
  }
  table.Print(std::cout);
  bool found = false;
  for (const auto& a : *anomalies) {
    if (a.window_index == injected) found = true;
  }
  std::cout << "  injected fault "
            << (found ? "DETECTED" : "missed (gateway had no stable pattern)")
            << " among " << anomalies->size() << " flagged gateway-days\n";

  io::PrintSection(std::cout, "Technician context: victim gateway profile");
  const auto profile = core::ProfileGateway(fleet.Get(victim));
  if (profile.ok()) {
    std::cout << core::FormatProfile(*profile);
  }
  std::cout << "\n(the paper's Section 1 workflow: contrast the trouble "
               "report with the home's recurring patterns and dominant "
               "devices before rolling a technician)\n";
}

}  // namespace

int main() {
  Run();
  return 0;
}
