// Section 4.2(b): classical stationarity testing of gateway traffic — ADF
// and KPSS reject classical (wide-sense) stationarity across the fleet,
// which motivates the paper's custom strong-stationarity notion.
#include <iostream>

#include "bench_util.h"
#include "io/table.h"
#include "stattests/unit_root.h"
#include "ts/rolling.h"

namespace {

using namespace homets;  // NOLINT: bench binary

void Run() {
  // Several weeks of data: the week-to-week behavioral drift is what breaks
  // classical stationarity.
  bench::FleetCache fleet(bench::SmallConfig(40, 4));

  size_t adf_nonstationary = 0, kpss_rejected = 0, either = 0, checked = 0;
  size_t ljung_rejected = 0;
  double mean_instability = 0.0, var_instability = 0.0;
  size_t rolling_counted = 0;
  for (int id = 0; id < fleet.config().n_gateways; ++id) {
    // Hourly bins keep the regression sizes manageable, matching the scale
    // of the paper's per-gateway tests.
    auto hourly = ts::Aggregate(fleet.Get(id).AggregateTraffic(), 60, 0,
                                ts::AggKind::kSum);
    fleet.Evict(id);
    if (!hourly.ok()) continue;
    const auto values = hourly->FillMissing(0.0).values();
    const auto adf = stattests::AugmentedDickeyFuller(values);
    const auto kpss = stattests::Kpss(values);
    if (!adf.ok() || !kpss.ok()) continue;
    ++checked;
    const bool adf_says_nonstationary = !adf->StationaryAt5pct();
    const bool kpss_says_nonstationary = kpss->RejectedAt5pct();
    if (adf_says_nonstationary) ++adf_nonstationary;
    if (kpss_says_nonstationary) ++kpss_rejected;
    if (adf_says_nonstationary || kpss_says_nonstationary) ++either;
    const auto lb = stattests::LjungBox(values, 24);
    if (lb.ok() && lb->Rejected()) ++ljung_rejected;
    // The paper's direct observation: mean/covariance wander in a sliding
    // window. One-week rolling windows over the hourly series.
    const auto rolling =
        ts::ComputeRollingMoments(ts::TimeSeries(0, 60, values), 168);
    if (rolling.ok()) {
      mean_instability += rolling->MeanInstability();
      var_instability += rolling->VarianceInstability();
      ++rolling_counted;
    }
  }

  io::PrintSection(std::cout,
                   "Sec 4.2b: classical stationarity tests per gateway");
  io::TextTable table({"test", "verdict", "gateways", "of"});
  table.AddRow({"ADF (null: unit root)", "unit root kept",
                bench::FmtInt(adf_nonstationary), bench::FmtInt(checked)});
  table.AddRow({"KPSS (null: stationary)", "stationarity rejected",
                bench::FmtInt(kpss_rejected), bench::FmtInt(checked)});
  table.AddRow({"either test flags non-stationarity", "",
                bench::FmtInt(either), bench::FmtInt(checked)});
  table.AddRow({"Ljung-Box (null: white noise)", "autocorrelation present",
                bench::FmtInt(ljung_rejected), bench::FmtInt(checked)});
  table.Print(std::cout);
  if (rolling_counted > 0) {
    std::cout << "  sliding-window (1 week) moment instability: mean CV = "
              << bench::Fmt(mean_instability /
                                static_cast<double>(rolling_counted),
                            2)
              << ", variance CV = "
              << bench::Fmt(var_instability /
                                static_cast<double>(rolling_counted),
                            2)
              << "  (paper: 'the covariance function ... is not constant in "
                 "sliding window')\n";
  }
  std::cout << "  (paper: all classical stationarity tests were rejected — "
               "the distribution characteristics of home traffic change "
               "over time, so wide-sense stationarity does not hold)\n";
}

}  // namespace

int main() {
  Run();
  return 0;
}
