// Figure 1 (+ Section 4.1): traffic-value distribution of representative
// gateways — Zipf's law check, KDE shape, boxplots with/without outliers,
// and the incoming/outgoing correlation (paper: mean 0.92, median 0.95,
// sd 0.08).
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "correlation/coefficients.h"
#include "io/table.h"
#include "stats/boxplot.h"
#include "stats/descriptive.h"
#include "stats/kde.h"
#include "stats/zipf_fit.h"

namespace {

using namespace homets;  // NOLINT: bench binary

void Run() {
  // The paper analyzes the 10 most representative gateways over one week.
  bench::FleetCache fleet(bench::SmallConfig(40, 1));

  // Pick the 10 gateways with the most observations.
  std::vector<std::pair<size_t, int>> by_observations;
  for (int id = 0; id < fleet.config().n_gateways; ++id) {
    by_observations.emplace_back(
        fleet.Get(id).AggregateTraffic().CountObserved(), id);
  }
  std::sort(by_observations.rbegin(), by_observations.rend());
  std::vector<int> top;
  for (size_t i = 0; i < 10 && i < by_observations.size(); ++i) {
    top.push_back(by_observations[i].second);
  }

  io::PrintSection(std::cout,
                   "Figure 1a / Sec 4.1: traffic distribution per gateway");
  io::TextTable dist({"gateway", "zipf_exponent", "zipf_r2", "skewness",
                      "median_B/min", "p99_B/min"});
  for (int id : top) {
    const auto traffic = fleet.Get(id).AggregateIncoming();
    const auto values = traffic.ObservedValues();
    const auto fit = stats::FitZipfRankFrequency(values);
    const auto skew = stats::Skewness(values);
    const auto median = stats::Median(values);
    const auto p99 = stats::Quantile(values, 0.99);
    dist.AddRow({bench::FmtInt(static_cast<size_t>(id)),
                 fit.ok() ? bench::Fmt(fit->exponent, 2) : "n/a",
                 fit.ok() ? bench::Fmt(fit->r_squared, 2) : "n/a",
                 skew.ok() ? bench::Fmt(*skew, 1) : "n/a",
                 bench::Fmt(median.ValueOr(0.0), 0),
                 bench::Fmt(p99.ValueOr(0.0), 0)});
  }
  dist.Print(std::cout);
  std::cout << "  (paper: values follow Zipf's law; low values dominate the "
               "probability mass)\n";

  // Figure 1a: KDE of one typical gateway zoomed near zero.
  const int typical = top[0];
  const auto typical_values =
      fleet.Get(typical).AggregateIncoming().ObservedValues();
  io::PrintSection(std::cout, "Figure 1a: KDE of a typical gateway");
  const auto kde = stats::KernelDensity::Fit(typical_values);
  if (kde.ok()) {
    // Density sampled on a log-spaced set of probe points.
    io::TextTable kde_table({"traffic_bytes", "density", "sketch"});
    const double probes[] = {0,     500,    2000,   10000,  50000,
                             2e5,   1e6,    5e6,    1.5e7,  3e7};
    double max_density = 0.0;
    for (double p : probes) max_density = std::max(max_density, kde->Evaluate(p));
    for (double p : probes) {
      const double d = kde->Evaluate(p);
      kde_table.AddRow({bench::Fmt(p, 0), StrFormat("%.3e", d),
                        io::AsciiBar(d, max_density, 30)});
    }
    kde_table.Print(std::cout);
  }

  // Figure 1c/1d: boxplot with and without outliers.
  io::PrintSection(std::cout, "Figure 1c/1d: boxplot of the typical gateway");
  const auto box = stats::ComputeBoxplot(typical_values);
  if (box.ok()) {
    io::TextTable boxes({"metric", "value_bytes"});
    boxes.AddRow({"q1", bench::Fmt(box->q1, 0)});
    boxes.AddRow({"median", bench::Fmt(box->median, 0)});
    boxes.AddRow({"q3", bench::Fmt(box->q3, 0)});
    boxes.AddRow({"upper_whisker", bench::Fmt(box->upper_whisker, 0)});
    boxes.AddRow({"outliers", bench::FmtInt(box->outliers.size())});
    boxes.AddRow(
        {"outlier_fraction",
         bench::Fmt(box->OutlierFraction(typical_values.size()), 4)});
    if (!box->outliers.empty()) {
      boxes.AddRow({"max_outlier",
                    bench::Fmt(*std::max_element(box->outliers.begin(),
                                                 box->outliers.end()),
                               0)});
    }
    boxes.Print(std::cout);
    std::cout << "  (paper: active traffic appears as boxplot outliers; "
                 "whisker scale is thousands of bytes, bursts are millions)\n";
  }

  // Section 4.1(b): incoming vs outgoing correlation across gateways.
  io::PrintSection(std::cout,
                   "Sec 4.1b: incoming/outgoing correlation across gateways");
  std::vector<double> correlations;
  for (int id = 0; id < fleet.config().n_gateways; ++id) {
    const auto& gw = fleet.Get(id);
    const auto r = correlation::Pearson(gw.AggregateIncoming().values(),
                                        gw.AggregateOutgoing().values());
    if (r.ok() && r->Significant()) correlations.push_back(r->coefficient);
    fleet.Evict(id);
  }
  const auto summary = stats::Summarize(correlations);
  if (summary.ok()) {
    io::TextTable table({"stat", "measured", "paper"});
    table.AddRow({"mean", bench::Fmt(summary->mean), "0.92"});
    table.AddRow({"median", bench::Fmt(summary->median), "0.95"});
    table.AddRow({"stddev", bench::Fmt(summary->stddev), "0.08"});
    table.AddRow({"gateways", bench::FmtInt(summary->n), "-"});
    table.Print(std::cout);
  }
}

}  // namespace

int main() {
  Run();
  return 0;
}
