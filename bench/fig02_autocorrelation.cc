// Figure 2 (+ Section 4.2a): autocorrelation of the best gateway and the
// strongest lagged cross-correlation between a gateway pair; plus the AR
// burst-forecast negative result the paper attributes to ARIMA.
#include <iostream>

#include "bench_util.h"
#include "correlation/acf.h"
#include "io/table.h"
#include "model/autoregressive.h"
#include "ts/time_series.h"

namespace {

using namespace homets;  // NOLINT: bench binary

void Run() {
  bench::FleetCache fleet(bench::SmallConfig(12, 2));
  constexpr size_t kMaxLag = 90;

  // Hourly aggregation keeps the ACF structure readable, as in the figure.
  std::vector<ts::TimeSeries> hourly;
  for (int id = 0; id < fleet.config().n_gateways; ++id) {
    auto agg = ts::Aggregate(fleet.Get(id).AggregateTraffic(), 60, 0,
                             ts::AggKind::kSum);
    hourly.push_back(agg.ok() ? std::move(agg).value() : ts::TimeSeries());
    fleet.Evict(id);
  }

  // Find the gateway with the strongest lag-24h autocorrelation.
  int best_id = -1;
  double best_acf = -1.0;
  std::vector<correlation::AcfResult> acfs(hourly.size());
  for (size_t id = 0; id < hourly.size(); ++id) {
    const auto acf = correlation::Acf(hourly[id].FillMissing(0.0).values(),
                                      kMaxLag);
    if (!acf.ok()) continue;
    acfs[id] = *acf;
    if (acf->acf[24] > best_acf) {
      best_acf = acf->acf[24];
      best_id = static_cast<int>(id);
    }
  }

  io::PrintSection(std::cout, "Figure 2 (left): ACF of the best gateway");
  if (best_id >= 0) {
    const auto& acf = acfs[static_cast<size_t>(best_id)];
    io::TextTable table({"lag_hours", "acf", "significant", "sketch"});
    for (size_t lag : {1u, 2u, 6u, 12u, 24u, 48u, 72u}) {
      table.AddRow({bench::FmtInt(lag), bench::Fmt(acf.acf[lag]),
                    std::abs(acf.acf[lag]) > acf.conf_bound ? "yes" : "no",
                    io::AsciiBar(std::abs(acf.acf[lag]), 1.0, 25)});
    }
    table.Print(std::cout);
    std::cout << "  gateway " << best_id << ", white-noise band +/- "
              << bench::Fmt(acf.conf_bound) << "\n"
              << "  significant lags: " << acf.SignificantLags().size()
              << " of " << kMaxLag
              << "  (paper: low but statistically significant ACF)\n";
  }

  // Strongest cross-correlation pair.
  io::PrintSection(std::cout, "Figure 2 (right): best cross-correlated pair");
  double best_ccf = 0.0;
  int pair_a = -1, pair_b = -1, peak_lag = 0;
  for (size_t a = 0; a < hourly.size(); ++a) {
    for (size_t b = a + 1; b < hourly.size(); ++b) {
      if (hourly[a].size() != hourly[b].size() || hourly[a].empty()) continue;
      const auto ccf =
          correlation::Ccf(hourly[a].FillMissing(0.0).values(),
                           hourly[b].FillMissing(0.0).values(), 48);
      if (!ccf.ok()) continue;
      const int peak = ccf->PeakLag();
      const double value = std::abs(ccf->AtLag(peak));
      if (value > best_ccf) {
        best_ccf = value;
        pair_a = static_cast<int>(a);
        pair_b = static_cast<int>(b);
        peak_lag = peak;
      }
    }
  }
  if (pair_a >= 0) {
    io::TextTable table({"pair", "peak_lag_hours", "ccf_at_peak"});
    table.AddRow({StrFormat("gw%d & gw%d", pair_a, pair_b),
                  StrFormat("%d", peak_lag), bench::Fmt(best_ccf)});
    table.Print(std::cout);
    std::cout << "  (paper: some cross-correlations across gateways are "
                 "significant, hinting at shared daily rhythms)\n";
  }

  // Section 4.2a: ARIMA-style models cannot predict the rare bursts at
  // minute granularity.
  io::PrintSection(std::cout,
                   "Sec 4.2a: AR burst forecasting at 1-minute granularity");
  bench::FleetCache minute_fleet(bench::SmallConfig(4, 1));
  io::TextTable ar_table(
      {"gateway", "ar_order", "bursts", "anticipated", "recall"});
  for (int id = 0; id < minute_fleet.config().n_gateways; ++id) {
    const auto traffic =
        minute_fleet.Get(id).AggregateTraffic().FillMissing(0.0);
    const auto model = model::FitArAicSelect(traffic.values(), 10);
    if (!model.ok()) continue;
    const auto report =
        model::EvaluateBurstForecast(*model, traffic.values(), 5.0e6);
    if (!report.ok()) continue;
    ar_table.AddRow({bench::FmtInt(static_cast<size_t>(id)),
                     bench::FmtInt(model->order),
                     bench::FmtInt(report->n_bursts),
                     bench::FmtInt(report->n_bursts_anticipated),
                     bench::Fmt(report->recall, 2)});
    minute_fleet.Evict(id);
  }
  ar_table.Print(std::cout);
  std::cout << "  (paper: ARIMA at this granularity cannot predict the rare "
               "active-traffic bursts)\n";
}

}  // namespace

int main() {
  Run();
  return 0;
}
