// Figure 4 (+ Section 6.1): distribution of per-device background thresholds
// τ for outgoing and incoming traffic, the τ group → device-type dependency,
// and the τ_back = min(τ, 5000) rule.
#include <iostream>
#include <map>

#include "bench_util.h"
#include "core/background.h"
#include "io/table.h"
#include "stats/histogram.h"

namespace {

using namespace homets;  // NOLINT: bench binary

void Run() {
  // The paper studies four weeks of data, 934 observed devices.
  bench::FleetCache fleet(bench::SmallConfig(196, 4));

  std::vector<double> taus_in, taus_out;
  std::map<core::TauGroup, std::map<simgen::DeviceType, size_t>> group_types;
  size_t devices_seen = 0, large_in = 0, large_out = 0, capped = 0;
  for (int id = 0; id < fleet.config().n_gateways; ++id) {
    const auto& gw = fleet.Get(id);
    for (const auto& dev : gw.devices) {
      const auto bg = core::EstimateDeviceBackground(dev);
      if (!bg.ok()) continue;  // brief guests lack observations
      ++devices_seen;
      taus_in.push_back(bg->incoming.tau);
      taus_out.push_back(bg->outgoing.tau);
      if (bg->incoming.tau > 40000.0) ++large_in;
      if (bg->outgoing.tau > 40000.0) ++large_out;
      if (bg->incoming.tau > core::kBackgroundCapBytes) ++capped;
      ++group_types[bg->incoming.group][dev.reported_type];
    }
    fleet.Evict(id);
  }

  auto print_histogram = [&](const std::string& title,
                             const std::vector<double>& taus) {
    io::PrintSection(std::cout, title);
    auto hist = stats::Histogram::Make(0.0, 50000.0, 10).value();
    hist.AddAll(taus);
    io::TextTable table({"tau_range_bytes", "devices", "sketch"});
    size_t max_count = 1;
    for (size_t c : hist.counts()) max_count = std::max(max_count, c);
    for (size_t b = 0; b < hist.bins(); ++b) {
      table.AddRow(
          {StrFormat("[%.0f, %.0f)", hist.BinLeft(b),
                     hist.BinLeft(b) + hist.Width()),
           bench::FmtInt(hist.counts()[b]),
           io::AsciiBar(static_cast<double>(hist.counts()[b]),
                        static_cast<double>(max_count), 30)});
    }
    table.AddRow({">= 50000", bench::FmtInt(hist.overflow()), ""});
    table.Print(std::cout);
    std::cout << "  below 5000 B/min: "
              << bench::Fmt(100.0 * hist.CumulativeFraction(0), 1)
              << "% of devices\n";
  };
  print_histogram("Figure 4 (left): tau distribution, outgoing", taus_out);
  print_histogram("Figure 4 (right): tau distribution, incoming", taus_in);

  io::PrintSection(std::cout, "Sec 6.1: headline numbers");
  io::TextTable head({"metric", "measured", "paper"});
  head.AddRow({"devices analyzed", bench::FmtInt(devices_seen), "934"});
  head.AddRow({"tau > 40000 (incoming)", bench::FmtInt(large_in), "24"});
  head.AddRow({"tau > 40000 (outgoing)", bench::FmtInt(large_out), "15"});
  head.AddRow({"devices with tau capped at 5000",
               bench::FmtInt(capped), "-"});
  head.Print(std::cout);

  io::PrintSection(std::cout,
                   "Sec 6.1: device types per tau group (incoming)");
  io::TextTable types(
      {"tau_group", "portable", "fixed", "unlabeled", "net_eq", "console"});
  for (const auto group :
       {core::TauGroup::kSmall, core::TauGroup::kMedium,
        core::TauGroup::kLarge}) {
    auto& counts = group_types[group];
    types.AddRow({core::TauGroupName(group),
                  bench::FmtInt(counts[simgen::DeviceType::kPortable]),
                  bench::FmtInt(counts[simgen::DeviceType::kFixed]),
                  bench::FmtInt(counts[simgen::DeviceType::kUnlabeled]),
                  bench::FmtInt(counts[simgen::DeviceType::kNetworkEquipment]),
                  bench::FmtInt(counts[simgen::DeviceType::kGameConsole])});
  }
  types.Print(std::cout);
  std::cout << "  (paper: portables dominate small/medium tau groups, fixed "
               "devices the large group)\n";
}

}  // namespace

int main() {
  Run();
  return 0;
}
