// Section 6.2 "Dominant Devices and Number of Residents": over the surveyed
// homes, no overall correlation between dominant-device count and resident
// count, but a significant correlation (~0.53 in the paper) when restricted
// to 1-2 user homes; every 1-user home has exactly one dominant device.
#include <iostream>

#include "bench_util.h"
#include "core/dominance.h"
#include "correlation/coefficients.h"
#include "io/table.h"

namespace {

using namespace homets;  // NOLINT: bench binary

void Run() {
  bench::FleetCache fleet(bench::PaperConfig());

  std::vector<double> residents_all, dominants_all;
  std::vector<double> residents_12, dominants_12;
  std::map<int, std::map<size_t, size_t>> breakdown;  // residents → #dom → n
  for (int id = 0; id < fleet.config().n_gateways; ++id) {
    const auto& gw = fleet.Get(id);
    if (!gw.surveyed_residents.has_value()) {
      fleet.Evict(id);
      continue;
    }
    const int residents = *gw.surveyed_residents;
    const size_t dominants = core::FindDominantDevices(gw).size();
    residents_all.push_back(residents);
    dominants_all.push_back(static_cast<double>(dominants));
    if (residents <= 2) {
      residents_12.push_back(residents);
      dominants_12.push_back(static_cast<double>(dominants));
    }
    ++breakdown[residents][dominants];
    fleet.Evict(id);
  }

  io::PrintSection(std::cout, "Sec 6.2: surveyed homes breakdown");
  io::TextTable table({"residents", "0_dominant", "1_dominant", "2_dominant",
                       "3_dominant"});
  for (auto& [residents, counts] : breakdown) {
    table.AddRow({bench::FmtInt(static_cast<size_t>(residents)),
                  bench::FmtInt(counts[0]), bench::FmtInt(counts[1]),
                  bench::FmtInt(counts[2]), bench::FmtInt(counts[3])});
  }
  table.Print(std::cout);
  std::cout << "  surveyed homes: " << residents_all.size()
            << " (paper: 49)\n";

  io::PrintSection(std::cout,
                   "Sec 6.2: residents vs dominant-device correlation");
  io::TextTable cors({"subset", "pearson", "p_value", "paper"});
  const auto all = correlation::Pearson(residents_all, dominants_all);
  if (all.ok()) {
    cors.AddRow({"all surveyed", bench::Fmt(all->coefficient, 2),
                 bench::Fmt(all->p_value, 3), "no significant correlation"});
  }
  const auto low = correlation::Pearson(residents_12, dominants_12);
  if (low.ok()) {
    cors.AddRow({"1-2 residents", bench::Fmt(low->coefficient, 2),
                 bench::Fmt(low->p_value, 3), "0.53 (significant)"});
  }
  cors.Print(std::cout);
  std::cout << "  (paper: the dominant-device count lower-bounds the number "
               "of residents; with 3+ users the device mixing destroys the "
               "correlation)\n";
}

}  // namespace

int main() {
  Run();
  return 0;
}
