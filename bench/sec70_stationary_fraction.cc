// Section 7 (intro): fraction of strongly stationary gateways at 3-hour
// weekly windows — paper: 7% on raw traffic, rising to 11% after background
// removal. Demonstrates that background stripping reveals regularity.
#include <iostream>

#include "bench_util.h"
#include "core/background.h"
#include "core/stationarity.h"
#include "io/table.h"
#include "ts/time_series.h"

namespace {

using namespace homets;  // NOLINT: bench binary

// Fraction of gateways whose weekly windows at `granularity` pass
// Definition 2.
size_t CountStationary(const std::vector<ts::TimeSeries>& fleet,
                       int64_t granularity) {
  size_t stationary = 0;
  for (const auto& series : fleet) {
    auto agg = ts::Aggregate(series, granularity, 0, ts::AggKind::kSum);
    if (!agg.ok()) continue;
    const auto windows = ts::SliceWindows(*agg, ts::kMinutesPerWeek, 0);
    if (windows.size() < 2) continue;
    const auto result = core::CheckStrongStationarity(windows);
    if (result.ok() && result->strongly_stationary) ++stationary;
  }
  return stationary;
}

void Run() {
  bench::FleetCache fleet(bench::PaperConfig());
  const int weeks = 4;
  const auto eligible = bench::WeeklyEligible(fleet.generator(), weeks);

  std::vector<ts::TimeSeries> raw, active;
  for (int id : eligible) {
    const auto& gw = fleet.Get(id);
    auto raw_series = gw.AggregateTraffic();
    auto act_series = core::ActiveAggregate(gw);
    auto raw_slice = raw_series.Slice(0, weeks * ts::kMinutesPerWeek);
    auto act_slice = act_series.Slice(0, weeks * ts::kMinutesPerWeek);
    raw.push_back(raw_slice.ok() ? std::move(raw_slice).value()
                                 : std::move(raw_series));
    active.push_back(act_slice.ok() ? std::move(act_slice).value()
                                    : std::move(act_series));
    fleet.Evict(id);
  }

  io::PrintSection(std::cout,
                   "Sec 7: strongly stationary gateways, weekly windows, "
                   "3 h aggregation");
  const size_t raw_stationary = CountStationary(raw, 180);
  const size_t active_stationary = CountStationary(active, 180);
  io::TextTable table({"input", "stationary", "of", "fraction", "paper"});
  table.AddRow({"raw traffic", bench::FmtInt(raw_stationary),
                bench::FmtInt(raw.size()),
                bench::Fmt(100.0 * raw_stationary /
                               std::max<size_t>(raw.size(), 1),
                           1) +
                    "%",
                "7%"});
  table.AddRow({"background removed", bench::FmtInt(active_stationary),
                bench::FmtInt(active.size()),
                bench::Fmt(100.0 * active_stationary /
                               std::max<size_t>(active.size(), 1),
                           1) +
                    "%",
                "11%"});
  table.Print(std::cout);
  std::cout << "  (paper: most gateways change behavior week to week; "
               "removing background traffic reveals more regularity)\n";
}

}  // namespace

int main() {
  Run();
  return 0;
}
