// Ablation: sensitivity of the framework's two headline thresholds — the
// motif similarity φ (Definition 5, paper: 0.8) and the dominance φ
// (Definition 4, paper: 0.6 with a 0.8 robustness probe).
#include <iostream>

#include "bench_util.h"
#include "core/dominance.h"
#include "core/motif.h"
#include "io/table.h"

namespace {

using namespace homets;  // NOLINT: bench binary

void Run() {
  bench::FleetCache fleet(bench::SmallConfig(80, 4));
  const auto set = bench::DailyMotifWindows(&fleet, 28);
  std::cout << "windows mined: " << set.windows.size() << " gateway-days\n";

  io::PrintSection(std::cout, "Motif threshold phi sweep (Definition 5)");
  io::TextTable motif_table({"phi", "motifs", "support>=10",
                             "largest_support", "windows_covered"});
  for (const double phi : {0.6, 0.7, 0.8, 0.9}) {
    core::MotifOptions options;
    options.phi = phi;
    const auto motifs = core::MotifDiscovery(options).Discover(set.windows);
    if (!motifs.ok()) continue;
    size_t high = 0, covered = 0;
    for (const auto& m : *motifs) {
      if (m.support() >= 10) ++high;
      covered += m.support();
    }
    motif_table.AddRow(
        {bench::Fmt(phi, 1), bench::FmtInt(motifs->size()),
         bench::FmtInt(high),
         motifs->empty() ? "0" : bench::FmtInt(motifs->front().support()),
         bench::FmtInt(covered)});
  }
  motif_table.Print(std::cout);
  std::cout << "  (with 8-bin daily windows the significance gate inside "
               "cor(.,.) dominates: a significant correlation is already "
               "high, so the motif structure is robust across phi — which "
               "supports the paper's fixed choice of 0.8)\n";

  io::PrintSection(std::cout, "Dominance threshold phi sweep (Definition 4)");
  io::TextTable dom_table({"phi", "gateways_with_dominant", "total_dominants",
                           "fixed_share_%"});
  for (const double phi : {0.5, 0.6, 0.7, 0.8, 0.9}) {
    core::DominanceOptions options;
    options.phi = phi;
    size_t with_dominant = 0, total = 0, fixed = 0, gateways = 0;
    for (int id = 0; id < fleet.config().n_gateways; ++id) {
      const auto& gw = fleet.Get(id);
      if (!gw.HasObservationEveryWeek(0, 4)) continue;
      ++gateways;
      const auto dominants = core::FindDominantDevices(gw, options);
      if (!dominants.empty()) ++with_dominant;
      for (const auto& d : dominants) {
        ++total;
        if (d.reported_type == simgen::DeviceType::kFixed) ++fixed;
      }
    }
    dom_table.AddRow(
        {bench::Fmt(phi, 1),
         StrFormat("%zu/%zu", with_dominant, gateways), bench::FmtInt(total),
         total > 0 ? bench::Fmt(100.0 * fixed / static_cast<double>(total), 0)
                   : "n/a"});
  }
  dom_table.Print(std::cout);
  std::cout << "  (paper: at 0.6 nearly every gateway has a dominant device; "
               "at 0.8 still 67% do and the fixed share grows)\n";
}

}  // namespace

int main() {
  Run();
  return 0;
}
