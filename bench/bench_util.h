// Shared setup for the figure-reproduction benches: the default synthetic
// fleet (the stand-in for the paper's 196-gateway dataset) and common
// eligibility/formatting helpers.
#ifndef HOMETS_BENCH_BENCH_UTIL_H_
#define HOMETS_BENCH_BENCH_UTIL_H_

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/strings.h"
#include "core/background.h"
#include "core/motif.h"
#include "simgen/fleet.h"
#include "ts/time_series.h"

namespace homets::bench {

/// Shrinks a fleet config for the `bench-smoke` ctest label: the
/// HOMETS_SMOKE_GATEWAYS / HOMETS_SMOKE_WEEKS environment variables clamp
/// (never grow) the requested fleet so every bench binary executes in
/// seconds. Unset variables leave the config untouched, so interactive runs
/// keep the paper-scale workloads.
inline void ApplySmokeClamps(simgen::SimConfig* config) {
  const auto clamp = [](const char* env, int* field) {
    const char* raw = std::getenv(env);
    if (raw == nullptr) return;
    const int value = std::atoi(raw);
    if (value > 0) *field = std::min(*field, value);
  };
  clamp("HOMETS_SMOKE_GATEWAYS", &config->n_gateways);
  clamp("HOMETS_SMOKE_WEEKS", &config->weeks);
  config->surveyed_gateways =
      std::min(config->surveyed_gateways, config->n_gateways);
}

/// The paper's deployment: 196 gateways, six analysis weeks starting Monday
/// 2014-03-17 (our epoch minute 0).
inline simgen::SimConfig PaperConfig() {
  simgen::SimConfig config;
  config.n_gateways = 196;
  config.weeks = 6;
  config.seed = 20140317;
  ApplySmokeClamps(&config);
  return config;
}

/// A reduced fleet for the quick exploratory benches (Figures 1–3 analyze a
/// handful of representative gateways).
inline simgen::SimConfig SmallConfig(int gateways, int weeks) {
  simgen::SimConfig config = PaperConfig();
  config.n_gateways = gateways;
  config.weeks = weeks;
  ApplySmokeClamps(&config);
  return config;
}

/// Hardware concurrency for bench reporting: hardware_concurrency() with a
/// sysconf fallback for libstdc++/container combinations where it reports 0,
/// and 1 only as the last resort.
inline int HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw > 0) return static_cast<int>(hw);
#ifdef _SC_NPROCESSORS_ONLN
  const long online = sysconf(_SC_NPROCESSORS_ONLN);
  if (online > 0) return static_cast<int>(online);
#endif
  return 1;
}

/// Lazily generates and caches gateway traces.
class FleetCache {
 public:
  explicit FleetCache(const simgen::SimConfig& config) : generator_(config) {}

  const simgen::GatewayTrace& Get(int id) {
    auto it = cache_.find(id);
    if (it == cache_.end()) {
      it = cache_.emplace(id, generator_.Generate(id)).first;
    }
    return it->second;
  }

  void Evict(int id) { cache_.erase(id); }
  void Clear() { cache_.clear(); }

  const simgen::SimConfig& config() const { return generator_.config(); }
  const simgen::FleetGenerator& generator() const { return generator_; }

 private:
  simgen::FleetGenerator generator_;
  std::map<int, simgen::GatewayTrace> cache_;
};

/// Caps an analysis horizon at what the fleet actually generated, so a
/// bench asking for its usual 28 days / 6 weeks still produces non-empty
/// window sets when ApplySmokeClamps shrank the fleet underneath it. A
/// no-op whenever the requested horizon fits the configured span.
inline int ClampWeeks(const simgen::SimConfig& config, int weeks) {
  return std::min(weeks, config.weeks);
}
inline int ClampDays(const simgen::SimConfig& config, int days) {
  return std::min(days, config.weeks * 7);
}

/// Ids of gateways with at least one observation in every one of `weeks`
/// weekly windows (the paper's weekly eligibility filter).
inline std::vector<int> WeeklyEligible(const simgen::FleetGenerator& gen,
                                       int weeks) {
  weeks = ClampWeeks(gen.config(), weeks);
  std::vector<int> ids;
  for (int id = 0; id < gen.config().n_gateways; ++id) {
    if (gen.Generate(id).HasObservationEveryWeek(0, weeks)) ids.push_back(id);
  }
  return ids;
}

/// Ids of gateways with at least one observation every day for `days` days.
inline std::vector<int> DailyEligible(const simgen::FleetGenerator& gen,
                                      int days) {
  days = ClampDays(gen.config(), days);
  std::vector<int> ids;
  for (int id = 0; id < gen.config().n_gateways; ++id) {
    if (gen.Generate(id).HasObservationEveryDay(0, days)) ids.push_back(id);
  }
  return ids;
}

/// Windows + provenance for motif mining.
struct WindowSet {
  std::vector<ts::TimeSeries> windows;
  std::vector<core::WindowProvenance> provenance;
  std::vector<int> gateways;  ///< eligible gateway ids
};

/// Weekly motif input (Section 7.2.1): background-removed aggregates at 8 h
/// bins anchored at 2am, cut into weekly windows over `weeks` weeks.
inline WindowSet WeeklyMotifWindows(FleetCache* fleet, int weeks) {
  weeks = ClampWeeks(fleet->config(), weeks);
  WindowSet set;
  for (int id = 0; id < fleet->config().n_gateways; ++id) {
    const auto& gw = fleet->Get(id);
    if (!gw.HasObservationEveryWeek(0, weeks)) {
      fleet->Evict(id);
      continue;
    }
    set.gateways.push_back(id);
    auto active = core::ActiveAggregate(gw);
    auto sliced = active.Slice(0, weeks * ts::kMinutesPerWeek);
    if (sliced.ok()) active = std::move(sliced).value();
    auto aggregated = ts::Aggregate(active, 480, 120, ts::AggKind::kSum);
    if (aggregated.ok()) {
      for (auto& window :
           ts::SliceWindows(*aggregated, ts::kMinutesPerWeek, 120)) {
        set.provenance.push_back({id, window.start_minute()});
        set.windows.push_back(std::move(window));
      }
    }
    fleet->Evict(id);
  }
  return set;
}

/// Daily motif input (Section 7.2.2): 3 h bins anchored at midnight, cut
/// into daily windows over `days` days.
inline WindowSet DailyMotifWindows(FleetCache* fleet, int days) {
  days = ClampDays(fleet->config(), days);
  WindowSet set;
  for (int id = 0; id < fleet->config().n_gateways; ++id) {
    const auto& gw = fleet->Get(id);
    if (!gw.HasObservationEveryDay(0, days)) {
      fleet->Evict(id);
      continue;
    }
    set.gateways.push_back(id);
    auto active = core::ActiveAggregate(gw);
    auto sliced = active.Slice(0, days * ts::kMinutesPerDay);
    if (sliced.ok()) active = std::move(sliced).value();
    auto aggregated = ts::Aggregate(active, 180, 0, ts::AggKind::kSum);
    if (aggregated.ok()) {
      for (auto& window :
           ts::SliceWindows(*aggregated, ts::kMinutesPerDay, 0)) {
        set.provenance.push_back({id, window.start_minute()});
        set.windows.push_back(std::move(window));
      }
    }
    fleet->Evict(id);
  }
  return set;
}

inline std::string Fmt(double v, int decimals = 3) {
  return StrFormat("%.*f", decimals, v);
}

inline std::string FmtInt(size_t v) {
  return StrFormat("%zu", v);
}

inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Minimal JSON object writer for the machine-readable bench artifacts
/// (BENCH_*.json). Keys print in insertion order. Nested objects and arrays
/// are composed textually: Inline() a child writer into SetRaw()/Array().
class JsonWriter {
 public:
  JsonWriter& Set(const std::string& key, const std::string& value) {
    return SetRaw(key, StrFormat("\"%s\"", JsonEscape(value).c_str()));
  }
  JsonWriter& Set(const std::string& key, const char* value) {
    return Set(key, std::string(value));
  }
  JsonWriter& Set(const std::string& key, double value) {
    return SetRaw(key, StrFormat("%.9g", value));
  }
  JsonWriter& Set(const std::string& key, int value) {
    return SetRaw(key, StrFormat("%d", value));
  }
  JsonWriter& Set(const std::string& key, size_t value) {
    return SetRaw(key, StrFormat("%zu", value));
  }
  JsonWriter& Set(const std::string& key, bool value) {
    return SetRaw(key, value ? "true" : "false");
  }
  JsonWriter& SetRaw(const std::string& key, std::string json) {
    entries_.emplace_back(key, std::move(json));
    return *this;
  }

  static std::string Array(const std::vector<std::string>& items) {
    return StrFormat("[%s]", StrJoin(items, ", ").c_str());
  }

  /// Compact single-line object, for nesting.
  std::string Inline() const {
    std::vector<std::string> parts;
    parts.reserve(entries_.size());
    for (const auto& [key, value] : entries_) {
      parts.push_back(
          StrFormat("\"%s\": %s", JsonEscape(key).c_str(), value.c_str()));
    }
    return StrFormat("{%s}", StrJoin(parts, ", ").c_str());
  }

  /// Top-level document: one key per line.
  std::string Dump() const {
    std::string out = "{\n";
    for (size_t i = 0; i < entries_.size(); ++i) {
      out += StrFormat("  \"%s\": %s%s\n", JsonEscape(entries_[i].first).c_str(),
                       entries_[i].second.c_str(),
                       i + 1 < entries_.size() ? "," : "");
    }
    out += "}\n";
    return out;
  }

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

}  // namespace homets::bench

#endif  // HOMETS_BENCH_BENCH_UTIL_H_
