// Sharded fleet-execution scaling bench (DESIGN.md §15): generates one
// out-of-core simgen fleet as a single .homets file, then runs the full
// per-gateway pipeline through FleetOrchestrator at several shard counts —
// once bare and once with checkpointing — and writes the BENCH_fleet.json
// scaling-curve artifact (shards/sec, gateways/sec, checkpoint overhead).
//
// The reports of every configuration must be byte-identical (the merge is
// deterministic in shard index); the bench asserts that as it measures, so
// a scaling win can never silently buy a correctness loss.
//
// Flags:
//   --fleet_json=PATH   output path (default BENCH_fleet.json)
//   --gateways=N        fleet size (default 48; HOMETS_SMOKE_* clamp)
//   --weeks=W           trace length (default 4)
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "fleet/checkpoint.h"
#include "fleet/orchestrator.h"
#include "simgen/fleet.h"
#include "storage/homets_format.h"

namespace {

using namespace homets;  // NOLINT: bench binary

constexpr int kSchemaVersion = 1;
constexpr int kShardCounts[] = {1, 2, 4, 8};

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_fleet.json";
  int gateways = 48;
  int weeks = 4;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--fleet_json=", 0) == 0) {
      json_path = arg.substr(std::string("--fleet_json=").size());
    } else if (arg.rfind("--gateways=", 0) == 0) {
      gateways = std::atoi(arg.c_str() + std::string("--gateways=").size());
    } else if (arg.rfind("--weeks=", 0) == 0) {
      weeks = std::atoi(arg.c_str() + std::string("--weeks=").size());
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      return 2;
    }
  }

  simgen::SimConfig config = bench::PaperConfig();
  config.n_gateways = gateways;
  config.weeks = weeks;
  bench::ApplySmokeClamps(&config);

  // Out-of-core setup: the whole fleet streams into one columnar file; peak
  // memory is a single gateway, however large --gateways is.
  char tmpl[] = "/tmp/homets_bench_fleet_XXXXXX";
  const char* tmpdir = mkdtemp(tmpl);
  if (tmpdir == nullptr) {
    std::cerr << "mkdtemp failed\n";
    return 1;
  }
  const std::string fleet_path = std::string(tmpdir) + "/fleet.homets";
  simgen::FleetGenerator generator(config);
  const auto written = storage::WriteFleetHomets(generator, fleet_path);
  if (!written.ok()) {
    std::cerr << "fleet setup failed: " << written.status().ToString()
              << "\n";
    return 1;
  }
  std::cout << "fleet: " << written->gateways << " gateways x "
            << config.weeks << " weeks -> " << fleet_path << "\n";

  std::vector<std::string> entries;
  std::string reference_report;
  int rc = 0;
  for (const bool checkpointed : {false, true}) {
    for (const int shards : kShardCounts) {
      fleet::FleetOptions options;
      options.n_shards = shards;
      const std::string ckpt_dir =
          std::string(tmpdir) + "/ckpt_" + std::to_string(shards);
      if (checkpointed) options.checkpoint_dir = ckpt_dir;
      fleet::FleetOrchestrator orchestrator({fleet_path}, options);
      const auto start = Clock::now();
      const auto report = orchestrator.Analyze();
      const double seconds = SecondsSince(start);
      if (!report.ok()) {
        std::cerr << "fleet run failed: " << report.status().ToString()
                  << "\n";
        rc = 1;
        break;
      }
      // Correctness rides along: every configuration must merge to the same
      // figures (the shard-count header line is the only allowed delta).
      const std::string formatted = fleet::FormatFleetReport(*report);
      const std::string figures = formatted.substr(formatted.find('\n') + 1);
      if (reference_report.empty()) {
        reference_report = figures;
      } else if (figures != reference_report) {
        std::cerr << "report mismatch at shards=" << shards
                  << " checkpointed=" << checkpointed << "\n";
        rc = 1;
        break;
      }
      const size_t n_gateways = report->gateways.size();
      bench::JsonWriter entry;
      entry.Set("stage",
                checkpointed ? std::string("fleet_checkpointed")
                             : std::string("fleet_analyze"));
      entry.Set("shards", shards).Set("seconds", seconds);
      entry.Set("gateways", n_gateways);
      if (seconds > 0.0) {
        entry.Set("shards_per_sec", static_cast<double>(shards) / seconds);
        entry.Set("gateways_per_sec",
                  static_cast<double>(n_gateways) / seconds);
      }
      entries.push_back(entry.Inline());
      std::cout << "  " << (checkpointed ? "ckpt" : "bare") << " shards="
                << shards << ": " << bench::Fmt(seconds) << " s ("
                << bench::Fmt(seconds > 0.0
                                  ? static_cast<double>(shards) / seconds
                                  : 0.0)
                << " shards/sec)\n";
    }
    if (rc != 0) break;
  }

  if (rc == 0) {
    bench::JsonWriter json;
    json.Set("schema", "homets.bench_fleet")
        .Set("schema_version", kSchemaVersion)
        .Set("scenario", "fleet_scaling")
        .Set("gateways", config.n_gateways)
        .Set("weeks", config.weeks)
        .Set("hardware_threads", bench::HardwareThreads())
        .SetRaw("entries", bench::JsonWriter::Array(entries));
    std::ofstream out(json_path);
    out << json.Dump();
    if (!out) {
      std::cerr << "write failed: " << json_path << "\n";
      rc = 1;
    } else {
      std::cout << entries.size() << " fleet entries -> " << json_path
                << "\n";
    }
  }

  // Cleanup: checkpoints, fleet file, temp dir.
  for (const int shards : kShardCounts) {
    const std::string ckpt_dir =
        std::string(tmpdir) + "/ckpt_" + std::to_string(shards);
    for (int s = 0; s < shards; ++s) {
      std::remove(fleet::ShardCheckpointPath(ckpt_dir, s).c_str());
    }
    std::remove((ckpt_dir + "/fleet_manifest.json").c_str());
    rmdir(ckpt_dir.c_str());
  }
  std::remove(fleet_path.c_str());
  rmdir(tmpdir);
  return rc;
}
