// Section 4.2(c): correlation between the overall traffic and the number of
// connected devices — statistically significant but low (paper: mean 0.37,
// median 0.38, sd 0.21), showing traffic depends on behavior rather than on
// how many devices are attached.
#include <iostream>

#include "bench_util.h"
#include "core/similarity.h"
#include "io/table.h"
#include "stats/descriptive.h"

namespace {

using namespace homets;  // NOLINT: bench binary

void Run() {
  bench::FleetCache fleet(bench::SmallConfig(60, 2));

  std::vector<double> correlations;
  size_t significant = 0, checked = 0;
  for (int id = 0; id < fleet.config().n_gateways; ++id) {
    const auto& gw = fleet.Get(id);
    // Hourly bins, as minute-level device counts are dominated by radio
    // flapping.
    auto traffic = ts::Aggregate(gw.AggregateTraffic(), 60, 0,
                                 ts::AggKind::kSum);
    auto devices = ts::Aggregate(gw.ConnectedDeviceCount(), 60, 0,
                                 ts::AggKind::kMean);
    fleet.Evict(id);
    if (!traffic.ok() || !devices.ok()) continue;
    const auto sim = core::CorrelationSimilarity(*traffic, *devices);
    ++checked;
    if (sim.significant) {
      ++significant;
      correlations.push_back(sim.value);
    }
  }

  io::PrintSection(std::cout,
                   "Sec 4.2c: traffic vs #connected devices correlation");
  const auto summary = stats::Summarize(correlations);
  if (summary.ok()) {
    io::TextTable table({"stat", "measured", "paper"});
    table.AddRow({"mean", bench::Fmt(summary->mean, 2), "0.37"});
    table.AddRow({"median", bench::Fmt(summary->median, 2), "0.38"});
    table.AddRow({"stddev", bench::Fmt(summary->stddev, 2), "0.21"});
    table.AddRow({"significant gateways",
                  StrFormat("%zu/%zu", significant, checked), "all checked"});
    table.Print(std::cout);
    std::cout << "  (paper: significant but LOW — gateway traffic depends on "
               "user behavior, not on the number of connected devices)\n";
  } else {
    std::cout << "  no significant correlations measured\n";
  }
}

}  // namespace

int main() {
  Run();
  return 0;
}
