// google-benchmark microbenchmarks for the framework's algorithmic kernels:
// correlation coefficients, the Definition 1 similarity, KS, DTW vs cor,
// aggregation, KDE, motif mining and fleet generation.
#include <benchmark/benchmark.h>

#include <cmath>
#include <vector>

#include "common/random.h"
#include "core/motif.h"
#include "core/similarity.h"
#include "correlation/coefficients.h"
#include "distance/distance.h"
#include "sax/sax.h"
#include "simgen/fleet.h"
#include "stats/kde.h"
#include "stattests/ks_test.h"
#include "ts/time_series.h"

namespace {

using namespace homets;  // NOLINT: bench binary

std::vector<double> RandomSeries(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> xs(n);
  for (auto& x : xs) x = rng.LogNormal(std::log(500.0), 1.0);
  return xs;
}

void BM_Pearson(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto x = RandomSeries(n, 1);
  const auto y = RandomSeries(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(correlation::Pearson(x, y));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_Pearson)->Arg(1 << 8)->Arg(1 << 12)->Arg(1 << 15);

void BM_Spearman(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto x = RandomSeries(n, 3);
  const auto y = RandomSeries(n, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(correlation::Spearman(x, y));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_Spearman)->Arg(1 << 8)->Arg(1 << 12)->Arg(1 << 15);

void BM_KendallKnight(benchmark::State& state) {
  // O(n log n) Kendall is the load-bearing kernel: the naive O(n²) version
  // would make minute-level dominance analysis infeasible.
  const size_t n = static_cast<size_t>(state.range(0));
  const auto x = RandomSeries(n, 5);
  const auto y = RandomSeries(n, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(correlation::Kendall(x, y));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_KendallKnight)->Arg(1 << 8)->Arg(1 << 12)->Arg(1 << 15);

void BM_CorrelationSimilarity(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto x = RandomSeries(n, 7);
  const auto y = RandomSeries(n, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::CorrelationSimilarity(x, y));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_CorrelationSimilarity)->Arg(21)->Arg(1 << 10)->Arg(1 << 14);

void BM_KolmogorovSmirnov(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto x = RandomSeries(n, 9);
  const auto y = RandomSeries(n, 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stattests::KolmogorovSmirnov(x, y));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_KolmogorovSmirnov)->Arg(1 << 8)->Arg(1 << 12)->Arg(1 << 15);

void BM_DtwFull(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto x = RandomSeries(n, 11);
  const auto y = RandomSeries(n, 12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(distance::DynamicTimeWarping(x, y));
  }
}
BENCHMARK(BM_DtwFull)->Arg(1 << 7)->Arg(1 << 9)->Arg(1 << 11);

void BM_DtwBanded(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto x = RandomSeries(n, 13);
  const auto y = RandomSeries(n, 14);
  for (auto _ : state) {
    benchmark::DoNotOptimize(distance::DynamicTimeWarping(x, y, 16));
  }
}
BENCHMARK(BM_DtwBanded)->Arg(1 << 7)->Arg(1 << 9)->Arg(1 << 11);

void BM_Aggregate(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  ts::TimeSeries series(0, 1, RandomSeries(n, 15));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ts::Aggregate(series, 180, 0, ts::AggKind::kSum));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_Aggregate)->Arg(10080)->Arg(40320);

void BM_KdeFitAndEvaluate(benchmark::State& state) {
  const auto sample = RandomSeries(static_cast<size_t>(state.range(0)), 16);
  for (auto _ : state) {
    auto kde = stats::KernelDensity::Fit(sample);
    benchmark::DoNotOptimize(kde->Evaluate(1000.0));
  }
}
BENCHMARK(BM_KdeFitAndEvaluate)->Arg(1 << 10)->Arg(1 << 13);

void BM_SaxEncode(benchmark::State& state) {
  const auto enc = sax::SaxEncoder::Make(8, 16).value();
  const auto xs = RandomSeries(static_cast<size_t>(state.range(0)), 17);
  for (auto _ : state) {
    benchmark::DoNotOptimize(enc.Encode(xs));
  }
}
BENCHMARK(BM_SaxEncode)->Arg(1 << 8)->Arg(1 << 12);

void BM_MotifDiscovery(benchmark::State& state) {
  // Windows shaped like the daily-motif workload: 8 bins each.
  Rng rng(18);
  const size_t n_windows = static_cast<size_t>(state.range(0));
  std::vector<ts::TimeSeries> windows;
  for (size_t w = 0; w < n_windows; ++w) {
    std::vector<double> v(8);
    const int family = static_cast<int>(w % 4);
    for (size_t i = 0; i < 8; ++i) {
      v[i] = (i == static_cast<size_t>(family * 2) ? 1e6 : 100.0) *
             rng.LogNormal(0.0, 0.2);
    }
    windows.emplace_back(static_cast<int64_t>(w) * ts::kMinutesPerDay, 180,
                         std::move(v));
  }
  core::MotifDiscovery miner;
  for (auto _ : state) {
    benchmark::DoNotOptimize(miner.Discover(windows));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(n_windows));
}
BENCHMARK(BM_MotifDiscovery)->Arg(64)->Arg(256)->Arg(1024);

void BM_FleetGenerateGateway(benchmark::State& state) {
  simgen::SimConfig config;
  config.n_gateways = 4;
  config.weeks = static_cast<int>(state.range(0));
  config.seed = 19;
  simgen::FleetGenerator gen(config);
  int id = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.Generate(id % config.n_gateways));
    ++id;
  }
}
BENCHMARK(BM_FleetGenerateGateway)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
