// google-benchmark microbenchmarks for the framework's algorithmic kernels:
// correlation coefficients, the Definition 1 similarity, KS, DTW vs cor,
// aggregation, KDE, motif mining and fleet generation.
//
// Before the registered benchmarks run, main() executes the pairwise
// similarity scenario (1000 weekly windows, all ~500k pairs: legacy per-pair
// path vs the SimilarityEngine at several thread counts) and writes the
// machine-readable BENCH_similarity.json. Engine timings are best-of-N after
// a warm-up run, so the first thread count measured is not penalized for
// spinning up the pool and faulting in the prepared vectors. Flags:
//   --similarity_json=PATH     output path (default BENCH_similarity.json)
//   --similarity_windows=N     scenario size (default 1000 windows)
//   --similarity_only          skip the google-benchmark suite
//   --prof                     enable the execution profiler (lock/pool
//                              accounting feeds the manifest stage deltas)
//   --similarity_manifest=PATH write a run manifest with one StageTimer per
//                              engine thread count (pairwise_threads_N) —
//                              the input tools/homets_profile diagnoses
//   --similarity_metrics=PATH  write the final metrics registry as JSON
//                              (histogram percentiles for homets_profile)
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "core/motif.h"
#include "core/profiling.h"
#include "core/similarity.h"
#include "core/similarity_engine.h"
#include "correlation/coefficients.h"
#include "distance/distance.h"
#include "obs/metrics.h"
#include "obs/prof.h"
#include "obs/report.h"
#include "sax/sax.h"
#include "simgen/fleet.h"
#include "stats/kde.h"
#include "stattests/ks_test.h"
#include "ts/time_series.h"

namespace {

using namespace homets;  // NOLINT: bench binary

std::vector<double> RandomSeries(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> xs(n);
  for (auto& x : xs) x = rng.LogNormal(std::log(500.0), 1.0);
  return xs;
}

void BM_Pearson(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto x = RandomSeries(n, 1);
  const auto y = RandomSeries(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(correlation::Pearson(x, y));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_Pearson)->Arg(1 << 8)->Arg(1 << 12)->Arg(1 << 15);

void BM_Spearman(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto x = RandomSeries(n, 3);
  const auto y = RandomSeries(n, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(correlation::Spearman(x, y));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_Spearman)->Arg(1 << 8)->Arg(1 << 12)->Arg(1 << 15);

void BM_KendallKnight(benchmark::State& state) {
  // O(n log n) Kendall is the load-bearing kernel: the naive O(n²) version
  // would make minute-level dominance analysis infeasible.
  const size_t n = static_cast<size_t>(state.range(0));
  const auto x = RandomSeries(n, 5);
  const auto y = RandomSeries(n, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(correlation::Kendall(x, y));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_KendallKnight)->Arg(1 << 8)->Arg(1 << 12)->Arg(1 << 15);

void BM_CorrelationSimilarity(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto x = RandomSeries(n, 7);
  const auto y = RandomSeries(n, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::CorrelationSimilarity(x, y));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_CorrelationSimilarity)->Arg(21)->Arg(1 << 10)->Arg(1 << 14);

void BM_KolmogorovSmirnov(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto x = RandomSeries(n, 9);
  const auto y = RandomSeries(n, 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stattests::KolmogorovSmirnov(x, y));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_KolmogorovSmirnov)->Arg(1 << 8)->Arg(1 << 12)->Arg(1 << 15);

void BM_DtwFull(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto x = RandomSeries(n, 11);
  const auto y = RandomSeries(n, 12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(distance::DynamicTimeWarping(x, y));
  }
}
BENCHMARK(BM_DtwFull)->Arg(1 << 7)->Arg(1 << 9)->Arg(1 << 11);

void BM_DtwBanded(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto x = RandomSeries(n, 13);
  const auto y = RandomSeries(n, 14);
  for (auto _ : state) {
    benchmark::DoNotOptimize(distance::DynamicTimeWarping(x, y, 16));
  }
}
BENCHMARK(BM_DtwBanded)->Arg(1 << 7)->Arg(1 << 9)->Arg(1 << 11);

void BM_Aggregate(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  ts::TimeSeries series(0, 1, RandomSeries(n, 15));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ts::Aggregate(series, 180, 0, ts::AggKind::kSum));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_Aggregate)->Arg(10080)->Arg(40320);

void BM_KdeFitAndEvaluate(benchmark::State& state) {
  const auto sample = RandomSeries(static_cast<size_t>(state.range(0)), 16);
  for (auto _ : state) {
    auto kde = stats::KernelDensity::Fit(sample);
    benchmark::DoNotOptimize(kde->Evaluate(1000.0));
  }
}
BENCHMARK(BM_KdeFitAndEvaluate)->Arg(1 << 10)->Arg(1 << 13);

void BM_SaxEncode(benchmark::State& state) {
  const auto enc = sax::SaxEncoder::Make(8, 16).value();
  const auto xs = RandomSeries(static_cast<size_t>(state.range(0)), 17);
  for (auto _ : state) {
    benchmark::DoNotOptimize(enc.Encode(xs));
  }
}
BENCHMARK(BM_SaxEncode)->Arg(1 << 8)->Arg(1 << 12);

void BM_MotifDiscovery(benchmark::State& state) {
  // Windows shaped like the daily-motif workload: 8 bins each.
  Rng rng(18);
  const size_t n_windows = static_cast<size_t>(state.range(0));
  std::vector<ts::TimeSeries> windows;
  for (size_t w = 0; w < n_windows; ++w) {
    std::vector<double> v(8);
    const int family = static_cast<int>(w % 4);
    for (size_t i = 0; i < 8; ++i) {
      v[i] = (i == static_cast<size_t>(family * 2) ? 1e6 : 100.0) *
             rng.LogNormal(0.0, 0.2);
    }
    windows.emplace_back(static_cast<int64_t>(w) * ts::kMinutesPerDay, 180,
                         std::move(v));
  }
  core::MotifDiscovery miner;
  for (auto _ : state) {
    benchmark::DoNotOptimize(miner.Discover(windows));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(n_windows));
}
BENCHMARK(BM_MotifDiscovery)->Arg(64)->Arg(256)->Arg(1024);

void BM_SimilarityEnginePairwise(benchmark::State& state) {
  // Arg 0: windows; arg 1: engine threads. Windows are weekly series at
  // 3-hour bins (56 values), the Figure 3 / stationarity workload shape.
  const size_t n_windows = static_cast<size_t>(state.range(0));
  std::vector<std::vector<double>> windows;
  windows.reserve(n_windows);
  for (size_t w = 0; w < n_windows; ++w) {
    windows.push_back(RandomSeries(56, 1000 + w));
  }
  const auto prepared = core::SimilarityEngine::PrepareVectors(windows);
  core::SimilarityEngineOptions options;
  options.threads = static_cast<int>(state.range(1));
  const core::SimilarityEngine engine(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Pairwise(prepared));
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<int64_t>(n_windows * (n_windows - 1) / 2));
}
BENCHMARK(BM_SimilarityEnginePairwise)
    ->Args({128, 1})
    ->Args({128, 4})
    ->Args({512, 1})
    ->Args({512, 4});

void BM_FleetGenerateGateway(benchmark::State& state) {
  simgen::SimConfig config;
  config.n_gateways = 4;
  config.weeks = static_cast<int>(state.range(0));
  config.seed = 19;
  simgen::FleetGenerator gen(config);
  int id = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.Generate(id % config.n_gateways));
    ++id;
  }
}
BENCHMARK(BM_FleetGenerateGateway)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

// The acceptance scenario: all pairs of 1000 weekly windows (56 bins,
// 499,500 pairs). Times the legacy per-pair vector path against the
// SimilarityEngine at several thread counts, verifies the engine output is
// bit-identical to the legacy path and across thread counts, and writes the
// numbers to `path` as JSON.
void RunSimilarityScenario(const std::string& path, size_t n_windows,
                           obs::RunManifestBuilder* manifest) {
  constexpr size_t kBins = 56;
  std::vector<std::vector<double>> windows;
  windows.reserve(n_windows);
  for (size_t w = 0; w < n_windows; ++w) {
    windows.push_back(RandomSeries(kBins, 1000 + w));
  }
  const size_t n_pairs = n_windows * (n_windows - 1) / 2;

  using Clock = std::chrono::steady_clock;
  const auto seconds_since = [](Clock::time_point start) {
    return std::chrono::duration<double>(Clock::now() - start).count();
  };
  const auto same_bits = [](double a, double b) {
    return std::memcmp(&a, &b, sizeof(double)) == 0;
  };

  // Legacy path: every pair re-ranks and re-sorts both windows from scratch.
  std::vector<double> legacy(n_pairs);
  const auto legacy_start = Clock::now();
  {
    // A null manifest makes the timer a no-op, so the un-instrumented run
    // pays nothing here.
    obs::RunManifestBuilder::StageTimer stage(manifest, "legacy_pairwise");
    stage.set_units(n_pairs);
    size_t k = 0;
    for (size_t i = 0; i < n_windows; ++i) {
      for (size_t j = i + 1; j < n_windows; ++j) {
        legacy[k++] =
            core::CorrelationSimilarity(windows[i], windows[j]).value;
      }
    }
  }
  const double legacy_seconds = seconds_since(legacy_start);

  const int hardware = bench::HardwareThreads();
  std::vector<int> thread_counts = {1, 4};
  if (hardware != 1 && hardware != 4) thread_counts.push_back(hardware);

  bool deterministic = true;
  bool matches_legacy = true;
  std::vector<core::SimilarityResult> reference;
  std::vector<std::string> engine_entries;
  double best_speedup = 0.0;
  constexpr int kTrials = 3;
  for (const int threads : thread_counts) {
    core::SimilarityEngineOptions options;
    options.threads = threads;
    // One untimed warm-up, then best-of-kTrials: the first Pairwise on a
    // fresh engine pays pool spin-up and cold caches, which would otherwise
    // be billed entirely to whichever thread count runs first.
    double engine_seconds = 0.0;
    double prepare_seconds = 0.0;
    double pairwise_seconds = 0.0;
    core::SimilarityMatrix matrix;
    {
      // One stage per thread count (warm-up + all trials, excluding the
      // bit-compare verification below): the manifest's per-stage
      // cpu/lock/queue deltas are what homets_profile turns into the
      // thread-scaling diagnosis.
      obs::RunManifestBuilder::StageTimer stage(
          manifest, StrFormat("pairwise_threads_%d", threads));
      stage.set_units(n_pairs * static_cast<size_t>(kTrials + 1));
      for (int trial = -1; trial < kTrials; ++trial) {
        core::PhaseTimings timings;
        options.timings = &timings;
        const core::SimilarityEngine engine(options);
        // Prepare is inside the timed region: the legacy path pays its
        // profiling per pair, so the engine must pay its one-time profiling
        // here too.
        const auto start = Clock::now();
        std::vector<correlation::PreparedSeries> prepared;
        {
          core::ScopedPhaseTimer timer(&timings, "similarity_engine.prepare");
          prepared = core::SimilarityEngine::PrepareVectors(windows);
        }
        core::SimilarityMatrix trial_matrix = engine.Pairwise(prepared);
        const double trial_seconds = seconds_since(start);
        if (trial < 0) continue;  // warm-up, discard
        if (trial == 0 || trial_seconds < engine_seconds) {
          engine_seconds = trial_seconds;
          prepare_seconds =
              1e-9 * static_cast<double>(
                         timings.TotalNs("similarity_engine.prepare"));
          pairwise_seconds =
              1e-9 * static_cast<double>(
                         timings.TotalNs("similarity_engine.pairwise"));
          matrix = std::move(trial_matrix);
        }
      }
    }

    for (size_t k = 0; k < n_pairs; ++k) {
      if (!same_bits(matrix.cells()[k].value, legacy[k])) {
        matches_legacy = false;
        break;
      }
    }
    if (reference.empty()) {
      reference = matrix.cells();
    } else {
      for (size_t k = 0; k < n_pairs; ++k) {
        if (!same_bits(matrix.cells()[k].value, reference[k].value) ||
            matrix.cells()[k].source != reference[k].source) {
          deterministic = false;
          break;
        }
      }
    }

    const double speedup = legacy_seconds / engine_seconds;
    best_speedup = std::max(best_speedup, speedup);
    bench::JsonWriter entry;
    entry.Set("threads", threads)
        .Set("seconds", engine_seconds)
        .Set("prepare_seconds", prepare_seconds)
        .Set("pairwise_seconds", pairwise_seconds)
        .Set("trials", kTrials)
        .Set("pairs_per_sec", static_cast<double>(n_pairs) / engine_seconds)
        .Set("speedup_vs_legacy", speedup);
    engine_entries.push_back(entry.Inline());
  }

  bench::JsonWriter legacy_entry;
  legacy_entry.Set("seconds", legacy_seconds)
      .Set("pairs_per_sec", static_cast<double>(n_pairs) / legacy_seconds);

  bench::JsonWriter json;
  json.Set("scenario", "pairwise_correlation_similarity")
      .Set("windows", n_windows)
      .Set("bins_per_window", kBins)
      .Set("pairs", n_pairs)
      .Set("hardware_threads", hardware)
      .SetRaw("legacy_per_pair", legacy_entry.Inline())
      .SetRaw("engine", bench::JsonWriter::Array(engine_entries))
      .Set("best_speedup_vs_legacy", best_speedup)
      .Set("engine_matches_legacy_bitwise", matches_legacy)
      .Set("deterministic_across_threads", deterministic);

  std::ofstream out(path);
  out << json.Dump();
  std::cout << "similarity scenario: " << n_pairs << " pairs, legacy "
            << bench::Fmt(legacy_seconds) << " s, best engine speedup "
            << bench::Fmt(best_speedup, 2) << "x, deterministic="
            << (deterministic ? "yes" : "no") << ", matches_legacy="
            << (matches_legacy ? "yes" : "no") << " -> " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_similarity.json";
  std::string manifest_path;
  std::string metrics_path;
  size_t n_windows = 1000;
  bool similarity_only = false;
  bool prof = false;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--similarity_json=", 0) == 0) {
      json_path = arg.substr(std::string("--similarity_json=").size());
    } else if (arg.rfind("--similarity_manifest=", 0) == 0) {
      manifest_path =
          arg.substr(std::string("--similarity_manifest=").size());
    } else if (arg.rfind("--similarity_metrics=", 0) == 0) {
      metrics_path = arg.substr(std::string("--similarity_metrics=").size());
    } else if (arg == "--prof") {
      prof = true;
    } else if (arg.rfind("--similarity_windows=", 0) == 0) {
      const long parsed =
          std::atol(arg.c_str() + std::string("--similarity_windows=").size());
      if (parsed < 2) {
        std::cerr << "bad " << arg << ": need at least 2 windows\n";
        return 1;
      }
      n_windows = static_cast<size_t>(parsed);
    } else if (arg == "--similarity_only") {
      similarity_only = true;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  // Validate flags before the multi-second scenario run so a typo'd flag
  // fails fast instead of overwriting the JSON artifact first.
  int pargc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pargc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pargc, passthrough.data())) {
    return 1;
  }

  if (prof) obs::EnableProfiler(true);
  obs::RunManifestBuilder manifest;
  const bool want_manifest = !manifest_path.empty();
  if (want_manifest) {
    manifest.SetTool("perf_microbench");
    std::string command = argv[0];
    for (int i = 1; i < argc; ++i) {
      command += ' ';
      command += argv[i];
    }
    manifest.SetCommand(std::move(command));
    manifest.SetConfig("similarity_windows",
                       StrFormat("%zu", n_windows));
    manifest.SetConfig("prof", prof ? "1" : "0");
    // "used" is the widest thread count the scenario exercises: on a box
    // with fewer hardware threads, homets_profile's efficiency ceiling
    // diagnosis keys off exactly this pair of numbers.
    const int hardware = bench::HardwareThreads();
    manifest.SetThreads(hardware, std::max(4, hardware));
  }

  RunSimilarityScenario(json_path, n_windows,
                        want_manifest ? &manifest : nullptr);

  if (want_manifest) {
    manifest.SetExitCode(0);
    const Status status = manifest.WriteJson(manifest_path);
    if (!status.ok()) {
      std::cerr << "manifest write failed: " << status.message() << "\n";
      return 1;
    }
    std::cout << "run manifest -> " << manifest_path << "\n";
  }
  if (!metrics_path.empty()) {
    std::ofstream metrics_out(metrics_path);
    metrics_out << obs::MetricsRegistry::Global().ExportJson();
    if (!metrics_out) {
      std::cerr << "metrics write failed: " << metrics_path << "\n";
      return 1;
    }
    std::cout << "metrics -> " << metrics_path << "\n";
  }
  if (similarity_only) return 0;

  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
