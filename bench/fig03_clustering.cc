// Figure 3: hierarchical clustering of traffic time series under the
// correlation-based distance 1 − cor(·,·), cut at distance 0.4
// (correlation 0.6).
#include <iostream>

#include "bench_util.h"
#include "cluster/hierarchical.h"
#include "cluster/silhouette.h"
#include "core/background.h"
#include "core/similarity_engine.h"
#include "io/table.h"
#include "ts/time_series.h"

namespace {

using namespace homets;  // NOLINT: bench binary

void Run() {
  bench::FleetCache fleet(bench::SmallConfig(12, 1));

  // One 3-hour-binned weekly series per gateway, background removed.
  std::vector<ts::TimeSeries> series;
  std::vector<int> ids;
  for (int id = 0; id < fleet.config().n_gateways; ++id) {
    const auto active = core::ActiveAggregate(fleet.Get(id));
    auto agg = ts::Aggregate(active, 180, 0, ts::AggKind::kSum);
    if (agg.ok() && agg->CountObserved() > 10) {
      series.push_back(std::move(agg).value());
      ids.push_back(id);
    }
    fleet.Evict(id);
  }

  // All pairwise 1 − cor(·,·) distances through the similarity engine: each
  // gateway series is profiled once, pairs run in parallel, and the condensed
  // result feeds the clustering matrix directly.
  const core::SimilarityEngine engine;
  const core::SimilarityMatrix sims =
      engine.Pairwise(core::SimilarityEngine::PrepareWindows(series));
  auto dist = cluster::DistanceMatrix::FromCondensed(
                  series.size(), sims.CondensedDistances())
                  .value();

  const auto tree =
      cluster::AgglomerativeCluster(dist, cluster::Linkage::kAverage).value();

  io::PrintSection(std::cout, "Figure 3: dendrogram merges (average linkage)");
  io::TextTable merges({"step", "distance", "cluster_size"});
  for (size_t m = 0; m < tree.merges.size(); ++m) {
    merges.AddRow({bench::FmtInt(m + 1),
                   bench::Fmt(tree.merges[m].distance),
                   bench::FmtInt(tree.merges[m].size)});
  }
  merges.Print(std::cout);

  io::PrintSection(std::cout, "Figure 3: clusters at distance threshold 0.4");
  const auto labels = tree.CutAt(0.4);
  size_t n_clusters = tree.CountClustersAt(0.4);
  io::TextTable clusters({"cluster", "gateways"});
  for (size_t c = 0; c < n_clusters; ++c) {
    std::vector<std::string> members;
    for (size_t i = 0; i < labels.size(); ++i) {
      if (labels[i] == c) {
        members.push_back(StrFormat("gw%d", ids[i]));
      }
    }
    clusters.AddRow({bench::FmtInt(c), StrJoin(members, " ")});
  }
  clusters.Print(std::cout);
  std::cout << "  " << n_clusters << " clusters among " << series.size()
            << " gateways at correlation >= 0.6 (paper's Figure 3 finds two "
               "similarity clusters among its example series)\n";

  // Is the paper's 0.4 cut structurally justified? Compare against the
  // silhouette-optimal cut.
  const auto best = cluster::BestCutBySilhouette(dist, tree);
  if (best.ok()) {
    std::cout << "  silhouette-optimal cut: distance "
              << bench::Fmt(best->best_threshold, 2) << " -> "
              << best->best_clusters << " clusters (score "
              << bench::Fmt(best->best_score, 2)
              << "); the paper's fixed 0.4 cut corresponds to the "
                 "correlation-strength boundary instead\n";
  }

  // Threshold sensitivity: how cluster count falls as the cut loosens.
  io::PrintSection(std::cout, "Cut-threshold sensitivity");
  io::TextTable sweep({"distance_cut", "min_correlation", "clusters"});
  for (double cut : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    sweep.AddRow({bench::Fmt(cut, 1), bench::Fmt(1.0 - cut, 1),
                  bench::FmtInt(tree.CountClustersAt(cut))});
  }
  sweep.Print(std::cout);
}

}  // namespace

int main() {
  Run();
  return 0;
}
